//! Facade crate re-exporting the full EECS workspace.
pub use eecs_core as core;
pub use eecs_detect as detect;
pub use eecs_energy as energy;
pub use eecs_geometry as geometry;
pub use eecs_learn as learn;
pub use eecs_linalg as linalg;
pub use eecs_manifold as manifold;
pub use eecs_net as net;
pub use eecs_scene as scene;
pub use eecs_vision as vision;
