//! Domain adaptation in action: the controller recognizing an unknown feed.
//!
//! ```bash
//! cargo run --release --example adaptive_environment
//! ```
//!
//! A camera wakes up somewhere — an empty indoor room, a cluttered office,
//! or an outdoor terrace — and uploads the features of a short clip. The
//! controller compares the clip against its training library on the
//! Grassmann manifold (Section III of the paper) and answers two
//! questions: *where does this look like?* and therefore *which detection
//! algorithm should you run?* — the motivation for Fig. 3.

use eecs::core::config::EecsConfig;
use eecs::core::controller::Controller;
use eecs::core::features::FeatureExtractor;
use eecs::core::training::train_record;
use eecs::detect::bank::DetectorBank;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sequence::VideoFeed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training detector bank…");
    let bank = DetectorBank::train_quick(3)?;
    let mut config = EecsConfig::default();
    config.similarity.beta = 6;

    // Build the training library: camera 0 of each miniature dataset.
    let profiles: Vec<DatasetProfile> = DatasetId::ALL
        .iter()
        .map(|&id| DatasetProfile::miniature(id))
        .collect();
    let mut vocab_frames = Vec::new();
    let mut training = Vec::new();
    for p in &profiles {
        let feed = VideoFeed::open(p.clone(), 0);
        let frames = feed.annotated_frames(0, 40);
        vocab_frames.extend(frames.iter().take(3).map(|f| f.image.clone()));
        training.push(frames);
    }
    let extractor = FeatureExtractor::build(&vocab_frames, 12, 9)?;
    println!("running offline training (4 algorithms × 3 environments)…");
    let records = profiles
        .iter()
        .zip(&training)
        .map(|(p, frames)| {
            train_record(
                &format!("T_{} ({})", p.id.number(), p.id),
                frames,
                frames,
                &extractor,
                &bank,
                &config,
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let controller = Controller::new(records, Vec::new(), config)?;

    // An unknown feed arrives from each environment's *test* segment.
    for p in &profiles {
        let feed = VideoFeed::open(p.clone(), 0);
        let clip = feed.annotated_frames(40, 100);
        let images: Vec<_> = clip.iter().map(|f| f.image.clone()).collect();
        let item = extractor.extract_video("unknown clip", &images)?;
        let (m, record) = controller.match_feed(&item)?;
        let ranked = record.ranked();
        let best = ranked.first().expect("profiled algorithms");
        println!(
            "\nclip actually from: {:<18} matched: {} (similarity {:.2})",
            p.id.to_string(),
            m.best_name,
            m.best_similarity
        );
        println!(
            "  → run {} (f-score {:.2}, {:.2} J/frame); full ranking: {}",
            best.algorithm,
            best.f_score,
            best.energy_per_frame_j,
            ranked
                .iter()
                .map(|r| format!("{}({:.2})", r.algorithm, r.f_score))
                .collect::<Vec<_>>()
                .join(" > ")
        );
    }
    Ok(())
}
