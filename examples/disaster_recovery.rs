//! Disaster-recovery scenario (the paper's motivating deployment).
//!
//! ```bash
//! cargo run --release --example disaster_recovery
//! ```
//!
//! Battery-operated cameras are dropped around an outdoor site (the
//! "terrace" profile) to spot people. Each camera must survive a 6-hour
//! mission on a phone-class battery, processing one frame every 2 seconds —
//! exactly the budget derivation of Section VI ("Computing energy costs and
//! budget"). We compare how many people the naive always-best strategy and
//! EECS find, and what each does to the mission's energy budget.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs::detect::bank::DetectorBank;
use eecs::energy::budget::EnergyBudget;
use eecs::scene::dataset::{DatasetId, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training detector bank…");
    let bank = DetectorBank::train_quick(7)?;

    // Mission parameters: a 10 Wh (36 kJ) phone battery, with half the
    // capacity reserved for capture/radio idle, must last 6 hours at one
    // processed frame per 2 s.
    let usable_j = 18_000.0;
    let hours = 6.0;
    let frame_period_s = 2.0;
    let budget = EnergyBudget::from_operation(usable_j, hours, frame_period_s)?;
    println!(
        "mission: {hours} h at 1 frame / {frame_period_s} s → budget {:.3} J/frame",
        budget.joules_per_frame()
    );

    let mut profile = DatasetProfile::miniature(DatasetId::Terrace);
    profile.num_people = 5;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };

    println!("preparing simulation (offline training + matching)…");
    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 3,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: budget.joules_per_frame(),
            mode: OperatingMode::AllBest,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs::net::fault::FaultPlan::ideal(),
            parallel: eecs::core::simulation::Parallelism::default(),
        },
    )?;

    println!(
        "\n{:<26} {:>9} {:>12} {:>17}",
        "strategy", "found", "energy (J)", "mission headroom"
    );
    for (name, mode) in [
        ("always best algorithm", OperatingMode::AllBest),
        ("EECS (subset+downgrade)", OperatingMode::FullEecs),
    ] {
        let report = base.with_mode(mode).run()?;
        // Scale the measured per-frame energy up to the full mission.
        let frames_processed: f64 = report
            .rounds
            .iter()
            .map(|r| {
                (r.last_frame - r.first_frame + 1) as f64 * report.per_camera_energy.len() as f64
            })
            .sum();
        let per_frame = report.total_energy_j / frames_processed.max(1.0);
        let mission_frames = hours * 3600.0 / frame_period_s;
        let mission_energy = per_frame * mission_frames;
        println!(
            "{:<26} {:>5}/{:<3} {:>12.2} {:>16.0}%",
            name,
            report.correctly_detected,
            report.gt_objects,
            report.total_energy_j,
            100.0 * usable_j / mission_energy.max(1e-9),
        );
    }
    println!("\n(headroom > 100% ⇒ the battery outlives the mission)");
    Ok(())
}
