//! Disaster-recovery scenario (the paper's motivating deployment) —
//! now with the disaster actually happening to the equipment.
//!
//! ```bash
//! cargo run --release --example disaster_recovery
//! ```
//!
//! Battery-operated cameras are dropped around an outdoor site (the
//! "terrace" profile) to spot people. Conditions are hostile: dust and
//! low light corrupt the sensors (noise, blur, exposure drift, dropped
//! frames), one lens is partially occluded by debris, the radio links are
//! lossy, and halfway through the mission the mains-powered controller
//! dies. The run shows the self-healing stack in action: a clean baseline
//! first, then the same mission under chaos with a round-by-round
//! recovery timeline — which camera won the controller election, what
//! checkpoint it restored, and how detection quality degraded instead of
//! collapsing.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig, SimulationReport};
use eecs::core::telemetry::Telemetry;
use eecs::detect::bank::DetectorBank;
use eecs::energy::budget::EnergyBudget;
use eecs::net::fault::{ControllerFaultPlan, FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Round the controller dies at.
const CRASH_ROUND: usize = 1;

fn summarize(label: &str, report: &SimulationReport) {
    println!(
        "{label:<24} found {:>2}/{:<2}  energy {:>8.2} J  degraded {:>3} frames, \
         dropped {:>2}, quarantine strikes {}",
        report.correctly_detected,
        report.gt_objects,
        report.total_energy_j,
        report.degraded_frames,
        report.dropped_frames,
        report.quarantine_strikes,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training detector bank…");
    let bank = DetectorBank::train_quick(7)?;

    // Mission parameters: a 10 Wh (36 kJ) phone battery, with half the
    // capacity reserved for capture/radio idle, must last 6 hours at one
    // processed frame per 2 s (Section VI's budget derivation).
    let usable_j = 18_000.0;
    let hours = 6.0;
    let frame_period_s = 2.0;
    let budget = EnergyBudget::from_operation(usable_j, hours, frame_period_s)?;
    println!(
        "mission: {hours} h at 1 frame / {frame_period_s} s → budget {:.3} J/frame",
        budget.joules_per_frame()
    );

    let mut profile = DatasetProfile::miniature(DatasetId::Terrace);
    profile.num_people = 5;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };

    println!("preparing simulation (offline training + matching)…");
    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 3,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: budget.joules_per_frame(),
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: eecs::core::simulation::Parallelism::default(),
        },
    )?;

    // The disaster: degraded sensors everywhere, debris on camera 1's
    // lens, 20% packet loss, and the controller dying at round 1.
    let sensor_chaos = SensorFaultPlan::seeded(2024)
        .with_default_impairments(SensorImpairments::harsh())
        .with_occlusion(1, 40, 100, 0.25);
    let net_chaos = FaultPlan::seeded(2024).with_default_faults(LinkFaults::lossy(0.2));
    let controller_chaos = ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1);

    println!("\n--- mission outcomes ---");
    let clean = base.run()?;
    summarize("clean conditions", &clean);
    // The disaster run flies with the black box on: a flight recorder
    // capturing every probe, retransmit, detection and failover.
    let telemetry = Telemetry::recording(4096);
    let chaos = base
        .with_faults(net_chaos, sensor_chaos, controller_chaos)
        .with_telemetry(telemetry.clone())
        .run()?;
    summarize("full disaster", &chaos);

    println!("\n--- recovery timeline (disaster run) ---");
    for (i, round) in chaos.rounds.iter().enumerate() {
        let mut events = Vec::new();
        if let Some(f) = chaos.failovers.iter().find(|f| f.round == i) {
            events.push(format!(
                "CONTROLLER DOWN → camera {} elected, restored checkpoint of round {}, \
                 {} peer(s) acked the handover",
                f.elected, f.checkpoint_round, f.announced
            ));
        }
        println!(
            "round {i}: frames {:>3}–{:<3} active {:?} found {}/{} ({:.2} J){}",
            round.first_frame,
            round.last_frame,
            round.active,
            round.correct,
            round.gt,
            round.energy_j,
            if events.is_empty() {
                String::new()
            } else {
                format!("  [{}]", events.join("; "))
            },
        );
    }

    if let Some(f) = chaos.failovers.first() {
        println!(
            "\nthe controller died in round {}; camera {} took over within the same \
             assessment round — no round was lost.",
            f.round, f.elected
        );
    }
    println!(
        "detections degraded gracefully: {}/{} under full disaster vs {}/{} clean.",
        chaos.correctly_detected, chaos.gt_objects, clean.correctly_detected, clean.gt_objects
    );

    // Post-mortem: dump the flight-recorder slice around the crash — the
    // tail is inclusive, so the failover round itself is always in it.
    println!("\n--- black box: last 2 rounds of the disaster ---");
    let metrics = telemetry.metrics();
    println!(
        "net: {} attempts, {} retransmits, {} undelivered · {} quarantine strikes",
        metrics.counter("net.attempts"),
        metrics.counter("net.retransmits"),
        metrics.counter("net.undelivered"),
        metrics.counter("quarantine.strikes"),
    );
    println!("{}", telemetry.tail_json(2)?);
    Ok(())
}
