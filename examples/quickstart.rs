//! Quickstart: run the full EECS loop on a miniature camera network.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the four-detector bank, prepares a two-camera simulation of the
//! miniature "lab" dataset, and runs one full
//! assessment → selection → operation cycle, printing what the controller
//! decided and what it cost.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs::core::telemetry::{summary::render_summary, Telemetry};
use eecs::detect::bank::DetectorBank;
use eecs::scene::dataset::{DatasetId, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the four detection algorithms a camera node carries
    //    (HOG, ACF, C4, LSVM — Section V-A of the paper).
    println!("training detector bank…");
    let bank = DetectorBank::train_quick(42)?;

    // 2. Configure a miniature world: 4 people, 2 cameras, ground truth
    //    every 5 frames.
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,      // frames (2 annotated)
        recalibration_interval: 30, // frames (6 annotated)
        key_frames: 8,
        ..EecsConfig::default()
    };

    // 3. Prepare: offline training on the training segment, manifold
    //    matching of each camera's feed against the training library.
    println!("preparing simulation (offline training + matching)…");
    let sim = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs::net::fault::FaultPlan::ideal(),
            sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
            parallel: eecs::core::simulation::Parallelism::default(),
        },
    )?;

    // 4. Run the closed loop with an in-memory telemetry recorder
    //    attached, then render the standard summary table from it.
    let telemetry = Telemetry::recording(4096);
    let report = sim.with_telemetry(telemetry.clone()).run()?;
    println!("\n=== EECS run ===");
    println!("{}", render_summary(&report, &telemetry));
    println!(
        "detector runs: {} HOG · {} ACF · {} C4 · {} LSVM",
        telemetry.metrics().counter("detect.runs.hog"),
        telemetry.metrics().counter("detect.runs.acf"),
        telemetry.metrics().counter("detect.runs.c4"),
        telemetry.metrics().counter("detect.runs.lsvm"),
    );
    Ok(())
}
