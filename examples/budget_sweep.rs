//! Budget sweep: how EECS's choices change as the per-frame energy budget
//! shrinks (the knob between Fig. 5a and Fig. 5b of the paper).
//!
//! ```bash
//! cargo run --release --example budget_sweep
//! ```
//!
//! At generous budgets every algorithm is feasible and EECS picks the most
//! accurate, downgrading where the views overlap; as the budget tightens,
//! expensive algorithms drop out one by one until only ACF remains; below
//! ACF's cost the node cannot operate at all.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs::core::EecsError;
use eecs::detect::bank::DetectorBank;
use eecs::scene::dataset::{DatasetId, DatasetProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training detector bank…");
    let bank = DetectorBank::train_quick(11)?;

    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };

    println!("preparing simulation…");
    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 1.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs::net::fault::FaultPlan::ideal(),
            sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
            parallel: eecs::core::simulation::Parallelism::default(),
        },
    )?;

    // The measured per-algorithm costs anchor the sweep.
    let record = base.record_for_camera(0);
    println!("\nmeasured per-frame costs:");
    for p in record.ranked() {
        println!(
            "  {:>5}: {:.3} J (f-score {:.3})",
            p.algorithm.to_string(),
            p.energy_per_frame_j,
            p.f_score
        );
    }
    let min_cost = record
        .ranked()
        .iter()
        .map(|p| p.energy_per_frame_j)
        .fold(f64::INFINITY, f64::min);
    let max_cost = record
        .ranked()
        .iter()
        .map(|p| p.energy_per_frame_j)
        .fold(0.0f64, f64::max);

    println!(
        "\n{:>12}{:>12}{:>14}{:>30}",
        "budget J/fr", "found", "energy (J)", "round-1 assignment"
    );
    let mut budget = max_cost * 1.5;
    while budget > min_cost * 0.4 {
        match base.with_budget(budget)?.run() {
            Ok(report) => {
                let assignment: Vec<String> = report.rounds[0]
                    .assignment
                    .iter()
                    .map(|(cam, alg)| format!("cam{cam}→{alg}"))
                    .collect();
                println!(
                    "{budget:>12.3}{:>9}/{:<3}{:>13.2}{:>30}",
                    report.correctly_detected,
                    report.gt_objects,
                    report.total_energy_j,
                    assignment.join(" ")
                );
            }
            Err(EecsError::Infeasible(_)) => {
                println!(
                    "{budget:>12.3}{:>12}{:>14}{:>30}",
                    "-", "-", "infeasible: budget below ACF"
                );
            }
            Err(e) => return Err(e.into()),
        }
        budget /= 2.2;
    }
    Ok(())
}
