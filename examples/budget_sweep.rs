//! Budget sweep: how EECS's choices change as the per-frame energy budget
//! shrinks (the knob between Fig. 5a and Fig. 5b of the paper) — run as a
//! declarative grid on the `eecs_bench::sweep` engine, two workers wide.
//!
//! ```bash
//! cargo run --release --example budget_sweep
//! ```
//!
//! At generous budgets every algorithm is feasible and EECS picks the most
//! accurate, downgrading where the views overlap; as the budget tightens,
//! expensive algorithms drop out one by one until only ACF remains; below
//! ACF's cost the node cannot operate at all — those cells record
//! `infeasible` instead of failing the sweep.

use eecs::core::config::EecsConfig;
use eecs::core::jsonio::Json;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs::core::EecsError;
use eecs::detect::bank::DetectorBank;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs_bench::sweep::{run_sweep, Shard, SweepOptions, SweepSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training detector bank…");
    let bank = DetectorBank::train_quick(11)?;

    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };

    println!("preparing simulation…");
    let base = Simulation::prepare(
        bank,
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 1.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs::net::fault::FaultPlan::ideal(),
            sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
            parallel: eecs::core::simulation::Parallelism::serial(),
        },
    )?;

    // The measured per-algorithm costs anchor the sweep.
    let record = base.record_for_camera(0);
    println!("\nmeasured per-frame costs:");
    for p in record.ranked() {
        println!(
            "  {:>5}: {:.3} J (f-score {:.3})",
            p.algorithm.to_string(),
            p.energy_per_frame_j,
            p.f_score
        );
    }
    let costs: Vec<f64> = record
        .ranked()
        .iter()
        .map(|p| p.energy_per_frame_j)
        .collect();
    let min_cost = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let max_cost = costs.iter().copied().fold(0.0f64, f64::max);

    // Geometric budget ladder → one sweep axis of stable labels (the
    // labels ARE the budgets, so every cell is a pure function of its
    // coordinates).
    let mut budgets = Vec::new();
    let mut budget = max_cost * 1.5;
    while budget > min_cost * 0.4 {
        budgets.push(format!("{budget:.4}"));
        budget /= 2.2;
    }
    let spec = SweepSpec::new("budget_sweep").axis("budget", budgets.clone());

    let shard = Shard::new(spec, |job| {
        let budget: f64 = job
            .value("budget")
            .and_then(|b| b.parse().ok())
            .ok_or("budget axis is not numeric")?;
        let sim = base.with_budget(budget).map_err(|e| e.to_string())?;
        match sim.run() {
            Ok(report) => {
                let assignment = report.rounds[0]
                    .assignment
                    .iter()
                    .map(|(cam, alg)| Json::Str(format!("cam{cam}→{alg}")))
                    .collect();
                Ok(Json::Obj(vec![
                    ("found".into(), Json::Num(report.correctly_detected as f64)),
                    ("gt".into(), Json::Num(report.gt_objects as f64)),
                    ("energy_j".into(), Json::Num(report.total_energy_j)),
                    ("assignment".into(), Json::Arr(assignment)),
                ]))
            }
            Err(EecsError::Infeasible(_)) => {
                Ok(Json::Obj(vec![("infeasible".into(), Json::Bool(true))]))
            }
            Err(e) => Err(e.to_string()),
        }
    });

    let outcome = run_sweep(
        &shard,
        &SweepOptions {
            workers: 2,
            ..Default::default()
        },
    )?;
    let doc = eecs::core::jsonio::parse(&outcome.merged.ok_or("sweep incomplete")?)?;
    let cells = doc.get("shards").and_then(Json::as_arr).unwrap()[0]
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap();

    println!(
        "\n{:>12}{:>12}{:>14}{:>30}",
        "budget J/fr", "found", "energy (J)", "round-1 assignment"
    );
    for (label, cell) in budgets.iter().zip(cells) {
        let data = cell.get("data").unwrap();
        let budget: f64 = label.parse().unwrap();
        if data.get("infeasible").is_some() {
            println!(
                "{budget:>12.3}{:>12}{:>14}{:>30}",
                "-", "-", "infeasible: budget below ACF"
            );
            continue;
        }
        let assignment: Vec<&str> = data
            .get("assignment")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        println!(
            "{budget:>12.3}{:>9}/{:<3}{:>13.2}{:>30}",
            data.get("found").and_then(Json::as_num).unwrap(),
            data.get("gt").and_then(Json::as_num).unwrap(),
            data.get("energy_j").and_then(Json::as_num).unwrap(),
            assignment.join(" ")
        );
    }
    Ok(())
}
