//! Mission service quickstart: eight missions, two tenants, one shared
//! training pass.
//!
//! ```bash
//! cargo run --release --example mission_service
//! ```
//!
//! Submits a mixed batch — priorities, deadlines, per-mission chaos
//! plans — to an admission-controlled [`MissionService`] and prints the
//! virtual-clock trace and each tenant's summary. Run it twice: the
//! trace bytes are identical, whatever the worker count.

use eecs_bench::artifacts::Artifacts;
use eecs_bench::serving::{mixed_batch, service_base};
use eecs_bench::Scale;
use eecs_serve::{BatchOptions, MissionService, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One training pass for every mission: the memoized artifact
    //    cache trains the detector bank once, and the prepared base
    //    simulation (dataset, matching, records) is shared read-only.
    println!("preparing shared base (one training pass)…");
    let artifacts = Artifacts::quick_trained(Scale::Quick, 5);
    let base = service_base(&artifacts);

    // 2. Eight mission requests from two tenants: cycling priorities,
    //    budgets and deadlines, with seeded link-loss, corruption and
    //    churn plans mixed in.
    let batch = mixed_batch(8, &["acme", "zenith"], true);

    // 3. A 2-slot service with a 4-deep admission queue, scheduling on a
    //    seeded virtual clock — the whole run is a pure function of
    //    (seed, request list).
    let config = ServiceConfig::new(7)
        .with_slots(2)
        .with_queue_capacity(4)
        .with_workers(4);
    let service = MissionService::new(base, config);

    // 4. Plan, execute concurrently, assemble deterministically.
    println!("running {} missions…", batch.len());
    let outcome = service.run_batch(&batch, &BatchOptions::default())?;
    let run = outcome.run.expect("uninterrupted batches always assemble");

    // 5. The virtual-clock trace: starts, finishes, rejections.
    println!("\nservice trace (virtual ticks):");
    for event in &run.schedule.events {
        println!("  {event:?}");
    }

    // 6. Per-tenant accounting.
    println!("\nper-tenant summary:");
    for (tenant, t) in &run.tenants {
        println!(
            "  {tenant:>8}: submitted {} admitted {} rejected {} completed {} deadline_missed {}",
            t.submitted, t.admitted, t.rejected, t.completed, t.deadline_missed
        );
    }

    // 7. Each completion carries the exact bytes a direct run produces.
    println!("\ncompleted missions:");
    for c in &run.completed {
        println!(
            "  mission {} ({}): ticks {}..{} deadline_met={} report_crc={:08x} energy_bits={:016x}",
            c.mission,
            c.tenant,
            c.started_tick,
            c.finished_tick,
            c.deadline_met,
            c.report_crc,
            c.energy_bits
        );
    }
    println!("\nmax queue depth: {}", run.schedule.max_queue_depth);
    Ok(())
}
