//! Integration: energy accounting invariants across camera nodes, the
//! network, and the budget machinery.

use eecs::core::camera_node::CameraNode;
use eecs::core::profile::AlgorithmProfile;
use eecs::detect::bank::DetectorBank;
use eecs::detect::detection::AlgorithmId;
use eecs::detect::probability::ScoreCalibration;
use eecs::energy::budget::{BatteryState, EnergyBudget};
use eecs::energy::comm::LinkModel;
use eecs::energy::meter::EnergyCategory;
use eecs::energy::model::DeviceEnergyModel;
use eecs::net::message::{Message, WireSize};
use eecs::net::transport::Network;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sequence::VideoFeed;

fn profile_for(alg: AlgorithmId) -> AlgorithmProfile {
    AlgorithmProfile {
        algorithm: alg,
        threshold: 0.0,
        recall: 0.5,
        precision: 0.5,
        f_score: 0.5,
        energy_per_frame_j: 0.1,
        processing_time_s: 0.1,
        calibration: ScoreCalibration::from_parts(1.0, 0.0),
    }
}

#[test]
fn battery_meter_and_detector_ops_agree() {
    let bank = DetectorBank::train_quick(31).expect("bank");
    let device = DeviceEnergyModel::default();
    let frame = VideoFeed::open(DatasetProfile::miniature(DatasetId::Lab), 0)
        .frame(5)
        .image;
    let mut node = CameraNode::new(
        0,
        bank.clone(),
        BatteryState::new(1_000.0).unwrap(),
        EnergyBudget::per_frame(5.0).unwrap(),
    );
    // Run each algorithm once; the node's meter must equal the ops-derived
    // energy, and the battery must have drained exactly that much.
    let mut expected = 0.0;
    for alg in AlgorithmId::ALL {
        let ops = bank.detector(alg).detect(&frame).ops;
        expected += device.processing_energy(ops);
        node.run_algorithm(alg, &frame, &profile_for(alg), &device)
            .expect("battery ample");
    }
    let metered = node.meter().by_category(EnergyCategory::Processing);
    assert!(
        (metered - expected).abs() < 1e-9,
        "meter {metered} vs expected {expected}"
    );
    assert!((node.battery().used() - expected).abs() < 1e-9);
}

#[test]
fn network_and_node_charge_the_same_bytes_identically() {
    let device = DeviceEnergyModel::default();
    let link = LinkModel::default();
    let msg = Message::DetectionMetadata { objects: 3 };

    // Through the network abstraction…
    let mut net = Network::new(1, link, device);
    let mut bat1 = BatteryState::new(100.0).unwrap();
    let mut meter1 = eecs::energy::meter::PowerMeter::new();
    net.send(0, msg.clone(), &mut bat1, &mut meter1).unwrap();

    // …and through a camera node directly.
    let bank = DetectorBank::train_quick(32).expect("bank");
    let mut node = CameraNode::new(
        0,
        bank,
        BatteryState::new(100.0).unwrap(),
        EnergyBudget::per_frame(1.0).unwrap(),
    );
    node.charge_transmission(msg.wire_bytes(), &device, &link)
        .unwrap();

    assert!(
        (bat1.used() - node.battery().used()).abs() < 1e-12,
        "two accounting paths disagree: {} vs {}",
        bat1.used(),
        node.battery().used()
    );
}

#[test]
fn budget_feasibility_is_monotone_in_budget() {
    // If an algorithm fits budget B it must fit every B' > B.
    let costs = [0.07, 1.08, 3.31, 4.92];
    let budgets = [0.05, 0.07, 0.5, 1.08, 2.0, 5.0];
    let mut previous_feasible = 0;
    for b in budgets {
        let budget = EnergyBudget::per_frame(b).unwrap();
        let feasible = costs.iter().filter(|&&c| budget.allows(c)).count();
        assert!(feasible >= previous_feasible, "feasible set shrank at {b}");
        previous_feasible = feasible;
    }
    assert_eq!(previous_feasible, 4);
}

#[test]
fn degraded_link_never_cheapens_transmission() {
    let device = DeviceEnergyModel::default();
    let bytes = 10_000;
    let mut last = 0.0;
    for q in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let link = LinkModel::new(20e6, q).unwrap();
        let e = link.transmit_energy(bytes, &device);
        assert!(e >= last, "quality {q} made transmission cheaper");
        last = e;
    }
}
