//! Integration: cross-camera re-identification on rendered frames with
//! *ground-truth* boxes as detections — isolates the homography + color
//! fusion quality from the detectors (the paper reports > 90% re-id
//! precision; with exact boxes the simulator should match people across
//! views essentially perfectly).

use eecs::core::accuracy::count_correct;
use eecs::core::metadata::{CameraReport, ObjectMetadata};
use eecs::core::reid::{fuse_reports, ReidConfig};
use eecs::detect::detection::BBox;
use eecs::geometry::point::Point2;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::rig::{camera_rig, rig_calibrations};
use eecs::scene::sequence::VideoFeed;
use eecs::vision::color::mean_color_feature;

#[test]
fn ground_truth_boxes_fuse_to_the_right_people() {
    let profile = DatasetProfile::miniature(DatasetId::Lab);
    let rig = camera_rig(&profile);
    let cals = rig_calibrations(&profile, &rig);
    let reid = ReidConfig {
        ground_gate_m: 0.9,
        color_gate: 8.0,
        color_metric: None,
    };

    let feeds: Vec<_> = (0..4)
        .map(|j| VideoFeed::open(profile.clone(), j))
        .collect();
    let mut frames_checked = 0;
    let mut total_gt = 0usize;
    let mut total_correct = 0usize;
    let mut overcount = 0usize;
    for f in [10usize, 30, 60, 90] {
        let per_cam: Vec<_> = feeds.iter().map(|feed| feed.frame(f)).collect();
        let mut reports = Vec::new();
        let mut gt_ids = std::collections::BTreeMap::new();
        for (j, fd) in per_cam.iter().enumerate() {
            let mut objects = Vec::new();
            for g in &fd.gt {
                if g.visibility < 0.5 {
                    continue;
                }
                gt_ids.entry(g.human_id).or_insert(g.ground);
                let color = mean_color_feature(
                    &fd.image,
                    g.x0 as usize,
                    g.y0 as usize,
                    (g.x1 - g.x0).max(2.0) as usize,
                    (g.y1 - g.y0).max(2.0) as usize,
                )
                .unwrap_or_else(|_| vec![0.0; 40]);
                objects.push(ObjectMetadata {
                    camera: j,
                    bbox: BBox::new(g.x0, g.y0, g.x1, g.y1),
                    probability: 0.9,
                    color,
                });
            }
            reports.push(CameraReport { objects });
        }
        let fused = fuse_reports(&reports, &cals, &reid);
        let positions: Vec<Point2> = gt_ids.values().copied().collect();
        let correct = count_correct(&fused, &positions, 1.0);
        total_gt += positions.len();
        total_correct += correct;
        // Over-fragmentation check: fused objects should not wildly exceed
        // the number of real people.
        if fused.len() > positions.len() * 2 {
            overcount += 1;
        }
        frames_checked += 1;
    }
    assert_eq!(frames_checked, 4);
    assert!(total_gt > 0);
    let recall = total_correct as f64 / total_gt as f64;
    assert!(recall > 0.9, "re-id recall {recall} from exact boxes");
    assert_eq!(
        overcount, 0,
        "fusion fragmented objects in {overcount} frames"
    );
}

#[test]
fn fused_probability_grows_with_view_count() {
    let profile = DatasetProfile::miniature(DatasetId::Lab);
    let rig = camera_rig(&profile);
    let cals = rig_calibrations(&profile, &rig);
    let reid = ReidConfig {
        ground_gate_m: 0.9,
        color_gate: 8.0,
        color_metric: None,
    };
    let feeds: Vec<_> = (0..4)
        .map(|j| VideoFeed::open(profile.clone(), j))
        .collect();
    let per_cam: Vec<_> = feeds.iter().map(|feed| feed.frame(20)).collect();
    let build = |cams: &[usize]| -> Vec<CameraReport> {
        cams.iter()
            .map(|&j| CameraReport {
                objects: per_cam[j]
                    .gt
                    .iter()
                    .filter(|g| g.visibility >= 0.5)
                    .map(|g| ObjectMetadata {
                        camera: j,
                        bbox: BBox::new(g.x0, g.y0, g.x1, g.y1),
                        probability: 0.6,
                        color: vec![0.5; 3],
                    })
                    .collect(),
            })
            .collect()
    };
    let one = fuse_reports(&build(&[0]), &cals, &reid);
    let four = fuse_reports(&build(&[0, 1, 2, 3]), &cals, &reid);
    let mean = |objs: &[eecs::core::reid::FusedObject]| {
        objs.iter().map(|o| o.probability).sum::<f64>() / objs.len().max(1) as f64
    };
    assert!(
        mean(&four) > mean(&one),
        "Eq. 6 fusion should raise confidence: {} vs {}",
        mean(&four),
        mean(&one)
    );
}
