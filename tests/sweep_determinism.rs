//! The sweep engine's headline guarantee: the merged document is
//! **byte-identical** regardless of worker count or job execution order.
//!
//! A small (budget × fault-seed) grid over a real miniature simulation is
//! swept with workers ∈ {1, 2, 8} and with the job list shuffled; every
//! merge must match the single-worker reference byte for byte, and every
//! f64 inside must match bit for bit.

use eecs::core::config::EecsConfig;
use eecs::core::jsonio::{self, Json};
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::detect::bank::DetectorBank;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs_bench::sweep::{run_sweep, JobOrder, Shard, SweepOptions, SweepSpec};
use std::sync::OnceLock;

/// One prepared miniature simulation shared by every run in this file.
fn base_simulation() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        let bank = DetectorBank::train_quick(9).expect("bank training");
        let mut profile = DatasetProfile::miniature(DatasetId::Lab);
        profile.num_people = 4;
        Simulation::prepare(
            bank,
            SimulationConfig {
                profile,
                cameras: 2,
                start_frame: 40,
                end_frame: 70,
                budget_j_per_frame: 10.0,
                mode: OperatingMode::FullEecs,
                eecs: EecsConfig {
                    assessment_period: 10,
                    recalibration_interval: 30,
                    key_frames: 8,
                    ..EecsConfig::default()
                },
                feature_words: 12,
                max_training_frames: 8,
                boost_every: 0,
                fault_plan: eecs::net::fault::FaultPlan::ideal(),
                sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
                controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
                parallel: Parallelism::serial(),
            },
        )
        .expect("simulation preparation")
    })
}

fn grid_shard() -> Shard<'static> {
    let spec = SweepSpec::new("det_grid")
        .axis("budget", ["9.0", "12.0"])
        .axis("fault_seed", ["3", "4"]);
    Shard::new(spec, |job| {
        let budget: f64 = job.value("budget").unwrap().parse().unwrap();
        let seed: u64 = job.value("fault_seed").unwrap().parse().unwrap();
        let report = base_simulation()
            .with_budget(budget)
            .map_err(|e| e.to_string())?
            .with_faults(
                eecs::net::fault::FaultPlan::seeded(seed),
                eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
                eecs::net::fault::ControllerFaultPlan::none(),
            )
            .run()
            .map_err(|e| e.to_string())?;
        Ok(Json::Obj(vec![
            (
                "detected".into(),
                Json::Num(report.correctly_detected as f64),
            ),
            ("gt".into(), Json::Num(report.gt_objects as f64)),
            ("energy_j".into(), Json::Num(report.total_energy_j)),
        ]))
    })
}

/// Every f64 leaf of a JSON value, in document order, as raw bits.
fn f64_bits(v: &Json, out: &mut Vec<u64>) {
    match v {
        Json::Num(n) => out.push(n.to_bits()),
        Json::Arr(items) => items.iter().for_each(|i| f64_bits(i, out)),
        Json::Obj(members) => members.iter().for_each(|(_, m)| f64_bits(m, out)),
        _ => {}
    }
}

#[test]
fn merged_sweep_is_byte_identical_across_workers_and_order() {
    let shard = grid_shard();
    let reference = run_sweep(
        &shard,
        &SweepOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("reference sweep")
    .merged
    .expect("reference merge");

    let mut ref_bits = Vec::new();
    f64_bits(
        &jsonio::parse(&reference).expect("reference parses"),
        &mut ref_bits,
    );
    assert!(!ref_bits.is_empty(), "grid cells carry f64 data");

    for (workers, order) in [
        (2, JobOrder::InOrder),
        (8, JobOrder::InOrder),
        (1, JobOrder::Shuffled(41)),
        (8, JobOrder::Shuffled(1234)),
    ] {
        let merged = run_sweep(
            &shard,
            &SweepOptions {
                workers,
                order,
                ..Default::default()
            },
        )
        .expect("sweep")
        .merged
        .expect("merge");

        // Raw bytes, the strongest form…
        assert_eq!(
            merged.as_bytes(),
            reference.as_bytes(),
            "workers={workers} order={order:?}"
        );
        // …and explicitly the f64 payloads bit for bit.
        let mut bits = Vec::new();
        f64_bits(&jsonio::parse(&merged).expect("merge parses"), &mut bits);
        assert_eq!(bits, ref_bits, "workers={workers} order={order:?}");
    }
}
