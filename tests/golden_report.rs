//! Golden-master snapshots: four canonical runs (ideal, net-chaos,
//! sensor-chaos, churn-fleet) serialized — report + final metrics
//! registry — through `eecs_core::jsonio` and compared byte-for-byte
//! against checked-in `tests/golden/*.json`.
//!
//! Regenerate after an intentional behavior change with:
//!
//! ```sh
//! EECS_BLESS=1 cargo test --test golden_report
//! ```
//!
//! Every scenario runs under both serial and default (parallel)
//! execution and must produce the same bytes — the snapshot doubles as
//! the determinism regression net for the telemetry layer.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::core::telemetry::summary::golden_document;
use eecs::core::telemetry::Telemetry;
use eecs::detect::bank::DetectorBank;
use eecs::energy::profile::DeviceProfile;
use eecs::net::fault::{ChurnPlan, ControllerFaultPlan, FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Flight-recorder capacity for golden runs — large enough that nothing
/// is evicted, so the trace comparisons see the whole run.
const TRACE_CAPACITY: usize = 4096;

fn base_simulation() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut profile = DatasetProfile::miniature(DatasetId::Lab);
        profile.num_people = 4;
        let eecs = EecsConfig {
            assessment_period: 10,
            recalibration_interval: 30,
            key_frames: 8,
            ..EecsConfig::default()
        };
        Simulation::prepare(
            DetectorBank::train_quick(42).expect("bank"),
            SimulationConfig {
                profile,
                cameras: 2,
                start_frame: 40,
                end_frame: 100,
                budget_j_per_frame: 10.0,
                mode: OperatingMode::FullEecs,
                eecs,
                feature_words: 12,
                max_training_frames: 8,
                boost_every: 0,
                fault_plan: FaultPlan::ideal(),
                sensor_plan: SensorFaultPlan::ideal(),
                controller_plan: ControllerFaultPlan::none(),
                parallel: Parallelism::default(),
            },
        )
        .expect("prepare")
    })
}

/// Heterogeneous fleet under churn: three distinct device profiles,
/// with the lowend camera leaving at round 1 and rejoining at round 3.
fn churn_fleet_simulation() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut profile = DatasetProfile::miniature(DatasetId::Lab);
        profile.num_people = 4;
        let eecs = EecsConfig {
            assessment_period: 10,
            recalibration_interval: 30,
            key_frames: 8,
            ..EecsConfig::default()
        };
        Simulation::prepare(
            DetectorBank::train_quick(42).expect("bank"),
            SimulationConfig {
                profile,
                cameras: 3,
                start_frame: 40,
                end_frame: 160,
                budget_j_per_frame: 10.0,
                mode: OperatingMode::FullEecs,
                eecs,
                feature_words: 12,
                max_training_frames: 8,
                boost_every: 0,
                fault_plan: FaultPlan::ideal(),
                sensor_plan: SensorFaultPlan::ideal(),
                controller_plan: ControllerFaultPlan::none(),
                parallel: Parallelism::default(),
            },
        )
        .expect("prepare")
        .with_fleet(vec![
            DeviceProfile::flagship(),
            DeviceProfile::midrange(),
            DeviceProfile::lowend(),
        ])
        .expect("fleet")
        .with_churn(ChurnPlan::seeded(13).with_leave(2, 1, 3))
    })
}

/// The four canonical scenarios, with fixed seeds.
fn scenario(name: &str) -> Simulation {
    let base = base_simulation();
    match name {
        "ideal" => base.clone(),
        "net_chaos" => base.with_faults(
            FaultPlan::seeded(7).with_default_faults(LinkFaults::lossy(0.25)),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none(),
        ),
        "sensor_chaos" => base.with_faults(
            FaultPlan::ideal(),
            SensorFaultPlan::seeded(11)
                .with_default_impairments(SensorImpairments::harsh())
                .with_occlusion(1, 40, 100, 0.25),
            ControllerFaultPlan::none(),
        ),
        "churn_fleet" => churn_fleet_simulation().clone(),
        other => panic!("unknown scenario {other}"),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Runs one scenario under the given parallelism with a fresh recording
/// telemetry handle; returns `(golden document, full trace JSON)`.
fn run_scenario(name: &str, parallel: Parallelism) -> (String, String) {
    let tel = Telemetry::recording(TRACE_CAPACITY);
    let sim = scenario(name)
        .with_telemetry(tel.clone())
        .with_parallelism(parallel);
    let report = sim.run().expect("scenario run");
    let doc = golden_document(name, &report, &tel).expect("golden document");
    let trace = tel.trace_json().expect("trace dump");
    assert_eq!(
        tel.trace_evicted(),
        0,
        "{name}: raise TRACE_CAPACITY, the recorder overflowed"
    );
    (doc, trace)
}

#[test]
fn golden_reports_match_byte_for_byte() {
    let bless = std::env::var_os("EECS_BLESS").is_some_and(|v| v == "1");
    for name in ["ideal", "net_chaos", "sensor_chaos", "churn_fleet"] {
        let (serial_doc, serial_trace) = run_scenario(name, Parallelism::serial());
        let (parallel_doc, parallel_trace) = run_scenario(name, Parallelism::default());

        // Same seed + config ⇒ same bytes, regardless of worker count.
        assert_eq!(
            serial_doc, parallel_doc,
            "{name}: serial and parallel documents diverged"
        );
        assert_eq!(
            serial_trace, parallel_trace,
            "{name}: serial and parallel trace streams diverged"
        );
        // The document is real JSON and re-encoding it is a fixed point.
        let reparsed = eecs::core::jsonio::parse(&serial_doc).expect("valid JSON");
        assert_eq!(reparsed.write().expect("re-encode"), serial_doc);

        let path = golden_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(&path, &serial_doc).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nrun `EECS_BLESS=1 cargo test --test golden_report` to generate",
                path.display()
            )
        });
        assert_eq!(
            serial_doc, expected,
            "{name}: golden mismatch — if the change is intentional, re-bless with \
             EECS_BLESS=1 cargo test --test golden_report"
        );
    }
}

/// The 3×2 (fault-seed × budget) micro-sweep behind `sweep_tiny.json`.
fn tiny_sweep_shard() -> eecs_bench::sweep::Shard<'static> {
    use eecs::core::jsonio::Json;
    let spec = eecs_bench::sweep::SweepSpec::new("sweep_tiny")
        .axis("fault_seed", ["1", "2", "3"])
        .axis("budget", ["9.0", "12.0"]);
    eecs_bench::sweep::Shard::new(spec, |job| {
        let seed: u64 = job.value("fault_seed").unwrap().parse().unwrap();
        let budget: f64 = job.value("budget").unwrap().parse().unwrap();
        let report = base_simulation()
            .with_budget(budget)
            .map_err(|e| e.to_string())?
            .with_faults(
                FaultPlan::seeded(seed).with_default_faults(LinkFaults::lossy(0.25)),
                SensorFaultPlan::ideal(),
                ControllerFaultPlan::none(),
            )
            .with_parallelism(Parallelism::serial())
            .run()
            .map_err(|e| e.to_string())?;
        Ok(Json::Obj(vec![
            (
                "detected".into(),
                Json::Num(report.correctly_detected as f64),
            ),
            ("gt".into(), Json::Num(report.gt_objects as f64)),
            ("energy_j".into(), Json::Num(report.total_energy_j)),
            (
                "retries".into(),
                Json::Num(report.total_transport().retries as f64),
            ),
        ]))
    })
}

#[test]
fn golden_sweep_tiny_matches_byte_for_byte() {
    use eecs_bench::sweep::{run_sweep, SweepOptions};
    let shard = tiny_sweep_shard();
    let sweep = |workers: usize| {
        run_sweep(
            &shard,
            &SweepOptions {
                workers,
                ..Default::default()
            },
        )
        .expect("tiny sweep")
        .merged
        .expect("tiny sweep merge")
    };
    let serial = sweep(1);
    assert_eq!(
        serial,
        sweep(2),
        "sweep_tiny: one and two workers must merge to the same bytes"
    );
    // The merged document is real JSON and re-encoding it is a fixed point.
    let reparsed = eecs::core::jsonio::parse(&serial).expect("valid JSON");
    assert_eq!(reparsed.write().expect("re-encode"), serial);

    let path = golden_path("sweep_tiny");
    if std::env::var_os("EECS_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, &serial).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\nrun `EECS_BLESS=1 cargo test --test golden_report` to generate",
            path.display()
        )
    });
    assert_eq!(
        serial, expected,
        "sweep_tiny: golden mismatch — if the change is intentional, re-bless with \
         EECS_BLESS=1 cargo test --test golden_report"
    );
}

#[test]
fn null_telemetry_is_bit_identical_to_untelemetered_runs() {
    // The base simulation carries the default `Telemetry::null()` — the
    // exact HEAD configuration. Attaching a recording handle must not
    // change a single bit of the report, and an explicit null handle
    // must be indistinguishable from never touching telemetry at all.
    let base = scenario("ideal");
    let untouched = base.run().expect("untelemetered run");
    let null = base
        .with_telemetry(Telemetry::null())
        .run()
        .expect("null-sink run");
    let recorded_tel = Telemetry::recording(TRACE_CAPACITY);
    let recorded = base
        .with_telemetry(recorded_tel.clone())
        .run()
        .expect("recording run");

    for report in [&null, &recorded] {
        assert_eq!(&untouched, report);
        assert_eq!(
            untouched.total_energy_j.to_bits(),
            report.total_energy_j.to_bits()
        );
        for (a, b) in untouched
            .per_camera_energy
            .iter()
            .zip(&report.per_camera_energy)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // And the recording run actually recorded something.
    assert!(!recorded_tel.metrics().is_empty());
    assert!(!recorded_tel.events().is_empty());
}

/// Long-run telemetry soak: 4 cameras, every chaos layer armed, and a
/// deliberately tiny flight recorder. Run with `EECS_SOAK=1 ci.sh` or
/// `cargo test -- --ignored`.
#[test]
#[ignore]
fn telemetry_soak_bounded_memory_and_determinism() {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    let sim = Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 160,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::seeded(42).with_default_faults(LinkFaults::lossy(0.2)),
            sensor_plan: SensorFaultPlan::seeded(42)
                .with_default_impairments(SensorImpairments::harsh()),
            controller_plan: ControllerFaultPlan::none().with_crash(1, 2),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare");

    const SMALL: usize = 128;
    let run = |parallel: Parallelism| {
        let tel = Telemetry::recording(SMALL);
        let report = sim
            .with_telemetry(tel.clone())
            .with_parallelism(parallel)
            .run()
            .expect("soak run");
        (report, tel)
    };
    let (report_a, tel_a) = run(Parallelism::serial());
    let (report_b, tel_b) = run(Parallelism::default());

    // Memory stays bounded and the ring actually wrapped.
    assert!(tel_a.events().len() <= SMALL);
    assert!(tel_a.trace_evicted() > 0, "soak too short to wrap the ring");
    // The tail still covers the newest rounds, including the last one.
    let last_round = report_a.rounds.len() - 1;
    assert!(tel_a.tail_events(1).iter().all(|e| e.round() == last_round));
    // Bit-identical across executions, even under chaos + failover.
    assert_eq!(report_a, report_b);
    assert_eq!(report_a.failovers.len(), 1);
    assert_eq!(
        tel_a.metrics_json().expect("metrics"),
        tel_b.metrics_json().expect("metrics")
    );
    assert_eq!(
        tel_a.trace_json().expect("trace"),
        tel_b.trace_json().expect("trace")
    );
}
