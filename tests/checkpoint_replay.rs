//! Checkpoint/failover invariant: a run whose controller dies mid-chaos
//! and restores from its checkpoint replays to the same final report —
//! and the same telemetry stream — every single time. Exact equality,
//! down to the bits and the bytes.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::core::telemetry::{Telemetry, TraceEvent};
use eecs::detect::bank::DetectorBank;
use eecs::net::fault::{ControllerFaultPlan, FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Round in which the controller crash window opens.
const CRASH_ROUND: usize = 1;

fn crash_simulation(seed: u64) -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::seeded(seed).with_default_faults(LinkFaults::lossy(0.2)),
            sensor_plan: SensorFaultPlan::seeded(seed)
                .with_default_impairments(SensorImpairments::harsh()),
            controller_plan: ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare")
}

#[test]
fn checkpoint_restore_replays_to_identical_report_and_telemetry() {
    let sim = crash_simulation(42);
    let run = || {
        let tel = Telemetry::recording(8192);
        let report = sim
            .with_telemetry(tel.clone())
            .run()
            .expect("crash run completes");
        (report, tel)
    };
    let (report_a, tel_a) = run();
    let (report_b, tel_b) = run();

    // The disaster actually happened, and recovery restored an earlier
    // checkpoint.
    assert_eq!(report_a.failovers.len(), 1, "{:?}", report_a.failovers);
    let failover = &report_a.failovers[0];
    assert_eq!(failover.round, CRASH_ROUND);
    assert!(failover.checkpoint_round < CRASH_ROUND);

    // Replay invariant: the restored run is not merely "close" — it is
    // the same run. Report bits and telemetry bytes, both.
    assert_eq!(report_a, report_b);
    assert_eq!(
        report_a.total_energy_j.to_bits(),
        report_b.total_energy_j.to_bits()
    );
    assert_eq!(
        tel_a.metrics_json().expect("metrics"),
        tel_b.metrics_json().expect("metrics")
    );
    assert_eq!(
        tel_a.trace_json().expect("trace"),
        tel_b.trace_json().expect("trace")
    );
    assert_eq!(
        tel_a.tail_json(2).expect("tail"),
        tel_b.tail_json(2).expect("tail")
    );
}

#[test]
fn failover_round_appears_in_the_telemetry_tail() {
    let sim = crash_simulation(42);
    let tel = Telemetry::recording(8192);
    let report = sim
        .with_telemetry(tel.clone())
        .run()
        .expect("crash run completes");
    let reported = &report.failovers[0];

    // The trace carries a Failover event whose fields agree with the
    // report's own record of the disaster.
    let events = tel.events();
    let trace_failovers: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Failover { .. }))
        .collect();
    assert_eq!(trace_failovers.len(), 1);
    match trace_failovers[0] {
        TraceEvent::Failover {
            round,
            elected,
            checkpoint_round,
            announced,
        } => {
            assert_eq!(*round, reported.round);
            assert_eq!(*elected, reported.elected);
            assert_eq!(*checkpoint_round, reported.checkpoint_round);
            assert_eq!(*announced, reported.announced);
        }
        other => panic!("unexpected event {other:?}"),
    }

    // A tail slice anchored at the crash covers the failover round itself
    // — the "last N rounds before the failure" dump a post-mortem needs.
    let tail = tel.tail_events(report.rounds.len() - CRASH_ROUND);
    assert!(
        tail.iter()
            .any(|e| matches!(e, TraceEvent::Failover { round, .. } if *round == CRASH_ROUND)),
        "tail slice missed the failover round"
    );
    // And the JSON tail dump mentions it too.
    let json = tel
        .tail_json(report.rounds.len() - CRASH_ROUND)
        .expect("tail json");
    assert!(json.contains("\"failover\""), "{json}");
}
