//! Integrity end-to-end: a four-camera EECS mission under a seeded
//! bit-flip corruption storm must detect every corrupt frame at the
//! checksum trailer (never consume one), pay for the wasted attempts in
//! energy, and stay bit-for-bit deterministic; a torn checkpoint write
//! must roll the crash restore back exactly one generation; and inert
//! integrity plans must leave every report byte-identical to runs that
//! never heard of them.

use eecs::core::checkpoint::CheckpointFaultPlan;
use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::core::telemetry::summary::golden_document;
use eecs::core::telemetry::Telemetry;
use eecs::detect::bank::DetectorBank;
use eecs::net::fault::{ControllerFaultPlan, CorruptionPlan, FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Round the controller dies at in the torn-checkpoint scenario.
const CRASH_ROUND: usize = 1;

fn base_simulation() -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare")
}

/// Lossy links plus a heavy corruption storm on every wire path.
fn storm_simulation() -> Simulation {
    base_simulation().with_faults(
        FaultPlan::seeded(17)
            .with_default_faults(LinkFaults::lossy(0.1))
            .with_corruption(CorruptionPlan::with_rate(0.3)),
        SensorFaultPlan::ideal(),
        ControllerFaultPlan::none(),
    )
}

#[test]
fn corruption_storm_completes_with_graceful_degradation() {
    let storm = storm_simulation().run().expect("storm run completes");
    let clean = base_simulation().run().expect("clean run completes");

    // The storm actually fired, and every corrupt frame was caught at the
    // checksum — counted, retransmitted, never consumed.
    assert!(storm.corrupted_frames > 0, "corruption plan never fired");
    let total = storm.total_transport();
    assert_eq!(
        total.corrupted, total.rejected,
        "every corrupt uplink frame is rejected, none admitted"
    );
    assert!(total.retries > 0, "rejected frames must force retries");

    // Degradation is graceful: the mission still completes every round
    // with live cameras and real detections.
    assert!(!storm.rounds.is_empty());
    assert!(storm.rounds.iter().all(|r| !r.active.is_empty()));
    assert!(storm.correctly_detected > 0, "storm run still detects");

    // The wasted attempts are charged: a corrupted mission costs strictly
    // more energy than the same mission on clean links.
    assert!(
        storm.total_energy_j > clean.total_energy_j,
        "corruption tax {} J must exceed clean {} J",
        storm.total_energy_j,
        clean.total_energy_j
    );
}

#[test]
fn corruption_storm_replays_bit_for_bit_serial_and_parallel() {
    let sim = storm_simulation();
    let a = sim.run().expect("first run");
    let b = sim.run().expect("replay");
    assert_eq!(a, b, "same seed, same report");
    assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());

    // Worker count must not leak into anything — report, metrics, trace.
    let tel_serial = Telemetry::recording(65536);
    let serial = sim
        .with_parallelism(Parallelism::serial())
        .with_telemetry(tel_serial.clone())
        .run()
        .expect("serial run");
    let tel_parallel = Telemetry::recording(65536);
    let parallel = sim
        .with_parallelism(Parallelism::default())
        .with_telemetry(tel_parallel.clone())
        .run()
        .expect("parallel run");
    assert_eq!(serial, parallel, "serial and parallel reports diverged");
    let doc_serial = golden_document("storm", &serial, &tel_serial).expect("serial doc");
    let doc_parallel = golden_document("storm", &parallel, &tel_parallel).expect("parallel doc");
    assert_eq!(doc_serial, doc_parallel, "golden documents diverged");
    assert_eq!(
        tel_serial.trace_json().expect("serial trace"),
        tel_parallel.trace_json().expect("parallel trace"),
        "trace streams diverged"
    );
}

#[test]
fn torn_checkpoint_rolls_back_one_generation_and_replays() {
    // Generation 1 is the initial checkpoint; the round-0 snapshot lands
    // as generation 2 and is torn mid-write, so the crash restore must
    // fall back exactly one generation — and the whole recovery must
    // itself be deterministic.
    let sim = base_simulation()
        .with_faults(
            FaultPlan::seeded(5)
                .with_default_faults(LinkFaults::lossy(0.1))
                .with_corruption(CorruptionPlan::with_rate(0.2)),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
        )
        .with_checkpoint_faults(CheckpointFaultPlan::seeded(5).with_torn_write(2));

    let report = sim.run().expect("torn-checkpoint run completes");
    assert_eq!(
        report.checkpoint_rollbacks, 1,
        "torn newest generation must roll back exactly once"
    );
    assert_eq!(report.failovers.len(), 1, "crash must fail over once");
    assert_eq!(report.failovers[0].round, CRASH_ROUND);
    // The fallback generation is the initial checkpoint of round 0.
    assert_eq!(report.failovers[0].checkpoint_round, 0);
    assert!(!report.rounds.is_empty());
    assert!(report.rounds.iter().all(|r| !r.active.is_empty()));

    // Post-failover determinism: the run that recovered through the torn
    // store replays bit-for-bit, telemetry included.
    let tel_a = Telemetry::recording(65536);
    let a = sim.with_telemetry(tel_a.clone()).run().expect("run a");
    let tel_b = Telemetry::recording(65536);
    let b = sim.with_telemetry(tel_b.clone()).run().expect("run b");
    assert_eq!(a, b, "recovery is not deterministic");
    assert_eq!(
        tel_a.trace_json().expect("trace a"),
        tel_b.trace_json().expect("trace b"),
        "recovery telemetry is not deterministic"
    );
    assert_eq!(
        tel_a.metrics_json().expect("metrics a"),
        tel_b.metrics_json().expect("metrics b"),
    );
}

/// The three canonical golden scenarios, mirroring `golden_report.rs`.
fn scenario(name: &str) -> Simulation {
    let base = base_simulation();
    match name {
        "ideal" => base.clone(),
        "net_chaos" => base.with_faults(
            FaultPlan::seeded(7).with_default_faults(LinkFaults::lossy(0.25)),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none(),
        ),
        "sensor_chaos" => base.with_faults(
            FaultPlan::ideal(),
            SensorFaultPlan::seeded(11)
                .with_default_impairments(SensorImpairments::harsh())
                .with_occlusion(1, 40, 100, 0.25),
            ControllerFaultPlan::none(),
        ),
        other => panic!("unknown scenario {other}"),
    }
}

/// Re-attaches a scenario's own fault plan with an explicit no-op
/// corruption plan bolted on.
fn with_inert_plans(name: &str) -> Simulation {
    let base = base_simulation();
    let inert = |plan: FaultPlan| plan.with_corruption(CorruptionPlan::none());
    let sim = match name {
        "ideal" => base.with_faults(
            inert(FaultPlan::ideal()),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none(),
        ),
        "net_chaos" => base.with_faults(
            inert(FaultPlan::seeded(7).with_default_faults(LinkFaults::lossy(0.25))),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none(),
        ),
        "sensor_chaos" => base.with_faults(
            inert(FaultPlan::ideal()),
            SensorFaultPlan::seeded(11)
                .with_default_impairments(SensorImpairments::harsh())
                .with_occlusion(1, 40, 100, 0.25),
            ControllerFaultPlan::none(),
        ),
        other => panic!("unknown scenario {other}"),
    };
    sim.with_checkpoint_faults(CheckpointFaultPlan::none())
}

#[test]
fn inert_integrity_plans_leave_reports_byte_identical() {
    // A disabled corruption plan and a disabled checkpoint fault plan
    // must consume zero RNG rolls and emit zero new fields: the golden
    // document of every canonical scenario is byte-for-byte the same
    // whether the plans are attached or the run never heard of them.
    for name in ["ideal", "net_chaos", "sensor_chaos"] {
        let tel_plain = Telemetry::recording(65536);
        let plain = scenario(name)
            .with_telemetry(tel_plain.clone())
            .run()
            .expect("plain run");
        let tel_inert = Telemetry::recording(65536);
        let inert = with_inert_plans(name)
            .with_telemetry(tel_inert.clone())
            .run()
            .expect("inert run");

        assert_eq!(plain, inert, "{name}: inert plans changed the report");
        assert_eq!(plain.corrupted_frames, 0);
        assert_eq!(plain.checkpoint_rollbacks, 0);
        let doc_plain = golden_document(name, &plain, &tel_plain).expect("plain doc");
        let doc_inert = golden_document(name, &inert, &tel_inert).expect("inert doc");
        assert_eq!(
            doc_plain, doc_inert,
            "{name}: inert plans changed the golden document bytes"
        );
        assert!(
            !doc_plain.contains("corrupted_frames") && !doc_plain.contains("checkpoint_rollbacks"),
            "{name}: zero counters must not appear in the document"
        );
        assert_eq!(
            tel_plain.trace_json().expect("plain trace"),
            tel_inert.trace_json().expect("inert trace"),
            "{name}: inert plans changed the trace stream"
        );
    }
}
