//! Combined chaos end-to-end: corrupted sensors, a lossy radio network,
//! and a controller that dies mid-run. The self-healing stack must keep
//! the mission going — degraded, never aborted — and the whole disaster
//! must replay bit-for-bit from its seeds.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::detect::bank::DetectorBank;
use eecs::net::fault::{ControllerFaultPlan, FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Round the controller crash window opens at. The miniature run below
/// spans two rounds, so this is the last one — the recovery has no later
/// round to hide in.
const CRASH_ROUND: usize = 1;

fn sensor_plan(seed: u64) -> SensorFaultPlan {
    // Moderate corruption everywhere, debris on camera 1's lens, and a
    // harsh camera 2 — every impairment class fires somewhere.
    let moderate = SensorImpairments {
        noise_amp: 0.12,
        noise_prob: 0.35,
        blur_radius: 2,
        blur_prob: 0.2,
        exposure_drift: 0.3,
        exposure_prob: 0.25,
        low_light_bias: true,
        stuck_rows: 6,
        stuck_prob: 0.15,
        drop_prob: 0.1,
    };
    SensorFaultPlan::seeded(seed)
        .with_default_impairments(moderate)
        .with_camera_impairments(2, SensorImpairments::harsh())
        .with_occlusion(1, 40, 100, 0.2)
}

fn chaos_simulation(seed: u64) -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::seeded(seed).with_default_faults(LinkFaults::lossy(0.2)),
            sensor_plan: sensor_plan(seed),
            controller_plan: ControllerFaultPlan::none().with_crash(CRASH_ROUND, CRASH_ROUND + 1),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare")
}

#[test]
fn combined_chaos_degrades_gracefully_instead_of_aborting() {
    let report = chaos_simulation(42).run().expect("chaos run completes");

    // The sensor plan actually bit: frames were corrupted and dropped.
    assert!(report.degraded_frames > 0, "no frame was visibly degraded");
    assert!(report.dropped_frames > 0, "no frame was dropped");

    // The mission still produced results in every round.
    assert!(!report.rounds.is_empty());
    assert!(report.gt_objects > 0);
    for round in &report.rounds {
        assert!(
            !round.active.is_empty(),
            "round {round:?} lost every camera"
        );
    }

    // Energy stays physical: non-negative, finite, consistent.
    assert!(report.total_energy_j.is_finite() && report.total_energy_j > 0.0);
    for (j, e) in report.per_camera_energy.iter().enumerate() {
        assert!(e.is_finite() && *e >= 0.0, "camera {j} energy {e}");
    }
    let per_cam: f64 = report.per_camera_energy.iter().sum();
    assert!((per_cam - report.total_energy_j).abs() < 1e-9);
}

#[test]
fn controller_crash_recovers_within_the_same_round() {
    let report = chaos_simulation(42).run().expect("chaos run completes");

    // Exactly one crash window ⇒ exactly one failover, in that round.
    assert_eq!(report.failovers.len(), 1, "{:?}", report.failovers);
    let f = &report.failovers[0];
    assert_eq!(f.round, CRASH_ROUND);
    // The new controller restored the checkpoint of an earlier round…
    assert!(f.checkpoint_round < CRASH_ROUND);
    // …and told at least one surviving peer about the handover.
    assert!(f.announced >= 1, "nobody heard the handover");

    // Recovery within the same assessment round: the crash round still
    // planned and ran — cameras stayed active and the round cost energy.
    let crash_round = &report.rounds[CRASH_ROUND];
    assert!(
        !crash_round.active.is_empty(),
        "the crash round lost every camera: {crash_round:?}"
    );
    assert!(crash_round.energy_j > 0.0);
}

#[test]
fn combined_chaos_replays_bit_for_bit() {
    let sim = chaos_simulation(42);
    let a = sim.run().expect("first run");
    let b = sim.run().expect("second run");
    assert_eq!(a, b, "same seeds, same disaster");
    assert_eq!(a.total_energy_j.to_bits(), b.total_energy_j.to_bits());
    for (x, y) in a.per_camera_energy.iter().zip(&b.per_camera_energy) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn ideal_plans_leave_the_clean_run_bit_identical() {
    // `with_faults` with all-ideal plans must be indistinguishable — to
    // the last bit — from a run that never heard of fault injection.
    let sim = chaos_simulation(42).with_faults(
        FaultPlan::ideal(),
        SensorFaultPlan::ideal(),
        ControllerFaultPlan::none(),
    );
    let clean = sim.run().expect("clean run");
    assert_eq!(clean.degraded_frames, 0);
    assert_eq!(clean.dropped_frames, 0);
    assert_eq!(clean.quarantine_strikes, 0);
    assert!(clean.failovers.is_empty());

    let again = sim.run().expect("clean rerun");
    assert_eq!(clean, again);
    assert_eq!(
        clean.total_energy_j.to_bits(),
        again.total_energy_j.to_bits()
    );
}
