//! Equivalence battery for the kernel-optimization pass.
//!
//! Every optimized detector hot path (precomputed census code planes, the
//! C4 early-reject cascade, precomputed HOG block grids, flattened ACF
//! lookups, shared scratch buffers) must reproduce the pre-optimization
//! `detect()` semantics **bit for bit**: same candidate set, every score
//! and bbox coordinate identical under `f64::to_bits`, and the exact same
//! `ops` counter (the energy model's input). The pre-optimization loops
//! are kept verbatim as `detect_reference` on each detector; these
//! properties drive both paths over randomized models, frames, strides,
//! floors and scale schedules.
//!
//! The C4 cascade additionally carries a soundness obligation: its
//! conservative remaining-contribution bound may only reject windows whose
//! true score is below `keep_floor` — a rejected window must never be one
//! the reference path would have kept.

use eecs::detect::c4_detector::{C4Detector, C4DetectorConfig, C4_FEATURE_DIM};
use eecs::detect::hog_detector::{HogDetectorConfig, HogSvmDetector};
use eecs::detect::lsvm_detector::{LsvmDetector, LsvmDetectorConfig};
use eecs::detect::pyramid::ScaleSchedule;
use eecs::detect::{CensusCodePlane, DetectionOutput, Detector, DetectorBank};
use eecs::learn::svm::LinearSvm;
use eecs::vision::draw;
use eecs::vision::image::{GrayImage, RgbImage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::OnceLock;

/// HOG root-filter dimension for the default 4-px cell / 2-cell block /
/// 9-bin layout over the 16×48 window: (4-2+1)·(12-2+1)·2·2·9.
const HOG_ROOT_DIM: usize = 3 * 11 * 2 * 2 * 9;
/// LSVM part-filter dimension: 2×2-cell parts under the same block layout
/// hold a single 2×2-cell block: (2-2+1)²·2·2·9.
const LSVM_PART_DIM: usize = 2 * 2 * 9;

fn random_weights(rng: &mut StdRng, dim: usize, amp: f64) -> Vec<f64> {
    (0..dim).map(|_| rng.random_range(-amp..amp)).collect()
}

/// A deterministic synthetic frame: gradient background, up to two humans,
/// sensor noise. Exercises both dense-texture and flat regions.
fn random_frame(seed: u64, w: usize, h: usize) -> RgbImage {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut img = RgbImage::new(w, h);
    draw::vertical_gradient(
        &mut img,
        [
            rng.random_range(0.1..0.6),
            rng.random_range(0.1..0.6),
            rng.random_range(0.1..0.6),
        ],
        [
            rng.random_range(0.3..0.9),
            rng.random_range(0.3..0.9),
            rng.random_range(0.3..0.9),
        ],
    );
    for _ in 0..rng.random_range(0..3usize) {
        let hw = rng.random_range(0.12..0.3) * w as f64;
        let hh = 3.0 * hw;
        let x0 = rng.random_range(0.0..(w as f64 - hw).max(1.0));
        let y0 = rng.random_range(0.0..(h as f64 - hh).max(1.0));
        draw::draw_human(
            &mut img,
            x0,
            y0,
            x0 + hw,
            y0 + hh,
            [
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ],
            [0.8, 0.65, 0.55],
        );
    }
    draw::add_noise(&mut img, 0.04, &mut rng);
    img
}

/// Bit-exact comparison of two detector outputs: `ops`, candidate count,
/// and every score / bbox coordinate under `to_bits`.
fn assert_bit_identical(opt: &DetectionOutput, reference: &DetectionOutput) {
    assert_eq!(opt.ops, reference.ops, "ops diverged");
    assert_eq!(
        opt.detections.len(),
        reference.detections.len(),
        "candidate set diverged"
    );
    for (a, b) in opt.detections.iter().zip(&reference.detections) {
        assert_eq!(a.score.to_bits(), b.score.to_bits(), "score bits diverged");
        for (pa, pb) in [
            (a.bbox.x0, b.bbox.x0),
            (a.bbox.y0, b.bbox.y0),
            (a.bbox.x1, b.bbox.x1),
            (a.bbox.y1, b.bbox.y1),
        ] {
            assert_eq!(pa.to_bits(), pb.to_bits(), "bbox bits diverged");
        }
    }
}

/// A narrow scale schedule keeps debug-mode runtime sane while still
/// spanning several pyramid levels.
fn random_schedule(rng: &mut StdRng) -> ScaleSchedule {
    ScaleSchedule {
        min_scale: rng.random_range(0.45..0.7),
        max_scale: rng.random_range(0.9..1.25),
        ratio: rng.random_range(1.25..1.6),
    }
}

/// Quick-trained bank shared by the trained-model properties.
fn bank() -> &'static DetectorBank {
    static BANK: OnceLock<DetectorBank> = OnceLock::new();
    BANK.get_or_init(|| DetectorBank::train_quick(7).expect("bank"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// C4: random SVM, stride, floor, schedule and frame — the cascade +
    /// code-plane path equals the pre-PR loop bit for bit.
    #[test]
    fn c4_detect_matches_reference(
        seed in 0..10_000u64,
        stride in 1..5usize,
        keep_floor in -1.0..0.5f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc4);
        let config = C4DetectorConfig {
            internal_w: rng.random_range(100..160),
            internal_h: rng.random_range(90..140),
            scales: random_schedule(&mut rng),
            stride,
            keep_floor,
            ..C4DetectorConfig::default()
        };
        let svm = LinearSvm::from_parts(
            random_weights(&mut rng, C4_FEATURE_DIM, 0.02),
            rng.random_range(-0.4..0.4),
        );
        let det = C4Detector::from_svm(config, svm).expect("from_svm");
        let frame = random_frame(seed, rng.random_range(90..170), rng.random_range(90..150));
        assert_bit_identical(&det.detect(&frame), &det.detect_reference(&frame));
    }

    /// C4 cascade soundness: over every window of a random census plane,
    /// a `None` from the cascaded scan implies the reference score is
    /// below `keep_floor`, and a `Some` carries bit-identical score.
    #[test]
    fn c4_cascade_bound_is_sound(
        seed in 0..10_000u64,
        keep_floor in -1.0..0.5f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50);
        let config = C4DetectorConfig {
            keep_floor,
            ..C4DetectorConfig::default()
        };
        // Larger weights than the detect property: the bound only bites
        // when scores spread well past the floor.
        let svm = LinearSvm::from_parts(
            random_weights(&mut rng, C4_FEATURE_DIM, 0.6),
            rng.random_range(-0.4..0.4),
        );
        let det = C4Detector::from_svm(config, svm).expect("from_svm");
        let (w, h) = (rng.random_range(24..56), rng.random_range(56..90));
        let census = GrayImage::from_fn(w, h, |_, _| rng.random_range(0..256u32) as f32);
        let codes = CensusCodePlane::from_census(&census);
        let mut windows = 0usize;
        let mut rejected = 0usize;
        let mut y0 = 0;
        while y0 + 48 <= h {
            let mut x0 = 0;
            while x0 + 16 <= w {
                windows += 1;
                let want = det.score_window_reference(&census, x0, y0);
                match det.scan_window(&codes, x0, y0) {
                    Some(got) => prop_assert_eq!(got.to_bits(), want.to_bits()),
                    None => {
                        rejected += 1;
                        prop_assert!(
                            want < keep_floor,
                            "cascade rejected a window scoring {} >= floor {}",
                            want,
                            keep_floor
                        );
                    }
                }
                x0 += 3;
            }
            y0 += 5;
        }
        prop_assert!(windows > 0);
        let _ = rejected;
    }

    /// HOG: random root filter over the precomputed block grid equals the
    /// per-window descriptor-assembly loop bit for bit.
    #[test]
    fn hog_detect_matches_reference(
        seed in 0..10_000u64,
        stride_cells in 1..3usize,
        keep_floor in -1.0..0.5f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x806);
        let config = HogDetectorConfig {
            scales: random_schedule(&mut rng),
            stride_cells,
            keep_floor,
            ..HogDetectorConfig::default()
        };
        let svm = LinearSvm::from_parts(
            random_weights(&mut rng, HOG_ROOT_DIM, 0.05),
            rng.random_range(-0.4..0.4),
        );
        let det = HogSvmDetector::from_svm(config, svm).expect("from_svm");
        let frame = random_frame(seed, rng.random_range(80..150), rng.random_range(80..140));
        assert_bit_identical(&det.detect(&frame), &det.detect_reference(&frame));
    }

    /// LSVM: random root + part filters — block-grid part scoring with
    /// displacement search equals the reference loop bit for bit.
    #[test]
    fn lsvm_detect_matches_reference(
        seed in 0..10_000u64,
        keep_floor in -1.0..0.5f64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x157);
        let config = LsvmDetectorConfig {
            scales: random_schedule(&mut rng),
            part_gate: rng.random_range(-1.0..0.0),
            deformation: rng.random_range(0.05..0.5),
            part_weight: rng.random_range(0.1..0.6),
            keep_floor,
            ..LsvmDetectorConfig::default()
        };
        let root = LinearSvm::from_parts(
            random_weights(&mut rng, HOG_ROOT_DIM, 0.05),
            rng.random_range(-0.4..0.4),
        );
        let parts = (0..4)
            .map(|_| {
                LinearSvm::from_parts(
                    random_weights(&mut rng, LSVM_PART_DIM, 0.1),
                    rng.random_range(-0.2..0.2),
                )
            })
            .collect();
        let det = LsvmDetector::from_filters(config, root, parts).expect("from_filters");
        let frame = random_frame(seed, rng.random_range(80..150), rng.random_range(80..140));
        assert_bit_identical(&det.detect(&frame), &det.detect_reference(&frame));
    }

    /// ACF: the flattened channel-lookup path on a trained boosted forest
    /// equals the reference cascade bit for bit.
    #[test]
    fn acf_detect_matches_reference(seed in 0..10_000u64) {
        let det = bank().acf();
        let frame = random_frame(seed, 120, 100);
        assert_bit_identical(&det.detect(&frame), &det.detect_reference(&frame));
    }
}

/// The trained bank end to end on one deterministic frame: all four
/// detectors through both paths (a seatbelt on top of the random-model
/// properties, using realistic trained weights).
#[test]
fn trained_bank_detectors_match_reference() {
    let frame = random_frame(99, 160, 130);
    let b = bank();
    assert_bit_identical(&b.c4().detect(&frame), &b.c4().detect_reference(&frame));
    assert_bit_identical(&b.hog().detect(&frame), &b.hog().detect_reference(&frame));
    assert_bit_identical(&b.lsvm().detect(&frame), &b.lsvm().detect_reference(&frame));
    assert_bit_identical(&b.acf().detect(&frame), &b.acf().detect_reference(&frame));
}
