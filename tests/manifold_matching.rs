//! Integration: the Table-V property at miniature scale — test-segment
//! clips match the training item of the same (dataset, camera) on the
//! Grassmann manifold.

use eecs::core::features::FeatureExtractor;
use eecs::manifold::matcher::TrainingLibrary;
use eecs::manifold::similarity::SimilarityConfig;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sequence::VideoFeed;
use eecs::vision::image::RgbImage;

fn clip(profile: &DatasetProfile, camera: usize, start: usize, end: usize) -> Vec<RgbImage> {
    VideoFeed::open(profile.clone(), camera)
        .annotated_frames(start, end)
        .into_iter()
        .map(|f| f.image)
        .collect()
}

#[test]
fn test_clips_match_their_training_item() {
    // 2 datasets × 2 cameras = 4 items.
    let combos: Vec<(DatasetProfile, usize)> = [DatasetId::Lab, DatasetId::Terrace]
        .iter()
        .flat_map(|&id| (0..2).map(move |cam| (DatasetProfile::miniature(id), cam)))
        .collect();

    let mut vocab = Vec::new();
    for (p, cam) in &combos {
        vocab.extend(clip(p, *cam, 0, 20));
    }
    let extractor = FeatureExtractor::build(&vocab, 12, 5).expect("extractor");

    let mut library = TrainingLibrary::new(SimilarityConfig {
        beta: 6,
        scale: 1.0,
    });
    for (i, (p, cam)) in combos.iter().enumerate() {
        let frames = clip(p, *cam, 0, 45);
        let item = extractor
            .extract_video(format!("T{i}"), &frames)
            .expect("train item");
        library.add(item).expect("library add");
    }

    let mut correct = 0;
    for (i, (p, cam)) in combos.iter().enumerate() {
        let frames = clip(p, *cam, 45, 100);
        let query = extractor
            .extract_video(format!("V{i}"), &frames)
            .expect("query item");
        let m = library.best_match(&query).expect("match");
        if m.best_index == i {
            correct += 1;
        }
        // Similarities are valid probabilistic scores.
        assert!(m.similarities.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // Dataset-level match must always hold (items 0-1 lab, 2-3 terrace).
        assert_eq!(
            m.best_index / 2,
            i / 2,
            "query {i} matched the wrong dataset: {}",
            m.best_name
        );
    }
    // Camera-level matching at miniature scale: allow one confusion.
    assert!(correct >= 3, "only {correct}/4 exact matches");
}
