//! Partition-tolerance end-to-end: the network splits into islands, each
//! island that loses sight of the controller elects its own epoch-fenced
//! acting seat, planning continues locally, and the heal merges every
//! seat back into one through the deterministic reconciliation join.
//! The whole episode must replay bit-for-bit, across worker counts, and
//! an inert partition plan must change nothing at all.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::core::telemetry::{summary, Telemetry};
use eecs::detect::bank::DetectorBank;
use eecs::net::fault::{ControllerFaultPlan, Endpoint, FaultPlan, PartitionPlan};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::SensorFaultPlan;

/// Rounds `[SPLIT_START, SPLIT_END)` run with the network split into
/// {hub, cam 0, cam 1} and {cam 2, cam 3}.
const SPLIT_START: usize = 1;
const SPLIT_END: usize = 3;

fn two_islands() -> Vec<Vec<Endpoint>> {
    vec![
        vec![Endpoint::Hub, Endpoint::Camera(0), Endpoint::Camera(1)],
        vec![Endpoint::Camera(2), Endpoint::Camera(3)],
    ]
}

fn partition_simulation(plan: PartitionPlan) -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 160,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal().with_partition(plan),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare")
}

fn split_plan() -> PartitionPlan {
    PartitionPlan::none().with_split(two_islands(), SPLIT_START, SPLIT_END)
}

#[test]
fn two_island_split_elects_one_acting_seat_and_heals_to_one() {
    let tel = Telemetry::recording(8192);
    let report = partition_simulation(split_plan())
        .with_telemetry(tel.clone())
        .run()
        .expect("partitioned run completes");

    // One partition episode, exactly one election (the hub island keeps
    // its official seat; the orphaned island elects one acting seat),
    // one reconciliation on heal, and two rounds of split brain.
    assert_eq!(report.partitions, 1);
    assert_eq!(report.elections, 1);
    assert_eq!(report.reconciliations, 1);
    assert_eq!(report.split_brain_rounds, SPLIT_END - SPLIT_START);
    assert!(
        report.failovers.is_empty(),
        "an island election is not a controller-crash failover"
    );

    // The mission never stopped: every round planned and scored.
    assert_eq!(report.rounds.len(), 4);
    assert!(report.gt_objects > 0);
    for round in &report.rounds {
        assert!(!round.active.is_empty(), "a round planned nobody");
    }

    // The trace agrees with the report, field for field.
    let count = |kind: &str| tel.events().iter().filter(|e| e.kind() == kind).count();
    assert_eq!(count("partition_start"), report.partitions);
    assert_eq!(count("partition_heal"), report.partitions);
    assert_eq!(count("election"), report.elections);
    assert_eq!(count("reconcile"), report.reconciliations);

    // The elected acting seat lives on the orphaned island, announced a
    // positive fencing epoch, and the heal-round merge kept it or the
    // hub — never a phantom seat.
    let election = tel
        .events()
        .iter()
        .find(|e| e.kind() == "election")
        .cloned()
        .expect("election event");
    let elected = election.camera().expect("election names its seat");
    assert!(elected == 2 || elected == 3, "elected {elected}");
    assert_eq!(election.round(), SPLIT_START);
    let reconcile = tel
        .events()
        .iter()
        .find(|e| e.kind() == "reconcile")
        .cloned()
        .expect("reconcile event");
    assert_eq!(reconcile.round(), SPLIT_END);
}

#[test]
fn partitioned_run_replays_bit_exactly() {
    let sim = partition_simulation(split_plan());
    let run = || {
        let tel = Telemetry::recording(8192);
        let report = sim
            .with_telemetry(tel.clone())
            .run()
            .expect("partitioned run completes");
        let doc = summary::golden_document("partition", &report, &tel).expect("golden doc");
        (report, doc)
    };
    let (report_a, doc_a) = run();
    let (report_b, doc_b) = run();
    // The replay exercises the same mid-partition checkpoint restore the
    // first run did — reports and the full golden document (metrics
    // included) must match byte for byte.
    assert_eq!(report_a, report_b);
    assert_eq!(doc_a, doc_b);
}

#[test]
fn serial_and_parallel_partition_runs_are_identical() {
    let sim = partition_simulation(split_plan());
    let parallel = sim.run().expect("parallel run");
    let serial = sim
        .with_parallelism(Parallelism::serial())
        .run()
        .expect("serial run");
    assert_eq!(parallel, serial);
}

#[test]
fn inert_partition_plans_change_nothing() {
    let baseline = partition_simulation(PartitionPlan::none())
        .run()
        .expect("baseline run");
    assert_eq!(baseline.partitions, 0);
    assert_eq!(baseline.elections, 0);
    assert_eq!(baseline.reconciliations, 0);
    assert_eq!(baseline.split_brain_rounds, 0);

    // An empty window schedules nothing: the plan is disabled, the
    // partition control plane never runs, and the report is bit-identical
    // to the no-plan run.
    let empty_window = PartitionPlan::none().with_split(two_islands(), 2, 2);
    let report = partition_simulation(empty_window).run().expect("runs");
    assert_eq!(report, baseline);
}

#[test]
fn flapping_split_elects_once_per_dark_window() {
    // On for round 1, off for round 2, on again for round 3 (the last
    // round of the run — the second episode never heals).
    let plan = PartitionPlan::none().with_flapping(two_islands(), 1, 4, 1);
    let report = partition_simulation(plan).run().expect("flapping run");
    // Each on-window orphans somebody afresh: round 1 elects an acting
    // seat for {2, 3}; the round-2 heal adopts its higher epoch (demoting
    // the hub), so the round-3 flap orphans the *hub* island, which
    // elects again at a yet-higher epoch. Only the first episode heals.
    assert_eq!(report.partitions, 2);
    assert_eq!(report.elections, 2);
    assert_eq!(report.reconciliations, 1);
    assert_eq!(report.split_brain_rounds, 2);
}
