//! Kill/resume semantics of the sweep engine: a sweep aborted after N
//! cells and resumed from its manifest produces a merge byte-identical to
//! an uninterrupted run, and — proven by the per-cell `sweep.runs.<cell>`
//! telemetry counters accumulated across both runs — no completed cell
//! ever re-executes.

use eecs::core::config::EecsConfig;
use eecs::core::jsonio::Json;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::core::telemetry::Telemetry;
use eecs::detect::bank::DetectorBank;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs_bench::sweep::{run_sweep, JobOrder, Shard, SweepOptions, SweepSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

fn base_simulation() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        let bank = DetectorBank::train_quick(9).expect("bank training");
        let mut profile = DatasetProfile::miniature(DatasetId::Lab);
        profile.num_people = 4;
        Simulation::prepare(
            bank,
            SimulationConfig {
                profile,
                cameras: 2,
                start_frame: 40,
                end_frame: 70,
                budget_j_per_frame: 10.0,
                mode: OperatingMode::FullEecs,
                eecs: EecsConfig {
                    assessment_period: 10,
                    recalibration_interval: 30,
                    key_frames: 8,
                    ..EecsConfig::default()
                },
                feature_words: 12,
                max_training_frames: 8,
                boost_every: 0,
                fault_plan: eecs::net::fault::FaultPlan::ideal(),
                sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
                controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
                parallel: Parallelism::serial(),
            },
        )
        .expect("simulation preparation")
    })
}

fn spec() -> SweepSpec {
    SweepSpec::new("resume_grid")
        .axis("budget", ["9.0", "12.0"])
        .axis("fault_seed", ["3", "4", "5"])
}

fn grid_shard() -> Shard<'static> {
    Shard::new(spec(), |job| {
        let budget: f64 = job.value("budget").unwrap().parse().unwrap();
        let seed: u64 = job.value("fault_seed").unwrap().parse().unwrap();
        let report = base_simulation()
            .with_budget(budget)
            .map_err(|e| e.to_string())?
            .with_faults(
                eecs::net::fault::FaultPlan::seeded(seed),
                eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
                eecs::net::fault::ControllerFaultPlan::none(),
            )
            .run()
            .map_err(|e| e.to_string())?;
        Ok(Json::Obj(vec![
            (
                "detected".into(),
                Json::Num(report.correctly_detected as f64),
            ),
            ("energy_j".into(), Json::Num(report.total_energy_j)),
        ]))
    })
}

fn counters(telemetry: &Telemetry) -> BTreeMap<String, u64> {
    telemetry
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_owned(), v))
        .collect()
}

#[test]
fn aborted_sweep_resumes_to_identical_bytes_without_reexecution() {
    let shard = grid_shard();
    let total = spec().cell_count();
    let reference = run_sweep(
        &shard,
        &SweepOptions {
            workers: 1,
            ..Default::default()
        },
    )
    .expect("uninterrupted sweep")
    .merged
    .expect("uninterrupted merge");

    let manifest = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("sweep_resume_manifest.jsonl");
    let _ = std::fs::remove_file(&manifest);
    // One telemetry handle across kill + resume, so the per-cell run
    // counters accumulate over the whole history.
    let telemetry = Telemetry::recording(64);

    let killed = run_sweep(
        &shard,
        &SweepOptions {
            workers: 2,
            manifest_path: Some(manifest.clone()),
            order: JobOrder::Shuffled(23),
            stop_after: Some(2),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    )
    .expect("aborted sweep still succeeds");
    assert!(killed.merged.is_none(), "aborted sweep must not merge");
    assert_eq!(killed.executed, 2);

    let mid = counters(&telemetry);
    assert_eq!(mid.get("sweep.executed"), Some(&2));

    let resumed = run_sweep(
        &shard,
        &SweepOptions {
            workers: 2,
            manifest_path: Some(manifest.clone()),
            telemetry: telemetry.clone(),
            ..Default::default()
        },
    )
    .expect("resumed sweep");
    let _ = std::fs::remove_file(&manifest);

    assert_eq!(resumed.skipped, 2, "manifest-complete cells are skipped");
    assert_eq!(resumed.executed, total - 2);
    let merged = resumed.merged.expect("resumed merge");
    assert_eq!(
        merged.as_bytes(),
        reference.as_bytes(),
        "kill/resume history must not reach the merged bytes"
    );

    // No completed cell re-executed: every per-cell counter is exactly 1.
    let finals = counters(&telemetry);
    for job in spec().jobs() {
        let key = format!("sweep.runs.{}", job.cell_id());
        assert_eq!(finals.get(&key), Some(&1), "{key}");
    }
    assert_eq!(finals.get("sweep.executed"), Some(&(total as u64)));
    assert_eq!(finals.get("sweep.skipped"), Some(&2));
}

#[test]
fn foreign_manifest_is_rejected_not_resumed() {
    let shard = grid_shard();
    let manifest = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("sweep_foreign_manifest.jsonl");
    std::fs::write(
        &manifest,
        "{\"schema\":\"eecs-sweep-manifest/1\",\"sweep\":\"other\",\"shards\":[]}\n",
    )
    .expect("write foreign manifest");
    let err = run_sweep(
        &shard,
        &SweepOptions {
            workers: 1,
            manifest_path: Some(manifest.clone()),
            ..Default::default()
        },
    )
    .expect_err("foreign manifest must not be resumed from");
    let _ = std::fs::remove_file(&manifest);
    assert!(err.contains("different sweep"), "{err}");
}
