//! The shared frame-feature cache must be invisible: every cached
//! intermediate equals the detector's direct computation bit-for-bit, and
//! running the four detectors through one shared cache changes neither
//! their detections nor their `ops` counters (the energy model charges
//! each algorithm as if it ran in isolation).

use eecs::detect::bank::DetectorBank;
use eecs::detect::c4_detector::census_transform;
use eecs::detect::detection::AlgorithmId;
use eecs::detect::FrameFeatures;
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sequence::VideoFeed;
use eecs::vision::channels::AcfChannels;
use eecs::vision::hog::{HogCellGrid, HogConfig};
use eecs::vision::image::RgbImage;
use eecs::vision::resize::{resize_gray, resize_rgb};
use std::sync::OnceLock;

fn bank() -> &'static DetectorBank {
    static BANK: OnceLock<DetectorBank> = OnceLock::new();
    BANK.get_or_init(|| DetectorBank::train_quick(7).expect("bank"))
}

fn first_frame(profile: DatasetProfile) -> RgbImage {
    let interval = profile.gt_interval;
    VideoFeed::open(profile, 0)
        .annotated_frames(0, 2 * interval)
        .into_iter()
        .next()
        .expect("annotated frame")
        .image
}

/// Every dataset resolution the simulator ships: lab/terrace 360×288,
/// chap 1024×768, miniature 180×144.
fn dataset_frames() -> Vec<RgbImage> {
    vec![
        first_frame(DatasetProfile::lab()),
        first_frame(DatasetProfile::for_id(DatasetId::Chap)),
        first_frame(DatasetProfile::miniature(DatasetId::Lab)),
    ]
}

#[test]
fn cached_levels_equal_direct_computation_at_dataset_resolutions() {
    let hog = HogConfig {
        cell_size: 8,
        block_cells: 2,
        bins: 9,
    };
    for frame in dataset_frames() {
        let cache = FrameFeatures::new(&frame);
        let gray = frame.to_gray();
        assert_eq!(*cache.gray(), gray);

        let (fw, fh) = (frame.width(), frame.height());
        for scale in [1.0, 0.8, 0.5] {
            let (w, h) = ((fw as f64 * scale) as usize, (fh as f64 * scale) as usize);

            let direct_gray = resize_gray(&gray, w, h).expect("resize");
            assert_eq!(*cache.resized_gray(w, h).expect("cached gray"), direct_gray);

            let direct_rgb = resize_rgb(&frame, w, h).expect("resize");
            assert_eq!(*cache.resized_rgb(w, h).expect("cached rgb"), direct_rgb);

            let direct_grid = HogCellGrid::compute(&direct_gray, hog).expect("grid");
            let cached_grid = cache.hog_grid(w, h, hog).expect("cached grid");
            assert_eq!(cached_grid.cells_x(), direct_grid.cells_x());
            assert_eq!(cached_grid.cells_y(), direct_grid.cells_y());
            for cy in 0..direct_grid.cells_y() {
                for cx in 0..direct_grid.cells_x() {
                    assert_eq!(cached_grid.cell(cx, cy), direct_grid.cell(cx, cy));
                }
            }

            let direct_ch = AcfChannels::compute(&direct_rgb, 4).expect("channels");
            let cached_ch = cache.acf_channels(w, h, 4).expect("cached channels");
            assert_eq!(cached_ch.width(), direct_ch.width());
            assert_eq!(cached_ch.height(), direct_ch.height());
            for c in 0..10 {
                assert_eq!(cached_ch.channel(c), direct_ch.channel(c));
            }
        }

        // C4's second-order resize: through the internal resolution, then
        // to the level, then census-transformed.
        let (iw, ih) = (160, 128);
        let internal = resize_gray(&gray, iw, ih).expect("internal");
        for scale in [1.0, 0.6] {
            let (w, h) = ((iw as f64 * scale) as usize, (ih as f64 * scale) as usize);
            let direct = census_transform(&resize_gray(&internal, w, h).expect("level"));
            assert_eq!(
                *cache.census_level(iw, ih, w, h).expect("cached census"),
                direct
            );
        }
    }
}

#[test]
fn detect_with_shared_cache_matches_direct_detect_for_all_algorithms() {
    let bank = bank();
    for frame in dataset_frames() {
        // ONE cache shared across all four detectors, exactly as the
        // assessment phase uses it.
        let cache = FrameFeatures::new(&frame);
        for (alg, det) in bank.all() {
            let direct = det.detect(&frame);
            let cached = det.detect_with_cache(&frame, &cache);
            assert_eq!(
                cached, direct,
                "{alg}: shared cache changed detections or ops"
            );
        }
    }
}

#[test]
fn bank_run_algorithms_is_identical_with_and_without_sharing() {
    let bank = bank();
    let frame = first_frame(DatasetProfile::miniature(DatasetId::Lab));
    let algorithms = AlgorithmId::ALL;
    let shared = bank.run_algorithms(&algorithms, &frame, true);
    let isolated = bank.run_algorithms(&algorithms, &frame, false);
    assert_eq!(shared, isolated);
    assert_eq!(shared.len(), algorithms.len());
}
