//! End-to-end integration: the complete EECS loop through the facade
//! crate, comparing the three operating modes of Figs. 5–6.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs::detect::bank::DetectorBank;
use eecs::detect::detection::AlgorithmId;
use eecs::scene::dataset::{DatasetId, DatasetProfile};

fn base_simulation() -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::AllBest,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: eecs::net::fault::FaultPlan::ideal(),
            sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
            parallel: eecs::core::simulation::Parallelism::default(),
        },
    )
    .expect("prepare")
}

#[test]
fn all_three_modes_run_and_account_consistently() {
    let base = base_simulation();
    for mode in [
        OperatingMode::AllBest,
        OperatingMode::CameraSubset,
        OperatingMode::FullEecs,
    ] {
        let report = base.with_mode(mode).run().expect("run");
        assert_eq!(report.mode, mode);
        assert!(report.gt_objects > 0, "{mode:?}: no ground truth seen");
        assert!(report.total_energy_j > 0.0);
        // Per-camera energies sum to the total.
        let sum: f64 = report.per_camera_energy.iter().sum();
        assert!(
            (sum - report.total_energy_j).abs() < 1e-6,
            "{mode:?}: per-camera sum {sum} != total {}",
            report.total_energy_j
        );
        // Round energy (plus the one-time feature upload) equals the total.
        let rounds: f64 = report.rounds.iter().map(|r| r.energy_j).sum();
        assert!(rounds <= report.total_energy_j + 1e-9);
        // Detection counts aggregate over rounds.
        let correct: usize = report.rounds.iter().map(|r| r.correct).sum();
        assert_eq!(correct, report.correctly_detected);
        // Detections never exceed ground truth.
        assert!(report.correctly_detected <= report.gt_objects);
    }
}

#[test]
fn subset_mode_never_uses_more_cameras_than_baseline() {
    let base = base_simulation();
    let subset = base.with_mode(OperatingMode::CameraSubset).run().unwrap();
    for round in &subset.rounds {
        assert!(round.active.len() <= 2);
        assert!(!round.active.is_empty());
        // Every active camera has an assignment from the bank's algorithms.
        for cam in &round.active {
            assert!(AlgorithmId::ALL.contains(&round.assignment[cam]));
        }
    }
}

#[test]
fn budget_change_shifts_the_feasible_set() {
    let base = base_simulation();
    // Find the cheapest measured algorithm cost.
    let cheapest = base
        .record_for_camera(0)
        .ranked()
        .iter()
        .map(|p| p.energy_per_frame_j)
        .fold(f64::INFINITY, f64::min);
    // A budget between cheapest and 2×cheapest forces that algorithm
    // everywhere.
    let tight = base
        .with_budget(cheapest * 1.2)
        .unwrap()
        .with_mode(OperatingMode::AllBest)
        .run()
        .unwrap();
    let cheapest_alg = base
        .record_for_camera(0)
        .ranked()
        .iter()
        .min_by(|a, b| {
            a.energy_per_frame_j
                .partial_cmp(&b.energy_per_frame_j)
                .unwrap()
        })
        .map(|p| p.algorithm)
        .unwrap();
    for round in &tight.rounds {
        for alg in round.assignment.values() {
            assert_eq!(*alg, cheapest_alg, "tight budget must force {cheapest_alg}");
        }
    }
}
