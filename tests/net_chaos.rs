//! Chaos end-to-end: a four-camera EECS round under packet loss with one
//! crashed camera must complete, select only live cameras, pay the
//! reliability tax in energy, and replay byte-for-byte from its seed.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Simulation, SimulationConfig};
use eecs::detect::bank::DetectorBank;
use eecs::net::fault::{FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};

/// The camera whose device is crashed for the whole run.
const CRASHED: usize = 3;

fn chaos_plan() -> FaultPlan {
    FaultPlan::seeded(42)
        .with_default_faults(LinkFaults::lossy(0.3))
        .with_crash(CRASHED, 0, usize::MAX)
}

fn simulation(fault_plan: FaultPlan) -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan,
            sensor_plan: eecs::scene::sensor_fault::SensorFaultPlan::ideal(),
            controller_plan: eecs::net::fault::ControllerFaultPlan::none(),
            parallel: eecs::core::simulation::Parallelism::default(),
        },
    )
    .expect("prepare")
}

#[test]
fn chaos_round_completes_and_excludes_the_crashed_camera() {
    let report = simulation(chaos_plan()).run().expect("chaos run completes");
    assert!(!report.rounds.is_empty());
    assert!(report.gt_objects > 0);

    // The controller never selects the dead camera.
    for round in &report.rounds {
        assert!(
            !round.active.contains(&CRASHED),
            "round {round:?} selected the crashed camera"
        );
        assert!(
            !round.active.is_empty(),
            "live cameras keep the round going"
        );
    }

    // A crashed device spends nothing — and its sends are refused as
    // timeouts without a single radio attempt.
    assert_eq!(report.per_camera_energy[CRASHED], 0.0);
    assert_eq!(report.transport[CRASHED].attempts, 0);
    assert!(report.transport[CRASHED].timeouts > 0);

    // 30% loss on the live links shows up in the counters.
    let total = report.total_transport();
    assert!(total.drops > 0, "loss must drop some attempts");
    assert!(total.retries > 0, "drops must force retries");
    assert!(
        report.downlink.attempts > 0,
        "assignments travel the downlink"
    );
}

#[test]
fn chaos_reliability_tax_exceeds_the_fault_free_baseline() {
    let chaos = simulation(chaos_plan()).run().expect("chaos run");
    let ideal = simulation(FaultPlan::ideal()).run().expect("ideal run");

    // The ideal network never drops, retries, or times out.
    let ideal_total = ideal.total_transport();
    assert_eq!(ideal_total.drops, 0);
    assert_eq!(ideal_total.retries, 0);
    assert_eq!(ideal_total.timeouts, 0);
    assert_eq!(ideal_total.duplicates, 0);

    // The crashed camera spends nothing, so compare the cameras that
    // actually lived through the chaos: retries and liveness probes make
    // each of them strictly more expensive than its idealized self.
    let live_chaos: f64 = (0..CRASHED).map(|j| chaos.per_camera_energy[j]).sum();
    let live_ideal: f64 = (0..CRASHED).map(|j| ideal.per_camera_energy[j]).sum();
    assert!(
        live_chaos > live_ideal,
        "chaos {live_chaos} J must exceed fault-free {live_ideal} J"
    );
}

#[test]
fn chaos_run_replays_byte_for_byte() {
    let sim = simulation(chaos_plan());
    let a = sim.run().expect("first run");
    let b = sim.run().expect("second run");
    assert_eq!(a, b, "same seed, same report");
    assert_eq!(
        a.total_energy_j.to_bits(),
        b.total_energy_j.to_bits(),
        "bit-identical energy"
    );
    for (x, y) in a.per_camera_energy.iter().zip(&b.per_camera_energy) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
