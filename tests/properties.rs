//! Property-based tests over the core invariants, spanning crates.

use eecs::core::accuracy::combined_probability;
use eecs::core::checkpoint::CacheSlot;
use eecs::core::config::EecsConfig;
use eecs::core::controller::{CameraAssessment, QuarantineLedger, QuarantinePolicy};
use eecs::core::jsonio::{self, Json};
use eecs::core::metadata::CameraReport;
use eecs::core::reconcile::{reconcile, SeatSnapshot};
use eecs::core::simulation::{
    OperatingMode, Parallelism, Simulation, SimulationConfig, SimulationReport,
};
use eecs::core::telemetry::{FlightRecorder, MetricsRegistry, TraceEvent};
use eecs::detect::bank::DetectorBank;
use eecs::detect::detection::AlgorithmId;
use eecs::detect::detection::BBox;
use eecs::detect::detection::Detection;
use eecs::detect::nms::non_maximum_suppression;
use eecs::energy::budget::BatteryState;
use eecs::geometry::homography::Homography;
use eecs::geometry::point::Point2;
use eecs::linalg::svd::thin_svd;
use eecs::linalg::Mat;
use eecs::manifold::gfk::GeodesicFlowKernel;
use eecs::manifold::subspace::Subspace;
use eecs::manifold::video::VideoItem;
use eecs::net::fault::{
    ChurnPlan, ControllerFaultPlan, CorruptionPlan, Endpoint, FaultPlan, LinkFaults, PartitionPlan,
};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};
use eecs::vision::image::RgbImage;
use eecs_bench::artifacts::Artifacts;
use eecs_bench::serving::service_base;
use eecs_bench::Scale;
use eecs_serve::{
    plan_schedule, BatchOptions, MissionRequest, MissionService, MissionSpec, MissionVerdict,
    Priority, ServiceConfig,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn bbox_strategy() -> impl Strategy<Value = BBox> {
    (0.0..100.0f64, 0.0..100.0f64, 1.0..50.0f64, 1.0..50.0f64)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iou_symmetric_bounded(a in bbox_strategy(), b in bbox_strategy()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq6_bounded_and_monotone(ps in prop::collection::vec(0.0..1.0f64, 1..6), extra in 0.0..1.0f64) {
        let p = combined_probability(&ps);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p >= ps.iter().cloned().fold(0.0, f64::max) - 1e-12);
        // Adding a camera never lowers the fused probability.
        let mut more = ps.clone();
        more.push(extra);
        prop_assert!(combined_probability(&more) >= p - 1e-12);
    }

    #[test]
    fn nms_output_is_subset_and_conflict_free(
        xs in prop::collection::vec((0.0..200.0f64, 0.0..5.0f64), 0..20),
        threshold in 0.05..0.9f64,
    ) {
        let dets: Vec<Detection> = xs
            .iter()
            .map(|&(x, s)| Detection { bbox: BBox::new(x, 0.0, x + 20.0, 40.0), score: s })
            .collect();
        let kept = non_maximum_suppression(dets.clone(), threshold);
        prop_assert!(kept.len() <= dets.len());
        // Survivors are pairwise below the IoU threshold.
        for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                prop_assert!(kept[i].bbox.iou(&kept[j].bbox) <= threshold + 1e-12);
            }
        }
        // Idempotence.
        let again = non_maximum_suppression(kept.clone(), threshold);
        prop_assert_eq!(again.len(), kept.len());
    }

    #[test]
    fn homography_roundtrip_random_affine(
        a in 0.5..2.0f64, b in -0.5..0.5f64, c in -20.0..20.0f64,
        d in -0.5..0.5f64, e in 0.5..2.0f64, f in -20.0..20.0f64,
        px in 0.0..50.0f64, py in 0.0..50.0f64,
    ) {
        let src: Vec<Point2> = [(0.0, 0.0), (40.0, 0.0), (40.0, 40.0), (0.0, 40.0), (13.0, 27.0)]
            .iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let dst: Vec<Point2> = src
            .iter()
            .map(|p| Point2::new(a * p.x + b * p.y + c, d * p.x + e * p.y + f))
            .collect();
        let h = Homography::estimate(&src, &dst).unwrap();
        let p = Point2::new(px, py);
        let q = h.apply(&p).unwrap();
        let expected = Point2::new(a * p.x + b * p.y + c, d * p.x + e * p.y + f);
        prop_assert!(q.distance(&expected) < 1e-5, "{q:?} vs {expected:?}");
        let back = h.inverse().unwrap().apply(&q).unwrap();
        prop_assert!(back.distance(&p) < 1e-5);
    }

    #[test]
    fn svd_reconstructs_random_matrices(
        rows in 2..7usize, cols in 2..7usize, seed in 0..1000u64,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = Mat::from_fn(rows, cols, |_, _| rng.random_range(-3.0..3.0));
        let svd = thin_svd(&m);
        let sigma = Mat::from_diag(&svd.singular_values);
        let recon = svd.u.matmul(&sigma).matmul(&svd.v.transpose());
        prop_assert!(recon.approx_eq(&m, 1e-8));
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn gfk_distance_nonnegative_and_zero_on_self(
        seed in 0..500u64,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mk = |rng: &mut rand::rngs::StdRng| {
            let frames: Vec<Vec<f64>> = (0..6)
                .map(|_| (0..8).map(|_| rng.random_range(0.0..1.0)).collect())
                .collect();
            VideoItem::from_frames("p", &frames).unwrap()
        };
        let t = mk(&mut rng);
        let v = mk(&mut rng);
        let x = Subspace::from_video(&t, 3).unwrap();
        let z = Subspace::from_video(&v, 3).unwrap();
        let gfk = GeodesicFlowKernel::between(&x, &z).unwrap();
        let u: Vec<f64> = (0..8).map(|_| rng.random_range(-1.0..1.0)).collect();
        let w: Vec<f64> = (0..8).map(|_| rng.random_range(-1.0..1.0)).collect();
        prop_assert!(gfk.sq_distance(&u, &w) >= 0.0);
        prop_assert!(gfk.sq_distance(&u, &u) < 1e-10);
        // Symmetry of the metric.
        prop_assert!((gfk.sq_distance(&u, &w) - gfk.sq_distance(&w, &u)).abs() < 1e-9);
    }

    #[test]
    fn battery_never_goes_negative(draws in prop::collection::vec(0.0..5.0f64, 1..20)) {
        let mut bat = BatteryState::new(10.0).unwrap();
        for d in draws {
            let _ = bat.drain(d);
            prop_assert!(bat.residual() >= 0.0);
            prop_assert!(bat.used() <= 10.0 + 1e-9);
        }
    }

    #[test]
    fn sensor_corruption_is_bit_identical_per_seed(
        seed in 0..500u64,
        camera in 0..4usize,
        frame in 0..200usize,
    ) {
        let plan = || {
            SensorFaultPlan::seeded(seed)
                .with_default_impairments(SensorImpairments::harsh())
                .with_occlusion(camera, 0, 1_000, 0.3)
        };
        let mut a = gradient_image(seed);
        let mut b = gradient_image(seed);
        let ia = plan().corrupt(camera, frame, &mut a);
        let ib = plan().corrupt(camera, frame, &mut b);
        prop_assert_eq!(ia, ib);
        prop_assert_eq!(pixel_bits(&a), pixel_bits(&b));

        // The ideal plan never touches a pixel.
        let mut c = gradient_image(seed);
        let ic = SensorFaultPlan::ideal().corrupt(camera, frame, &mut c);
        prop_assert!(ic.is_clean());
        prop_assert_eq!(pixel_bits(&c), pixel_bits(&gradient_image(seed)));
    }

    #[test]
    fn quarantine_backoff_monotone_and_bounded(
        base in 1..5usize,
        factor in 1..5usize,
        cap in 1..30usize,
        strikes in 1..20u32,
    ) {
        let policy = QuarantinePolicy {
            base_backoff_rounds: base,
            backoff_factor: factor,
            max_backoff_rounds: cap.max(base),
        };
        policy.validate().unwrap();
        // Monotone in strikes, bounded by the cap.
        let mut prev = 0usize;
        for s in 1..=strikes {
            let b = QuarantineLedger::backoff_rounds(&policy, s);
            prop_assert!(b >= prev, "backoff shrank at strike {s}");
            prop_assert!(b <= policy.max_backoff_rounds);
            prop_assert!(b >= policy.base_backoff_rounds);
            prev = b;
        }
    }

    #[test]
    fn quarantine_reprobe_is_always_scheduled(
        rounds in prop::collection::vec(0..2u8, 1..24),
        base in 1..4usize,
        cap in 1..10usize,
    ) {
        let policy = QuarantinePolicy {
            base_backoff_rounds: base,
            backoff_factor: 2,
            max_backoff_rounds: cap.max(base),
        };
        let mut ledger = QuarantineLedger::new();
        let (cam, alg) = (1, AlgorithmId::Hog);
        for (round, healthy) in rounds.iter().enumerate() {
            if !ledger.allows(cam, alg, round) {
                // While quarantined, the re-probe round is at most
                // `1 + max_backoff` past the last strike — the pair can
                // never be locked out forever.
                let eligible_again = (round..)
                    .take(policy.max_backoff_rounds + 2)
                    .any(|r| ledger.allows(cam, alg, r));
                prop_assert!(eligible_again, "re-probe unbounded at round {round}");
                continue;
            }
            if *healthy == 1 {
                ledger.report_healthy(cam, alg);
                prop_assert!(ledger.allows(cam, alg, round + 1));
            } else {
                ledger.report_unhealthy(cam, alg, round, &policy);
                // A strike always quarantines the next round…
                prop_assert!(!ledger.allows(cam, alg, round + 1));
                // …and re-admits exactly at round + 1 + backoff.
                let backoff = QuarantineLedger::backoff_rounds(&policy, ledger.strikes(cam, alg));
                prop_assert!(!ledger.allows(cam, alg, round + backoff));
                prop_assert!(ledger.allows(cam, alg, round + 1 + backoff));
            }
        }
    }

    #[test]
    fn json_number_roundtrip_is_bit_exact(bits in 0..u64::MAX) {
        let n = f64::from_bits(bits);
        if n.is_finite() {
            // encode → decode → encode: bit-exact value, fixed-point text.
            let text = Json::Num(n).write().unwrap();
            let back = jsonio::parse(&text).unwrap();
            let m = back.as_num().unwrap();
            prop_assert_eq!(m.to_bits(), n.to_bits());
            prop_assert_eq!(back.write().unwrap(), text);
        } else {
            // NaN / ±∞ are unrepresentable: a clean error, never a panic,
            // no matter how deep the value hides.
            prop_assert!(Json::Num(n).write().is_err());
            let nested = Json::Obj(vec![("x".into(), Json::Arr(vec![Json::Num(n)]))]);
            prop_assert!(nested.write().is_err());
        }
    }

    #[test]
    fn json_string_escapes_roundtrip(codes in prop::collection::vec(0..0x250u32, 0..24)) {
        // The range covers ASCII controls, quotes, backslashes, and a slab
        // of non-ASCII — every escaping path in the writer.
        let s: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let text = Json::Str(s.clone()).write().unwrap();
        let back = jsonio::parse(&text).unwrap();
        prop_assert_eq!(back.as_str().unwrap(), s.as_str());
        prop_assert_eq!(back.write().unwrap(), text);
    }

    #[test]
    fn json_deep_nesting_roundtrips(depth in 0..48usize, n in -1e6..1e6f64) {
        let mut v = Json::Num(n);
        for level in 0..depth {
            v = if level % 2 == 0 {
                Json::Arr(vec![v])
            } else {
                Json::Obj(vec![("k".into(), v), ("flag".into(), Json::Bool(true))])
            };
        }
        let text = v.write().unwrap();
        let back = jsonio::parse(&text).unwrap();
        prop_assert_eq!(back.write().unwrap(), text);
    }

    #[test]
    fn json_parser_never_panics(raw in prop::collection::vec(0..256u32, 0..48)) {
        // Arbitrary bytes (lossily decoded) and truncated prefixes of a
        // valid document: `parse` may reject, it must never panic.
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = jsonio::parse(&String::from_utf8_lossy(&bytes));

        let valid = r#"{"a":[1,-0.5,"x\n"],"b":{"c":null,"d":[true,false]}}"#;
        let cut = raw.first().map_or(0, |&b| b as usize % (valid.len() + 1));
        let _ = jsonio::parse(&valid[..cut]);
    }

    #[test]
    fn flight_recorder_bounded_with_inclusive_tail(
        capacity in 1..64usize,
        per_round in prop::collection::vec(1..5usize, 1..24),
        tail in 1..8usize,
    ) {
        let mut rec = FlightRecorder::new(capacity);
        let mut total = 0u64;
        for (round, &events) in per_round.iter().enumerate() {
            for _ in 0..events {
                rec.record(TraceEvent::Checkpoint { round });
                total += 1;
            }
        }
        let last = per_round.len() - 1;
        // Bounded memory, exact eviction accounting.
        prop_assert!(rec.len() <= capacity);
        prop_assert_eq!(rec.evicted(), total.saturating_sub(capacity as u64));
        prop_assert_eq!(rec.last_round(), Some(last));
        // The tail slice always includes the newest round itself and never
        // reaches further back than `tail` rounds.
        let cutoff = (last + 1).saturating_sub(tail);
        let slice = rec.tail_rounds(tail);
        prop_assert!(slice.iter().any(|e| e.round() == last));
        prop_assert!(slice.iter().all(|e| e.round() >= cutoff));
    }

    #[test]
    fn metrics_registry_is_order_independent(
        ops in prop::collection::vec((0..5usize, 1..100u64), 0..40),
    ) {
        const NAMES: [&str; 5] = ["net.attempts", "detect.runs.hog", "a", "z.z", "mid"];
        const BOUNDS: [f64; 3] = [10.0, 50.0, 90.0];
        let apply = |registry: &mut MetricsRegistry, &(name, delta): &(usize, u64)| {
            registry.counter_add(NAMES[name], delta);
            registry.histogram_record("values", &BOUNDS, delta as f64);
        };
        let mut forward = MetricsRegistry::new();
        let mut reverse = MetricsRegistry::new();
        ops.iter().for_each(|op| apply(&mut forward, op));
        ops.iter().rev().for_each(|op| apply(&mut reverse, op));
        // Counter and histogram publishes commute, and the dump is sorted:
        // any arrival order yields the same bytes.
        prop_assert_eq!(forward.to_json().unwrap(), reverse.to_json().unwrap());
    }
}

// ---------------------------------------------------------------------------
// Sweep-engine invariants: the pure merge algebra behind the byte-identity
// guarantee of `eecs_bench::sweep` (see tests/sweep_determinism.rs for the
// end-to-end form).
// ---------------------------------------------------------------------------

/// The canonical cell of index `i`: data is a pure function of the index,
/// exactly as sweep runners are required to be.
fn sweep_cell(i: usize) -> eecs_bench::sweep::CellRecord {
    let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    eecs_bench::sweep::CellRecord {
        index: i,
        cell: format!("p:axis={i}"),
        data: Json::Obj(vec![
            ("value".into(), Json::Num(f64::from_bits(x >> 12))),
            ("index".into(), Json::Num(i as f64)),
        ]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_combine_is_order_independent_and_associative(
        a in prop::collection::vec(0..40usize, 0..20),
        b in prop::collection::vec(0..40usize, 0..20),
        c in prop::collection::vec(0..40usize, 0..20),
    ) {
        use eecs_bench::sweep::combine;
        let cells = |s: &[usize]| -> Vec<_> {
            let set: std::collections::BTreeSet<usize> = s.iter().copied().collect();
            set.into_iter().map(sweep_cell).collect()
        };
        let (a, b, c) = (cells(&a), cells(&b), cells(&c));
        // Commutative and associative on consistent inputs…
        prop_assert_eq!(combine(&a, &b), combine(&b, &a));
        prop_assert_eq!(
            combine(&combine(&a, &b), &c),
            combine(&a, &combine(&b, &c))
        );
        // …and idempotent: merging a set with itself changes nothing.
        prop_assert_eq!(combine(&a, &a), combine(&a, &[]));
        // The result is sorted and duplicate-free.
        let merged = combine(&a, &b);
        prop_assert!(merged.windows(2).all(|w| w[0].index < w[1].index));
    }

    #[test]
    fn sweep_cell_counts_conserved_under_any_partition(
        rows in 1..4usize,
        cols in 1..5usize,
        cuts in prop::collection::vec(0..100usize, 0..4),
        order_seed in 0..u64::MAX,
    ) {
        use eecs_bench::sweep::{combine, merge_cells, CellRecord, SweepSpec};
        let spec = SweepSpec::new("p")
            .axis("r", (0..rows).map(|r| r.to_string()))
            .axis("c", (0..cols).map(|c| c.to_string()));
        let jobs = spec.jobs();
        let all: Vec<CellRecord> = jobs
            .iter()
            .map(|j| CellRecord {
                index: j.index,
                cell: j.cell_id(),
                data: Json::Num(j.index as f64),
            })
            .collect();

        // Split the job list at arbitrary points, then merge the parts
        // back in an arbitrary order.
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (all.len() + 1)).collect();
        bounds.push(0);
        bounds.push(all.len());
        bounds.sort_unstable();
        let mut parts: Vec<&[CellRecord]> =
            bounds.windows(2).map(|w| &all[w[0]..w[1]]).collect();
        if order_seed % 2 == 0 {
            parts.reverse();
        }
        let k = (order_seed as usize) % parts.len().max(1);
        parts.rotate_left(k);

        let mut merged: Vec<CellRecord> = Vec::new();
        for part in parts {
            merged = combine(&merged, part);
        }
        // Conservation: every cell exactly once, nothing invented.
        prop_assert_eq!(merged.len(), jobs.len());
        prop_assert!(merged.iter().enumerate().all(|(i, r)| r.index == i));
        // And the merged document equals the in-order merge byte for byte.
        let specs = [&spec];
        prop_assert_eq!(
            merge_cells("p", &specs, &merged).unwrap(),
            merge_cells("p", &specs, &all).unwrap()
        );
    }

    #[test]
    fn sweep_manifest_record_roundtrips_bit_exactly(
        index in 0..100_000usize,
        raw in prop::collection::vec(0..u64::MAX, 0..8),
    ) {
        use eecs_bench::sweep::CellRecord;
        let nums: Vec<Json> = raw
            .iter()
            .map(|&b| {
                let v = f64::from_bits(b);
                Json::Num(if v.is_finite() { v } else { b as f64 })
            })
            .collect();
        let rec = CellRecord {
            index,
            cell: format!("p:axis={index}"),
            data: Json::Arr(nums),
        };
        // render → parse → rebuild → render: a fixed point, bit for bit.
        let line = rec.to_json().write().unwrap();
        let back = CellRecord::from_json(&jsonio::parse(&line).unwrap()).unwrap();
        prop_assert_eq!(back.index, rec.index);
        prop_assert_eq!(&back.cell, &rec.cell);
        let bits = |v: &Json| -> Vec<u64> {
            v.as_arr().unwrap().iter().map(|n| n.as_num().unwrap().to_bits()).collect()
        };
        prop_assert_eq!(bits(&back.data), bits(&rec.data));
        prop_assert_eq!(back.to_json().write().unwrap(), line);
    }
}

/// A deterministic test image whose content depends on the seed.
fn gradient_image(seed: u64) -> RgbImage {
    let mut img = RgbImage::new(32, 24);
    for y in 0..24 {
        for x in 0..32 {
            let v = ((x as u64 * 31 + y as u64 * 17 + seed) % 97) as f32 / 96.0;
            img.r.set(x, y, v);
            img.g.set(x, y, (v * 0.5) + 0.1);
            img.b.set(x, y, 1.0 - v);
        }
    }
    img
}

/// Every channel value of every pixel, as raw bits.
fn pixel_bits(img: &RgbImage) -> Vec<u32> {
    let mut bits = Vec::new();
    for y in 0..img.r.height() {
        for x in 0..img.r.width() {
            for c in [&img.r, &img.g, &img.b] {
                bits.push(c.get(x, y).to_bits());
            }
        }
    }
    bits
}

// ---- partition reconciliation algebra ----

const ALGS: [AlgorithmId; 4] = [
    AlgorithmId::Hog,
    AlgorithmId::Acf,
    AlgorithmId::C4,
    AlgorithmId::Lsvm,
];

/// A cache payload that is a pure function of the slot key — mirroring
/// the system invariant that a seat at a given epoch records a round's
/// assessment exactly once, so equal keys always carry equal payloads.
fn assessment_for(epoch: u64, round: usize) -> CameraAssessment {
    let mut m = CameraAssessment::new();
    if (epoch as usize + round) % 2 == 1 {
        m.insert(
            AlgorithmId::Hog,
            vec![CameraReport {
                objects: Vec::new(),
            }],
        );
    }
    m
}

fn seat_snapshot_strategy() -> impl Strategy<Value = SeatSnapshot> {
    let slot = (
        0u64..3,
        prop::option::of(0usize..5),
        prop::option::of(0usize..5),
    )
        .prop_map(|(epoch, entry_round, heard)| CacheSlot {
            epoch,
            heard,
            entry: entry_round.map(|r| (r, assessment_for(epoch, r))),
        });
    let quarantine =
        prop::collection::btree_map((0usize..4, 0usize..4), (1u32..5, 0usize..12), 0..5).prop_map(
            |m| {
                m.into_iter()
                    .map(|((cam, alg), (strikes, until))| (cam, ALGS[alg], strikes, until))
                    .collect::<Vec<_>>()
            },
        );
    (
        0u64..4,
        prop::option::of(0usize..4),
        0usize..6,
        prop::collection::vec(slot, 3),
        quarantine,
    )
        .prop_map(|(epoch, seat, plan_round, cache, quarantine)| {
            // The standing plan is likewise derived from the priority key
            // (epoch, plan_round, seat): priority ties carry equal plans,
            // as they do in the real system.
            let cam = (plan_round + seat.unwrap_or(0)) % 4;
            // Membership is likewise key-derived, pre-sorted and deduped
            // as the runtime maintains it, so the union join stays
            // idempotent on these inputs.
            let members: Vec<usize> = [cam, seat.unwrap_or(0), (epoch as usize) % 4]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            SeatSnapshot {
                epoch,
                seat,
                plan_round,
                members,
                assignment: [(cam, ALGS[(epoch as usize) % 4])].into(),
                active: vec![cam],
                cache,
                quarantine,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reconcile_is_commutative_and_epoch_is_max(
        a in seat_snapshot_strategy(),
        b in seat_snapshot_strategy(),
    ) {
        let ab = reconcile(&a, &b);
        let ba = reconcile(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.epoch, a.epoch.max(b.epoch));
    }

    #[test]
    fn reconcile_is_associative(
        a in seat_snapshot_strategy(),
        b in seat_snapshot_strategy(),
        c in seat_snapshot_strategy(),
    ) {
        let left = reconcile(&reconcile(&a, &b), &c);
        let right = reconcile(&a, &reconcile(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn reconcile_is_idempotent(a in seat_snapshot_strategy()) {
        prop_assert_eq!(reconcile(&a, &a), a);
    }

    #[test]
    fn empty_partition_windows_are_inert(
        start in 0usize..20,
        a in 0usize..6,
        b in 0usize..6,
        round in 0usize..40,
    ) {
        let islands = vec![
            vec![Endpoint::Hub, Endpoint::Camera(0)],
            vec![Endpoint::Camera(1), Endpoint::Camera(2)],
        ];
        let plan = PartitionPlan::none()
            .with_split(islands, start, start)
            .with_one_way(Endpoint::Camera(3), Endpoint::Hub, start, start);
        prop_assert!(!plan.enabled(), "an empty window must schedule nothing");
        prop_assert!(!plan.is_partitioned(round));
        let ep = |i: usize| if i == 5 { Endpoint::Hub } else { Endpoint::Camera(i) };
        prop_assert!(plan.can_reach(ep(a), ep(b), round));
        prop_assert!(!FaultPlan::ideal().with_partition(plan).enabled());
    }

    // ---- churn-plan membership algebra (pure, no simulation) ----

    #[test]
    fn churn_leave_rejoin_roundtrips_membership(
        seed in 0..u64::MAX,
        cam in 0..6usize,
        start in 1..30usize,
        len in 1..10usize,
    ) {
        let plan = ChurnPlan::seeded(seed).with_leave(cam, start, start + len);
        prop_assert!(plan.enabled());
        // Member before, absent over the half-open window, member again
        // from the rejoin round on — the round-trip restores identity.
        prop_assert!(plan.is_member(cam, 0));
        prop_assert!(plan.is_member(cam, start - 1));
        for r in start..start + len {
            prop_assert!(!plan.is_member(cam, r), "round {r} should be absent");
        }
        for r in start + len..start + len + 8 {
            prop_assert!(plan.is_member(cam, r), "round {r} should have rejoined");
        }
        // Neighbours are untouched by another camera's schedule.
        prop_assert!(plan.is_member(cam + 1, start));
    }

    #[test]
    fn churn_join_and_depart_partition_the_timeline(
        seed in 0..u64::MAX,
        cam in 0..6usize,
        join in 1..10usize,
        tenure in 1..10usize,
    ) {
        let depart = join + tenure;
        let plan = ChurnPlan::seeded(seed)
            .with_join(cam, join)
            .with_depart(cam, depart);
        for r in 0..join {
            prop_assert!(!plan.is_member(cam, r), "round {r}: not yet joined");
        }
        for r in join..depart {
            prop_assert!(plan.is_member(cam, r), "round {r}: inside tenure");
        }
        for r in depart..depart + 8 {
            prop_assert!(!plan.is_member(cam, r), "round {r}: departed for good");
        }
    }

    #[test]
    fn churn_inert_plans_are_roll_free(
        seed in 0..u64::MAX,
        cam in 0..8usize,
        round in 0..64usize,
    ) {
        // A seeded plan with no schedules is structurally inert: it is
        // not `enabled()` (so the round loop skips churn bookkeeping
        // entirely — zero draws), and membership is the constant `true`,
        // matching [`ChurnPlan::ideal`] for every key.
        let plan = ChurnPlan::seeded(seed);
        prop_assert!(!plan.enabled());
        prop_assert!(plan.is_member(cam, round));
        prop_assert_eq!(
            plan.is_member(cam, round),
            ChurnPlan::ideal().is_member(cam, round)
        );
    }

    #[test]
    fn churn_random_absence_is_order_independent(
        seed in 0..u64::MAX,
        rate in 0.01..0.9f64,
        queries in prop::collection::vec((0..6usize, 1..40usize), 1..32),
    ) {
        // Membership draws are keyed on (seed, camera, round) with no
        // counter, so two identically-built plans agree no matter how
        // many queries ran before, or in what order.
        let a = ChurnPlan::seeded(seed).with_random_absence(rate, 1);
        let b = ChurnPlan::seeded(seed).with_random_absence(rate, 1);
        let forward: Vec<bool> =
            queries.iter().map(|&(c, r)| a.is_member(c, r)).collect();
        let mut backward: Vec<bool> =
            queries.iter().rev().map(|&(c, r)| b.is_member(c, r)).collect();
        backward.reverse();
        prop_assert_eq!(forward, backward);
        // Randomness starting at round 1 leaves round 0 deterministic.
        prop_assert!(a.is_member(0, 0));
    }
}

// ---------------------------------------------------------------------------
// Churn end-to-end laws: arbitrary plans replay bit-identically across
// worker counts, and inert plans are invisible in the report. Each case
// runs full miniature simulations, so the case counts stay deliberately
// tiny — breadth comes from the pure membership algebra above.
// ---------------------------------------------------------------------------

/// Three cameras over three rounds: enough surface for joins, leaves,
/// and departures to all land mid-run.
fn churn_base() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| {
        let mut profile = DatasetProfile::miniature(DatasetId::Lab);
        profile.num_people = 4;
        let eecs = EecsConfig {
            assessment_period: 10,
            recalibration_interval: 30,
            key_frames: 8,
            ..EecsConfig::default()
        };
        Simulation::prepare(
            DetectorBank::train_quick(23).expect("bank"),
            SimulationConfig {
                profile,
                cameras: 3,
                start_frame: 40,
                end_frame: 130,
                budget_j_per_frame: 5.0,
                mode: OperatingMode::FullEecs,
                eecs,
                feature_words: 12,
                max_training_frames: 8,
                boost_every: 0,
                fault_plan: FaultPlan::ideal(),
                sensor_plan: SensorFaultPlan::ideal(),
                controller_plan: ControllerFaultPlan::none(),
                parallel: Parallelism::default(),
            },
        )
        .expect("prepare")
    })
}

/// The churn-free reference run, computed once.
fn churn_baseline() -> &'static SimulationReport {
    static REPORT: OnceLock<SimulationReport> = OnceLock::new();
    REPORT.get_or_init(|| churn_base().run().expect("baseline run"))
}

/// Arbitrary plans over the three-camera, three-round window: scheduled
/// leaves, permanent departures, late joins, and sometimes a random
/// absence lottery on top.
fn churn_plan_strategy() -> impl Strategy<Value = ChurnPlan> {
    let op = (0..3usize, 1..3usize, 1..2usize, 0..3u8);
    (
        0..u64::MAX,
        prop::collection::vec(op, 0..4),
        0.0..0.35f64,
        0..2u8,
    )
        .prop_map(|(seed, ops, rate, random)| {
            let random = random == 1;
            let mut plan = ChurnPlan::seeded(seed);
            for (cam, at, len, kind) in ops {
                plan = match kind {
                    0 => plan.with_leave(cam, at, at + len),
                    1 => plan.with_depart(cam, at),
                    _ => plan.with_join(cam, at),
                };
            }
            if random {
                plan = plan.with_random_absence(rate, 1);
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn churn_runs_bit_identical_across_worker_counts(plan in churn_plan_strategy()) {
        // The full outcome — including an identical error, should the
        // plan shrink the fleet into infeasibility — must not depend on
        // the host's thread count.
        let outcome = |workers: usize| {
            churn_base()
                .with_churn(plan.clone())
                .with_parallelism(Parallelism {
                    workers,
                    feature_cache: workers != 1,
                })
                .run()
        };
        let one = outcome(1);
        let two = outcome(2);
        let eight = outcome(8);
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
    }

    #[test]
    fn churn_inert_seeded_plans_are_invisible(seed in 0..u64::MAX) {
        // Any seed, no schedules: the run must be byte-identical to one
        // that never heard of churn, and report zero membership events.
        let plan = ChurnPlan::seeded(seed);
        prop_assert!(!plan.enabled());
        let report = churn_base().with_churn(plan).run().expect("inert churn run");
        prop_assert_eq!(report.camera_joins, 0);
        prop_assert_eq!(report.camera_leaves, 0);
        prop_assert_eq!(&report, churn_baseline());
    }
}

// ---------------------------------------------------------------------------
// Mission-service laws. The scheduler is a pure function over (seed,
// request list), so the admission properties get full proptest breadth
// without running a single simulation; only the end-to-end trace
// bit-identity property pays for real mission runs, with tiny case
// counts (mirroring the churn laws above).
// ---------------------------------------------------------------------------

/// Arbitrary mission requests over four tenants: mixed priorities,
/// zero-work clamps, optional (sometimes infeasible) deadlines, and a
/// 1-in-12 invalid-budget lottery so every admission verdict fires.
fn mission_request_strategy() -> impl Strategy<Value = MissionRequest> {
    (
        0..4usize,
        0..3u8,
        0..6u64,
        prop::option::of(0..12u64),
        0..12u8,
    )
        .prop_map(|(tenant, priority, work, deadline, lottery)| {
            let tenants = ["acme", "zenith", "orbit", "kite"];
            let priority = match priority {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            let mut request = MissionRequest::new(tenants[tenant])
                .with_priority(priority)
                .with_work(work);
            if let Some(d) = deadline {
                request = request.with_deadline(d);
            }
            if lottery == 0 {
                request.spec.budget_j_per_frame = Some(-1.0);
            }
            request
        })
}

/// Arbitrary service shapes: tight and roomy slots, queues and caps.
fn service_config_strategy() -> impl Strategy<Value = ServiceConfig> {
    (0..u64::MAX, 1..4usize, 0..5usize, 1..4usize).prop_map(|(seed, slots, queue, cap)| {
        ServiceConfig::new(seed)
            .with_slots(slots)
            .with_queue_capacity(queue)
            .with_tenant_cap(cap)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admission_is_a_pure_function_of_seed_and_requests(
        config in service_config_strategy(),
        requests in prop::collection::vec(mission_request_strategy(), 0..20),
    ) {
        // Bit-for-bit: two plannings of the same (seed, request order)
        // agree on every verdict, tick, event and queue-depth bound.
        prop_assert_eq!(
            plan_schedule(&config, &requests),
            plan_schedule(&config, &requests)
        );
    }

    #[test]
    fn admission_conserves_every_submission(
        config in service_config_strategy(),
        requests in prop::collection::vec(mission_request_strategy(), 0..20),
    ) {
        // rejections + completions == submitted, with each mission index
        // appearing exactly once.
        let schedule = plan_schedule(&config, &requests);
        prop_assert_eq!(schedule.outcomes.len(), requests.len());
        let mut seen: Vec<usize> = schedule.outcomes.iter().map(|o| o.mission).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..requests.len()).collect::<Vec<_>>());
        prop_assert_eq!(
            schedule.admitted().len() + schedule.rejections().len(),
            requests.len()
        );
    }

    #[test]
    fn no_priority_inversion_between_same_tenant_requests(
        config in service_config_strategy(),
        requests in prop::collection::vec(mission_request_strategy(), 0..20),
    ) {
        // A higher-priority request already waiting when a same-tenant
        // lower-priority one starts must itself have started no later.
        let schedule = plan_schedule(&config, &requests);
        let starts: Vec<(usize, u64, u64)> = schedule
            .outcomes
            .iter()
            .filter_map(|o| match o.verdict {
                MissionVerdict::Admitted { start_tick, .. } => {
                    Some((o.mission, o.arrival_tick, start_tick))
                }
                _ => None,
            })
            .collect();
        for &(hi, hi_arrival, hi_start) in &starts {
            for &(lo, _, lo_start) in &starts {
                let same_tenant = requests[hi].tenant == requests[lo].tenant;
                if same_tenant
                    && requests[hi].priority > requests[lo].priority
                    && hi_arrival < lo_start
                {
                    prop_assert!(
                        hi_start <= lo_start,
                        "mission {} (high) started at {} after mission {} (low) at {}",
                        hi, hi_start, lo, lo_start
                    );
                }
            }
        }
    }
}

/// The shared service base — one training pass for this binary, via the
/// same memoized artifact cache the service shares across missions.
fn serve_base() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| service_base(&Artifacts::quick_trained(Scale::Quick, 5)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn service_trace_bit_identical_across_worker_counts(
        seed in 0..u64::MAX,
        chaos_seed in 0..u64::MAX,
    ) {
        // Three missions — one clean, one under lossy+corrupting links,
        // one under scheduled churn — planned on an arbitrary virtual
        // clock: the full service trace and every completed report must
        // not depend on the host's worker count.
        let batch = vec![
            MissionRequest::new("acme").with_priority(Priority::High).with_work(2),
            MissionRequest::new("zenith").with_spec(MissionSpec {
                budget_j_per_frame: Some(8.0),
                fault_plan: Some(
                    FaultPlan::seeded(chaos_seed)
                        .with_default_faults(LinkFaults::lossy(0.25))
                        .with_corruption(CorruptionPlan::with_rate(0.2)),
                ),
                ..MissionSpec::default()
            }),
            MissionRequest::new("zenith").with_deadline(9).with_spec(MissionSpec {
                churn: Some(ChurnPlan::seeded(chaos_seed).with_leave(1, 1, 2)),
                ..MissionSpec::default()
            }),
        ];
        let outcome = |workers: usize| {
            let config = ServiceConfig::new(seed).with_slots(2).with_workers(workers);
            MissionService::new(serve_base().clone(), config)
                .run_batch(&batch, &BatchOptions::default())
                .expect("batch runs")
                .run
                .expect("uninterrupted batch assembles")
        };
        let one = outcome(1);
        let two = outcome(2);
        let eight = outcome(8);
        prop_assert_eq!(one.trace_bytes(), two.trace_bytes());
        prop_assert_eq!(one.trace_bytes(), eight.trace_bytes());
        prop_assert_eq!(&one.completed, &two.completed);
        prop_assert_eq!(&one.completed, &eight.completed);
    }
}
