//! The parallel detection pipeline is a wall-clock optimization only:
//! a full EECS run under a chaotic fault plan must produce byte-identical
//! reports for every combination of worker-pool size and feature-cache
//! setting. Detection outputs are precomputed in parallel but consumed in
//! the exact serial order, so every battery drain, meter record, and
//! radio send replays identically.

use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::detect::bank::DetectorBank;
use eecs::net::fault::{ControllerFaultPlan, FaultPlan, LinkFaults};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// The camera whose device is crashed for the whole run.
const CRASHED: usize = 3;

fn chaos_plan() -> FaultPlan {
    FaultPlan::seeded(42)
        .with_default_faults(LinkFaults::lossy(0.3))
        .with_crash(CRASHED, 0, usize::MAX)
}

fn sensor_plan() -> SensorFaultPlan {
    // Sensor corruption happens serially before the worker fan-out, so
    // degraded pixels (and dropped frames) must not break invariance.
    SensorFaultPlan::seeded(7)
        .with_default_impairments(SensorImpairments::harsh())
        .with_occlusion(1, 40, 80, 0.25)
}

fn simulation(parallel: Parallelism) -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: chaos_plan(),
            sensor_plan: sensor_plan(),
            controller_plan: ControllerFaultPlan::none().with_crash(1, 2),
            parallel,
        },
    )
    .expect("prepare")
}

#[test]
fn worker_pool_size_and_feature_cache_never_change_the_report() {
    // Serial reference: one worker, every detector computing its own
    // features, exactly the pre-parallelism pipeline.
    let reference = simulation(Parallelism::serial()).run().expect("serial run");
    assert!(!reference.rounds.is_empty());
    assert!(
        reference.total_transport().drops > 0,
        "the chaotic fault plan must actually exercise the network"
    );

    let variants = [
        (
            "1 worker + cache",
            Parallelism {
                workers: 1,
                feature_cache: true,
            },
        ),
        (
            "auto workers, no cache",
            Parallelism {
                workers: 0,
                feature_cache: false,
            },
        ),
        ("auto workers + cache (default)", Parallelism::default()),
        (
            "3 workers + cache",
            Parallelism {
                workers: 3,
                feature_cache: true,
            },
        ),
    ];
    for (label, parallel) in variants {
        let report = simulation(parallel).run().expect(label);
        assert_eq!(report, reference, "{label}: report differs from serial");

        // PartialEq on f64 treats -0.0 == 0.0; energy must match to the
        // last bit, so compare the raw representations too.
        assert_eq!(
            report.total_energy_j.to_bits(),
            reference.total_energy_j.to_bits(),
            "{label}: total energy not bit-identical"
        );
        for (j, (a, b)) in report
            .per_camera_energy
            .iter()
            .zip(&reference.per_camera_energy)
            .enumerate()
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: camera {j} energy not bit-identical"
            );
        }
        assert_eq!(
            report.transport, reference.transport,
            "{label}: transport stats differ"
        );
    }
}
