//! Differential battery for the mission service: a mission run *through*
//! the service must be indistinguishable — to the byte and to the bit —
//! from the same spec run directly on [`Simulation::run`].
//!
//! The grid covers (scenario × service seed × worker count): ideal,
//! network chaos (lossy links + wire corruption), harsh sensor
//! impairments, and mid-mission fleet churn. For every completed mission
//! the service's `report_json` must equal the direct run's canonical
//! [`report_to_json`] bytes and its `energy_bits` must equal the direct
//! run's `total_energy_j.to_bits()`.
//!
//! The `#[ignore]`d soak at the bottom pushes 500 mixed-priority
//! missions through a 4-slot queue under seeded corruption and churn
//! (run with `EECS_SOAK=1 ci.sh` or `cargo test -- --ignored`).

use eecs::core::simulation::Simulation;
use eecs::core::telemetry::summary::report_to_json;
use eecs::core::telemetry::Telemetry;
use eecs::core::testkit::{InvariantChecker, InvariantContext};
use eecs::net::checksum::crc32;
use eecs::net::fault::{ChurnPlan, CorruptionPlan, FaultPlan, LinkFaults};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};
use eecs_bench::artifacts::Artifacts;
use eecs_bench::serving::{mixed_batch, service_base};
use eecs_bench::Scale;
use eecs_serve::invariants::{ServiceContext, ServiceInvariants};
use eecs_serve::{
    BatchOptions, MissionRequest, MissionService, MissionSpec, Priority, Rejected, ServiceConfig,
};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// The shared prepared base — one training pass for the whole binary,
/// via the same memoized [`Artifacts`] cache the service promises to
/// tenants.
fn base() -> &'static Simulation {
    static SIM: OnceLock<Simulation> = OnceLock::new();
    SIM.get_or_init(|| service_base(&Artifacts::quick_trained(Scale::Quick, 5)))
}

/// Direct-run cache keyed by spec fingerprint: `(report_json, energy
/// bits)` of `spec.apply(base).run()`, computed once per distinct spec
/// so the 8 grid cells per scenario share their reference runs.
fn direct(spec: &MissionSpec) -> (String, u64) {
    static CACHE: OnceLock<Mutex<BTreeMap<u32, (String, u64)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = spec.fingerprint();
    if let Some(hit) = cache.lock().unwrap().get(&key) {
        return hit.clone();
    }
    let report = spec
        .apply(base())
        .expect("spec applies")
        .run()
        .expect("direct run");
    let entry = (
        report_to_json(&report).write().expect("report serializes"),
        report.total_energy_j.to_bits(),
    );
    cache.lock().unwrap().insert(key, entry.clone());
    entry
}

/// The two admissible specs of one scenario (distinct budgets so their
/// reports differ), parameterized by a per-mission chaos seed.
fn scenario_specs(scenario: &str) -> Vec<MissionSpec> {
    (0..2u64)
        .map(|i| {
            let mut spec = MissionSpec {
                budget_j_per_frame: Some(8.0 + i as f64),
                ..MissionSpec::default()
            };
            match scenario {
                "ideal" => {}
                "net_chaos" => {
                    spec.fault_plan = Some(
                        FaultPlan::seeded(40 + i)
                            .with_default_faults(LinkFaults::lossy(0.25))
                            .with_corruption(CorruptionPlan::with_rate(0.2)),
                    );
                }
                "sensor_chaos" => {
                    spec.sensor_plan = Some(
                        SensorFaultPlan::seeded(40 + i)
                            .with_default_impairments(SensorImpairments::harsh()),
                    );
                }
                "churn" => {
                    // A scheduled leave keeps the 2-camera fleet feasible
                    // in every round, unlike a random-absence lottery.
                    spec.churn = Some(ChurnPlan::seeded(40 + i).with_leave(1, 1, 2));
                }
                other => panic!("unknown scenario {other}"),
            }
            spec
        })
        .collect()
}

/// One scenario's batch: two admissible missions plus one whose deadline
/// is infeasible on arrival — the differential grid exercises the
/// rejection path without paying for a third simulation.
fn scenario_batch(scenario: &str) -> Vec<MissionRequest> {
    let specs = scenario_specs(scenario);
    vec![
        MissionRequest::new("acme")
            .with_priority(Priority::High)
            .with_work(2)
            .with_spec(specs[0].clone()),
        MissionRequest::new("zenith")
            .with_work(1)
            .with_deadline(20)
            .with_spec(specs[1].clone()),
        MissionRequest::new("zenith")
            .with_work(5)
            .with_deadline(1)
            .with_spec(specs[1].clone()),
    ]
}

/// Runs one scenario across seeds {7, 11} × workers {1, 2} and checks
/// every completion against its direct run.
fn differential(scenario: &str) {
    let batch = scenario_batch(scenario);
    for seed in [7u64, 11] {
        let mut traces = Vec::new();
        for workers in [1usize, 2] {
            let config = ServiceConfig::new(seed)
                .with_slots(2)
                .with_queue_capacity(8)
                .with_tenant_cap(8)
                .with_workers(workers);
            let run = MissionService::new(base().clone(), config)
                .run_batch(&batch, &BatchOptions::default())
                .expect("batch runs")
                .run
                .expect("uninterrupted batch assembles");

            // Admission: both feasible missions complete, the infeasible
            // deadline is typed.
            assert_eq!(run.completed.len(), 2, "{scenario}/{seed}/{workers}");
            assert!(matches!(
                run.schedule.rejections().as_slice(),
                [(2, Rejected::DeadlineInfeasible { .. })]
            ));

            // Differential core: service bytes == direct-run bytes.
            for c in &run.completed {
                let (expected_json, expected_bits) = direct(&batch[c.mission].spec);
                assert_eq!(
                    c.report_json, expected_json,
                    "{scenario}/{seed}/{workers}: mission {} report bytes diverge",
                    c.mission
                );
                assert_eq!(
                    c.energy_bits, expected_bits,
                    "{scenario}/{seed}/{workers}: mission {} energy bits diverge",
                    c.mission
                );
                assert_eq!(c.report_crc, crc32(expected_json.as_bytes()));
                let report = c.report.as_ref().expect("fresh run keeps the report");
                assert_eq!(report.total_energy_j.to_bits(), expected_bits);
            }
            traces.push(run.trace_bytes());
        }
        // The whole service trace is worker-count independent.
        assert_eq!(traces[0], traces[1], "{scenario}/{seed}: trace differs");
    }
}

#[test]
fn service_matches_direct_runs_ideal() {
    differential("ideal");
}

#[test]
fn service_matches_direct_runs_under_net_chaos() {
    differential("net_chaos");
}

#[test]
fn service_matches_direct_runs_under_sensor_chaos() {
    differential("sensor_chaos");
}

#[test]
fn service_matches_direct_runs_under_churn() {
    differential("churn");
}

/// Soak: 500 mixed-priority missions — seeded corruption, churn and
/// sensor chaos in the mix — through a 4-slot, 4-deep queue on 4
/// workers. Memory stays bounded by the flight-recorder ring, the batch
/// drains without deadlock, and both invariant batteries come back
/// clean: [`ServiceInvariants`] over the batch, the core
/// [`InvariantChecker`] over every fresh mission report.
#[test]
#[ignore]
fn soak_500_missions_through_a_4_slot_queue() {
    // Heavier declared costs than the smoke batches use, so arrivals
    // outpace the virtual service rate and the queue genuinely fills.
    // Most deadlines are generous (feasible on admission, missable
    // under queue delay); every 7th keeps the smoke batch's tight one,
    // so the infeasible-on-arrival path fires too.
    let mut batch: Vec<MissionRequest> =
        mixed_batch(500, &["acme", "zenith", "orbit", "kite"], true)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let work = 4 + (i as u64 % 13);
                let r = r.with_work(work);
                if i % 7 == 0 {
                    r
                } else {
                    r.with_deadline(work + 20 + (i as u64 % 10))
                }
            })
            .collect();
    // One poisoned spec: the invalid-config rejection path must also
    // survive the soak without consuming capacity.
    batch[250].spec.budget_j_per_frame = Some(-1.0);

    let config = ServiceConfig::new(97)
        .with_slots(4)
        .with_queue_capacity(4)
        .with_tenant_cap(3)
        .with_workers(4);
    // The planned shape this soak pins: a saturated queue, well over
    // 100 executions, and deadline misses under queue delay.
    const RING: usize = 256;
    let telemetry = Telemetry::recording(RING);
    let run = MissionService::new(base().clone(), config.clone())
        .with_telemetry(telemetry.clone())
        .run_batch(&batch, &BatchOptions::default())
        .expect("soak batch runs")
        .run
        .expect("soak batch assembles");

    // The queue saturated and every rejection kind fired.
    let rejections = run.schedule.rejections();
    assert_eq!(run.schedule.max_queue_depth, config.queue_capacity);
    for kind in ["queue_full", "deadline_infeasible", "invalid_config"] {
        assert!(
            rejections.iter().any(|(_, r)| r.kind() == kind),
            "soak produced no {kind} rejection"
        );
    }
    // Conservation, directly: every submission either completed or was
    // rejected with a typed reason.
    assert_eq!(run.completed.len() + rejections.len(), batch.len());
    assert!(run.completed.len() > 100, "soak barely admitted anything");
    let missed: u64 = run.tenants.values().map(|t| t.deadline_missed).sum();
    assert!(missed > 0, "queue delay produced no deadline misses");

    // Bounded memory: the ring wrapped and never exceeded its capacity.
    assert!(telemetry.events().len() <= RING);
    assert!(telemetry.trace_evicted() > 0, "soak too short to wrap");

    // Full service-invariant battery over the batch.
    ServiceInvariants::with_defaults().assert_clean(&ServiceContext {
        config: &config,
        requests: &batch,
        run: &run,
        telemetry: &telemetry,
    });

    // Core conservation laws over every fresh mission report (events
    // empty: missions run under the null handle by design).
    let checker = InvariantChecker::with_defaults();
    for c in &run.completed {
        let report = c.report.as_ref().expect("fresh soak run keeps reports");
        checker.assert_clean(&InvariantContext {
            report,
            events: &[],
            capacities: &[],
        });
    }
}
