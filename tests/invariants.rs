//! Invariant battery: every scenario the suite knows — ideal, lossy
//! links, sensor degradation, a network partition, a corruption storm
//! with a torn checkpoint, and the new churn/heterogeneous-fleet
//! variants — is run serial *and* parallel, and each finished run is
//! audited by [`eecs::core::testkit::InvariantChecker`]'s default rules:
//! energy conservation against per-camera capacities, assignment and
//! quarantine membership against the event-derived join/leave timeline,
//! and counter/event agreement. A final test proves replay bit-identity
//! through [`eecs::core::testkit::verify_replay`] on the richest
//! scenario.

use eecs::core::checkpoint::CheckpointFaultPlan;
use eecs::core::config::EecsConfig;
use eecs::core::simulation::{OperatingMode, Parallelism, Simulation, SimulationConfig};
use eecs::core::telemetry::Telemetry;
use eecs::core::testkit::{verify_replay, InvariantChecker, InvariantContext};
use eecs::detect::bank::DetectorBank;
use eecs::energy::profile::DeviceProfile;
use eecs::net::fault::{
    ChurnPlan, ControllerFaultPlan, CorruptionPlan, Endpoint, FaultPlan, LinkFaults, PartitionPlan,
};
use eecs::scene::dataset::{DatasetId, DatasetProfile};
use eecs::scene::sensor_fault::{SensorFaultPlan, SensorImpairments};

/// Large enough that no scenario here ever evicts a trace event; the
/// harness asserts `trace_evicted() == 0` so a silent truncation can
/// never masquerade as a passing audit.
const TRACE_CAPACITY: usize = 16384;

/// Four cameras over four rounds gives churn a window to leave *and*
/// rejoin while the suite still finishes quickly.
fn base_simulation() -> Simulation {
    let mut profile = DatasetProfile::miniature(DatasetId::Lab);
    profile.num_people = 4;
    let eecs = EecsConfig {
        assessment_period: 10,
        recalibration_interval: 30,
        key_frames: 8,
        ..EecsConfig::default()
    };
    Simulation::prepare(
        DetectorBank::train_quick(23).expect("bank"),
        SimulationConfig {
            profile,
            cameras: 4,
            start_frame: 40,
            end_frame: 160,
            budget_j_per_frame: 5.0,
            mode: OperatingMode::FullEecs,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::default(),
        },
    )
    .expect("prepare")
}

fn two_islands() -> Vec<Vec<Endpoint>> {
    vec![
        vec![Endpoint::Hub, Endpoint::Camera(0), Endpoint::Camera(1)],
        vec![Endpoint::Camera(2), Endpoint::Camera(3)],
    ]
}

/// Flagship + two midrange + lowend: every cost table distinct.
fn mixed_fleet() -> Vec<DeviceProfile> {
    vec![
        DeviceProfile::flagship(),
        DeviceProfile::midrange(),
        DeviceProfile::midrange(),
        DeviceProfile::lowend(),
    ]
}

/// Camera 3 sits out rounds [1, 3) and rejoins; camera 1 departs for
/// good at round 2. Camera 0 is left alone so a controller seat always
/// has a stable home.
fn churn_plan() -> ChurnPlan {
    ChurnPlan::seeded(5).with_leave(3, 1, 3).with_depart(1, 2)
}

/// Every scenario in the battery, by name.
const SCENARIOS: &[&str] = &[
    "ideal",
    "net_chaos",
    "sensor_chaos",
    "partition",
    "integrity",
    "churn",
    "churn_hetero",
];

fn scenario(name: &str) -> Simulation {
    let base = base_simulation();
    match name {
        "ideal" => base,
        "net_chaos" => base.with_faults(
            FaultPlan::seeded(7).with_default_faults(LinkFaults::lossy(0.25)),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none(),
        ),
        "sensor_chaos" => base.with_faults(
            FaultPlan::ideal(),
            SensorFaultPlan::seeded(11)
                .with_default_impairments(SensorImpairments::harsh())
                .with_occlusion(1, 40, 160, 0.25),
            ControllerFaultPlan::none(),
        ),
        "partition" => base.with_faults(
            FaultPlan::ideal().with_partition(PartitionPlan::none().with_split(
                two_islands(),
                1,
                3,
            )),
            SensorFaultPlan::ideal(),
            ControllerFaultPlan::none(),
        ),
        "integrity" => base
            .with_faults(
                FaultPlan::seeded(17)
                    .with_default_faults(LinkFaults::lossy(0.1))
                    .with_corruption(CorruptionPlan::with_rate(0.2)),
                SensorFaultPlan::ideal(),
                ControllerFaultPlan::none().with_crash(1, 2),
            )
            .with_checkpoint_faults(CheckpointFaultPlan::seeded(5).with_torn_write(2)),
        "churn" => base.with_churn(churn_plan()),
        "churn_hetero" => base
            .with_fleet(mixed_fleet())
            .expect("fleet fits the miniature profile")
            .with_churn(churn_plan())
            .with_faults(
                FaultPlan::seeded(7).with_default_faults(LinkFaults::lossy(0.15)),
                SensorFaultPlan::ideal(),
                ControllerFaultPlan::none(),
            ),
        other => panic!("unknown scenario {other}"),
    }
}

/// Run `name` under `parallel`, then put the finished run in front of
/// the default rule set.
fn audit(name: &str, parallel: Parallelism) {
    let sim = scenario(name).with_parallelism(parallel);
    let tel = Telemetry::recording(TRACE_CAPACITY);
    let report = sim
        .with_telemetry(tel.clone())
        .run()
        .unwrap_or_else(|e| panic!("{name} run completes: {e}"));
    assert_eq!(
        tel.trace_evicted(),
        0,
        "{name}: trace capacity too small for a trustworthy audit"
    );
    let events = tel.events();
    let capacities: Vec<f64> = sim.fleet().iter().map(|p| p.battery_capacity_j).collect();
    let ctx = InvariantContext {
        report: &report,
        events: &events,
        capacities: &capacities,
    };
    InvariantChecker::with_defaults().assert_clean(&ctx);
}

#[test]
fn all_scenarios_hold_invariants_serially() {
    for name in SCENARIOS {
        audit(name, Parallelism::serial());
    }
}

#[test]
fn all_scenarios_hold_invariants_in_parallel() {
    for name in SCENARIOS {
        audit(name, Parallelism::default());
    }
}

/// The churn scenarios actually churned — otherwise the membership
/// rules above were vacuously auditing a fixed fleet.
#[test]
fn churn_scenarios_exercise_joins_and_leaves() {
    for name in ["churn", "churn_hetero"] {
        let report = scenario(name).run().expect("churn run completes");
        assert!(
            report.camera_leaves >= 2,
            "{name}: expected both scheduled departures, saw {}",
            report.camera_leaves
        );
        assert!(
            report.camera_joins >= 1,
            "{name}: camera 3 should have rejoined, saw {} joins",
            report.camera_joins
        );
    }
}

/// The richest scenario replays bit-identically — `verify_replay` runs
/// it twice and demands equality before handing the report back.
#[test]
fn churn_hetero_replays_bit_identically() {
    let report = verify_replay(&scenario("churn_hetero")).expect("replay is bit-identical");
    assert!(
        report.rounds.len() >= 2,
        "needs multiple rounds to mean anything"
    );
}

/// A deliberately broken rule reports; the defaults never do. Guards
/// against `assert_clean` silently passing because no rules loaded.
#[test]
fn checker_is_actually_armed() {
    let checker = InvariantChecker::with_defaults();
    assert!(
        checker.rule_names().len() >= 4,
        "default rule set lost rules: {:?}",
        checker.rule_names()
    );
    let sim = scenario("ideal");
    let report = sim.run().expect("run");
    let capacities: Vec<f64> = sim.fleet().iter().map(|p| p.battery_capacity_j).collect();
    let ctx = InvariantContext {
        report: &report,
        events: &[],
        capacities: &capacities,
    };
    let mut checker = InvariantChecker::with_defaults();
    checker.add_rule("always-fires", |_ctx| vec!["sentinel violation".into()]);
    let violations = checker.check(&ctx);
    assert!(
        violations.iter().any(|v| v.contains("sentinel violation")),
        "custom rule did not run: {violations:?}"
    );
    assert_eq!(
        violations.len(),
        1,
        "default rules flagged a clean run: {violations:?}"
    );
}
