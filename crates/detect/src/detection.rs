//! Detections, bounding boxes, algorithm identities.

use std::fmt;

/// The four detection algorithms of Section V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AlgorithmId {
    /// Histograms of oriented gradients + linear SVM (Dalal–Triggs).
    Hog,
    /// Aggregated channel features + AdaBoost (Dollár et al.).
    Acf,
    /// Contour cues via census transform (Wu et al.).
    C4,
    /// Deformable part model (Felzenszwalb et al.).
    Lsvm,
}

impl AlgorithmId {
    /// All four algorithms in the paper's table order.
    pub const ALL: [AlgorithmId; 4] = [
        AlgorithmId::Hog,
        AlgorithmId::Acf,
        AlgorithmId::C4,
        AlgorithmId::Lsvm,
    ];

    /// A stable lowercase label, used as a metric-name component
    /// (`detect.runs.acf` and friends) without going through `Display`.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmId::Hog => "hog",
            AlgorithmId::Acf => "acf",
            AlgorithmId::C4 => "c4",
            AlgorithmId::Lsvm => "lsvm",
        }
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgorithmId::Hog => write!(f, "HOG"),
            AlgorithmId::Acf => write!(f, "ACF"),
            AlgorithmId::C4 => write!(f, "C4"),
            AlgorithmId::Lsvm => write!(f, "LSVM"),
        }
    }
}

impl std::str::FromStr for AlgorithmId {
    type Err = String;

    /// Parses the paper's algorithm names as produced by `Display` —
    /// the round-trip the checkpoint serializer relies on.
    fn from_str(s: &str) -> Result<AlgorithmId, String> {
        match s {
            "HOG" => Ok(AlgorithmId::Hog),
            "ACF" => Ok(AlgorithmId::Acf),
            "C4" => Ok(AlgorithmId::C4),
            "LSVM" => Ok(AlgorithmId::Lsvm),
            other => Err(format!("unknown algorithm id `{other}`")),
        }
    }
}

/// An axis-aligned bounding box in pixel coordinates, `[x0, x1) × [y0, y1)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BBox {
    /// Left edge.
    pub x0: f64,
    /// Top edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Bottom edge.
    pub y1: f64,
}

impl BBox {
    /// Creates a box; coordinates are normalized so `x0 ≤ x1`, `y0 ≤ y1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Box width.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Box height.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Intersection area with another box.
    pub fn intersection(&self, other: &BBox) -> f64 {
        let ix = (self.x1.min(other.x1) - self.x0.max(other.x0)).max(0.0);
        let iy = (self.y1.min(other.y1) - self.y0.max(other.y0)).max(0.0);
        ix * iy
    }

    /// Intersection over union with another box, in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Bottom-center point — projected through the ground homography for
    /// re-identification (Section IV-C).
    pub fn bottom_center(&self) -> (f64, f64) {
        ((self.x0 + self.x1) / 2.0, self.y1)
    }
}

/// A single detection: a box plus the algorithm's raw confidence score.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Where.
    pub bbox: BBox,
    /// Raw (uncalibrated) detection score; higher is more confident.
    pub score: f64,
}

/// The result of running a detector on one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutput {
    /// Candidate detections after non-maximum suppression, sorted by
    /// descending score.
    pub detections: Vec<Detection>,
    /// Deterministic count of feature/classifier operations spent — the
    /// quantity the energy model converts to Joules (the paper measured
    /// this with PowerTutor; we count it exactly).
    pub ops: u64,
}

impl DetectionOutput {
    /// Detections with score at least `threshold` (the paper's `d_t`).
    pub fn above(&self, threshold: f64) -> Vec<&Detection> {
        self.detections
            .iter()
            .filter(|d| d.score >= threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(0.0, 0.0, 10.0, 20.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 5.0, 5.0);
        let b = BBox::new(10.0, 10.0, 15.0, 15.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        let b = BBox::new(5.0, 0.0, 15.0, 10.0);
        // Intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn new_normalizes_corners() {
        let b = BBox::new(10.0, 20.0, 0.0, 5.0);
        assert_eq!(b.x0, 0.0);
        assert_eq!(b.y1, 20.0);
        assert!(b.area() > 0.0);
    }

    #[test]
    fn centers() {
        let b = BBox::new(0.0, 0.0, 10.0, 20.0);
        assert_eq!(b.center(), (5.0, 10.0));
        assert_eq!(b.bottom_center(), (5.0, 20.0));
    }

    #[test]
    fn above_filters_by_threshold() {
        let out = DetectionOutput {
            detections: vec![
                Detection {
                    bbox: BBox::new(0.0, 0.0, 1.0, 1.0),
                    score: 2.0,
                },
                Detection {
                    bbox: BBox::new(0.0, 0.0, 1.0, 1.0),
                    score: 0.5,
                },
            ],
            ops: 10,
        };
        assert_eq!(out.above(1.0).len(), 1);
        assert_eq!(out.above(0.0).len(), 2);
    }

    #[test]
    fn algorithm_display_matches_paper() {
        assert_eq!(AlgorithmId::Hog.to_string(), "HOG");
        assert_eq!(AlgorithmId::Lsvm.to_string(), "LSVM");
        assert_eq!(AlgorithmId::ALL.len(), 4);
    }

    #[test]
    fn algorithm_id_display_round_trips_through_from_str() {
        for alg in AlgorithmId::ALL {
            assert_eq!(alg.to_string().parse::<AlgorithmId>(), Ok(alg));
        }
        assert!("YOLO".parse::<AlgorithmId>().is_err());
    }

    #[test]
    fn degenerate_box_iou_zero() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }
}
