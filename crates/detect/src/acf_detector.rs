//! The ACF pedestrian detector (Dollár et al., \[4\] in the paper).
//!
//! Aggregated channel features with a soft-cascade boosted classifier.
//! Three structural choices give ACF its paper-visible profile:
//!
//! 1. **Aggregation** — all features are raw lookups into shrink-4 channel
//!    images: the per-window cost is ~100 pixel reads instead of a ~1200-d
//!    normalized descriptor. With the soft cascade rejecting most windows
//!    after a few stumps, ACF is an order of magnitude cheaper per frame
//!    (Tables II–IV: 0.07 J vs 1.08 J).
//! 2. **No upsampling octaves** — scales stop at 0.5 (shrink-4 channels
//!    carry no usable structure below ~96 px), so small people are invisible: the low ACF recall on 360×288
//!    dataset #1 (0.34 in Table II) against its high recall on 1024×768
//!    dataset #2 (0.83 in Table III) where everyone is large.
//! 3. **Clutter-aware training** — its negative set includes furniture
//!    panels, keeping precision high in dataset #2 where HOG collapses.

use crate::detection::{AlgorithmId, BBox, Detection, DetectionOutput};
use crate::frame_features::FrameFeatures;
use crate::nms::{nms_in_place, non_maximum_suppression};
use crate::pyramid::{ScaleSchedule, WINDOW_H, WINDOW_W};
use crate::training::{synthesize, NegativeRegime, TrainingConfig};
use crate::{DetectError, Detector, Result};
use eecs_learn::boost::AdaBoost;
use eecs_learn::Example;
use eecs_vision::channels::{AcfChannels, CHANNEL_COUNT};
use eecs_vision::image::RgbImage;

/// ACF detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AcfDetectorConfig {
    /// Channel aggregation factor.
    pub shrink: usize,
    /// Scale schedule (capped well below 1.0: ACF does not upsample and
    /// aggregated channels need large people).
    pub scales: ScaleSchedule,
    /// Boosting rounds.
    pub rounds: usize,
    /// Window stride in aggregated pixels.
    pub stride: usize,
    /// Soft-cascade rejection floor on the partial boosted score.
    pub cascade_floor: f64,
    /// Number of stumps evaluated before the cascade may reject.
    pub cascade_warmup: usize,
    /// Candidates below this full score are dropped before NMS.
    pub keep_floor: f64,
    /// NMS IoU threshold.
    pub nms_iou: f64,
    /// Training-set synthesis (clutter regime).
    pub training: TrainingConfig,
}

impl Default for AcfDetectorConfig {
    fn default() -> Self {
        AcfDetectorConfig {
            shrink: 4,
            scales: ScaleSchedule {
                min_scale: 0.09,
                max_scale: 0.5,
                ratio: 1.33,
            },
            rounds: 96,
            stride: 1,
            cascade_floor: -0.6,
            cascade_warmup: 12,
            keep_floor: -0.2,
            nms_iou: 0.35,
            training: TrainingConfig {
                positives: 250,
                negatives: 400,
                regime: NegativeRegime::WithClutter,
                seed: 31,
            },
        }
    }
}

/// A stump re-indexed to a `(channel, dy, dx)` lookup in aggregated space.
#[derive(Debug, Clone, PartialEq)]
struct ChannelStump {
    channel: usize,
    dy: usize,
    dx: usize,
    threshold: f64,
    polarity: f64,
    alpha: f64,
}

/// A trained ACF detector.
#[derive(Debug, Clone)]
pub struct AcfDetector {
    config: AcfDetectorConfig,
    stumps: Vec<ChannelStump>,
    /// Window size in aggregated pixels.
    agg_w: usize,
    agg_h: usize,
    /// The enumerated scale schedule, cached at training time so `detect`
    /// only filters it per frame instead of re-deriving it.
    scale_levels: Vec<f64>,
}

impl AcfDetector {
    /// Trains the detector on synthesized windows.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Training`] when channel extraction or
    /// boosting fails, or the window is not divisible by the shrink.
    pub fn train(config: AcfDetectorConfig) -> Result<AcfDetector> {
        if !WINDOW_W.is_multiple_of(config.shrink) || !WINDOW_H.is_multiple_of(config.shrink) {
            return Err(DetectError::Training(format!(
                "shrink {} does not divide the {}x{} window",
                config.shrink, WINDOW_W, WINDOW_H
            )));
        }
        let agg_w = WINDOW_W / config.shrink;
        let agg_h = WINDOW_H / config.shrink;

        let windows = synthesize(&config.training);
        let mut examples = Vec::new();
        for (imgs, label) in [(&windows.positives, 1.0), (&windows.negatives, -1.0)] {
            for img in imgs.iter() {
                let ch = AcfChannels::compute(img, config.shrink)
                    .map_err(|e| DetectError::Training(format!("acf channels: {e}")))?;
                let feat = ch
                    .window_features(0, 0, agg_w, agg_h)
                    .map_err(|e| DetectError::Training(format!("acf features: {e}")))?;
                examples.push(Example {
                    features: feat,
                    label,
                });
            }
        }
        let boost = AdaBoost::train(&examples, config.rounds)
            .map_err(|e| DetectError::Training(format!("acf boost: {e}")))?;

        // Re-index the flat feature indices into channel-space lookups.
        // window_features layout: channel-major, then row, then column.
        let per_channel = agg_w * agg_h;
        let stumps = boost_to_channel_stumps(&boost, per_channel, agg_w);
        let scale_levels = config.scales.scales();
        Ok(AcfDetector {
            config,
            stumps,
            agg_w,
            agg_h,
            scale_levels,
        })
    }

    /// Number of weak learners in the cascade.
    pub fn num_stumps(&self) -> usize {
        self.stumps.len()
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &AcfDetectorConfig {
        &self.config
    }

    /// Evaluates the soft cascade at an aggregated-window position.
    /// Returns `(score, stumps_evaluated)`; `None` score means rejected.
    ///
    /// Pre-optimization path, kept verbatim as the oracle for
    /// [`AcfDetector::cascade_score_fast`].
    fn cascade_score(&self, ch: &AcfChannels, x0: usize, y0: usize) -> (Option<f64>, u64) {
        let mut sum = 0.0;
        for (k, s) in self.stumps.iter().enumerate() {
            let v = ch.channel(s.channel).get(x0 + s.dx, y0 + s.dy) as f64;
            let h = if v > s.threshold {
                s.polarity
            } else {
                -s.polarity
            };
            sum += s.alpha * h;
            if k + 1 >= self.config.cascade_warmup && sum < self.config.cascade_floor {
                return (None, (k + 1) as u64);
            }
        }
        (Some(sum), self.stumps.len() as u64)
    }

    /// [`AcfDetector::cascade_score`] over raw channel planes: each stump's
    /// `(dy, dx)` is pre-flattened into a row-major offset (`offsets`, one
    /// per stump, built once per pyramid level), so the per-stump lookup is
    /// one indexed load instead of an `(x, y)` address computation through
    /// the image accessor. `base` is `y0 · ch_width + x0`. Reads the same
    /// pixel values in the same order — scores and evaluation counts are
    /// identical to the reference.
    #[inline]
    fn cascade_score_fast(
        &self,
        planes: &[&[f32]],
        offsets: &[usize],
        base: usize,
    ) -> (Option<f64>, u64) {
        let mut sum = 0.0;
        for (k, (s, &off)) in self.stumps.iter().zip(offsets).enumerate() {
            let v = planes[s.channel][base + off] as f64;
            let h = if v > s.threshold {
                s.polarity
            } else {
                -s.polarity
            };
            sum += s.alpha * h;
            if k + 1 >= self.config.cascade_warmup && sum < self.config.cascade_floor {
                return (None, (k + 1) as u64);
            }
        }
        (Some(sum), self.stumps.len() as u64)
    }

    /// The pre-optimization detection loop, kept verbatim (fresh cache,
    /// accessor-based lookups, allocating NMS) as the equivalence oracle
    /// for `detect`: same detections, same scores, same `ops`.
    pub fn detect_reference(&self, frame: &RgbImage) -> DetectionOutput {
        let cache = FrameFeatures::new(frame);
        let mut ops = 0u64;
        let mut candidates = Vec::new();
        for scale in ScaleSchedule::usable_from(&self.scale_levels, frame.width(), frame.height()) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, frame.width(), frame.height());
            if cache.resized_rgb(sw, sh).is_err() {
                continue;
            }
            ops += (sw * sh) as u64 * 3;
            let Ok(ch) = cache.acf_channels(sw, sh, self.config.shrink) else {
                continue;
            };
            if ch.width() < self.agg_w || ch.height() < self.agg_h {
                continue;
            }
            let stride = self.config.stride.max(1);
            let mut y0 = 0;
            while y0 + self.agg_h <= ch.height() {
                let mut x0 = 0;
                while x0 + self.agg_w <= ch.width() {
                    let (score, evaluated) = self.cascade_score(&ch, x0, y0);
                    ops += evaluated;
                    if let Some(score) = score {
                        if score >= self.config.keep_floor {
                            let px0 = (x0 * self.config.shrink) as f64 / scale;
                            let py0 = (y0 * self.config.shrink) as f64 / scale;
                            candidates.push(Detection {
                                bbox: BBox::new(
                                    px0,
                                    py0,
                                    px0 + WINDOW_W as f64 / scale,
                                    py0 + WINDOW_H as f64 / scale,
                                ),
                                score,
                            });
                        }
                    }
                    x0 += stride;
                }
                y0 += stride;
            }
        }
        DetectionOutput {
            detections: non_maximum_suppression(candidates, self.config.nms_iou),
            ops,
        }
    }
}

fn boost_to_channel_stumps(
    boost: &AdaBoost,
    per_channel: usize,
    agg_w: usize,
) -> Vec<ChannelStump> {
    // AdaBoost does not expose its internals as (alpha, stump) pairs
    // publicly beyond iteration; reconstruct through its debug API.
    boost
        .stumps()
        .iter()
        .map(|(alpha, s)| {
            let channel = s.feature / per_channel;
            let rem = s.feature % per_channel;
            ChannelStump {
                channel,
                dy: rem / agg_w,
                dx: rem % agg_w,
                threshold: s.threshold,
                polarity: s.polarity,
                alpha: *alpha,
            }
        })
        .collect()
}

impl Detector for AcfDetector {
    fn algorithm(&self) -> AlgorithmId {
        AlgorithmId::Acf
    }

    fn detect(&self, frame: &RgbImage) -> DetectionOutput {
        self.detect_with_cache(frame, &FrameFeatures::new(frame))
    }

    fn detect_with_cache(&self, frame: &RgbImage, cache: &FrameFeatures<'_>) -> DetectionOutput {
        let mut ops = 0u64;
        let mut candidates = Vec::new();
        cache.with_scratch(|scratch| {
            for scale in
                ScaleSchedule::usable_from(&self.scale_levels, frame.width(), frame.height())
            {
                let (sw, sh) = ScaleSchedule::level_dims(scale, frame.width(), frame.height());
                // Cache stages mirror the direct resize-then-channels
                // computation so the ops increment lands between the same
                // failure points.
                if cache.resized_rgb(sw, sh).is_err() {
                    continue;
                }
                // Channel computation: ~1 op per pixel per gradient pass
                // plus the aggregation; CHANNEL_COUNT lookups amortized via
                // shrink².
                ops += (sw * sh) as u64 * 3;
                let Ok(ch) = cache.acf_channels(sw, sh, self.config.shrink) else {
                    continue;
                };
                if ch.width() < self.agg_w || ch.height() < self.agg_h {
                    continue;
                }
                // Per-level flattening: raw plane slices plus each stump's
                // `(dy, dx)` as a single row-major offset.
                let planes: Vec<&[f32]> = (0..CHANNEL_COUNT)
                    .map(|c| ch.channel(c).as_slice())
                    .collect();
                let ch_w = ch.width();
                scratch.offsets.clear();
                scratch
                    .offsets
                    .extend(self.stumps.iter().map(|s| s.dy * ch_w + s.dx));
                let stride = self.config.stride.max(1);
                let mut y0 = 0;
                while y0 + self.agg_h <= ch.height() {
                    let mut x0 = 0;
                    while x0 + self.agg_w <= ch.width() {
                        let (score, evaluated) =
                            self.cascade_score_fast(&planes, &scratch.offsets, y0 * ch_w + x0);
                        ops += evaluated;
                        if let Some(score) = score {
                            if score >= self.config.keep_floor {
                                let px0 = (x0 * self.config.shrink) as f64 / scale;
                                let py0 = (y0 * self.config.shrink) as f64 / scale;
                                candidates.push(Detection {
                                    bbox: BBox::new(
                                        px0,
                                        py0,
                                        px0 + WINDOW_W as f64 / scale,
                                        py0 + WINDOW_H as f64 / scale,
                                    ),
                                    score,
                                });
                            }
                        }
                        x0 += stride;
                    }
                    y0 += stride;
                }
            }
        });
        nms_in_place(&mut candidates, self.config.nms_iou);
        DetectionOutput {
            detections: candidates,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_vision::draw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> AcfDetectorConfig {
        AcfDetectorConfig {
            rounds: 48,
            training: TrainingConfig {
                positives: 80,
                negatives: 150,
                regime: NegativeRegime::WithClutter,
                seed: 2,
            },
            ..Default::default()
        }
    }

    fn scene_with_person(px: f64, py: f64, h: f64) -> RgbImage {
        let mut img = RgbImage::new(160, 120);
        draw::vertical_gradient(&mut img, [0.6, 0.6, 0.58], [0.35, 0.35, 0.33]);
        let w = h / 3.0;
        draw::draw_human(
            &mut img,
            px - w / 2.0,
            py - h,
            px + w / 2.0,
            py,
            [0.8, 0.2, 0.2],
            [0.85, 0.65, 0.5],
        );
        let mut rng = StdRng::seed_from_u64(7);
        draw::add_noise(&mut img, 0.02, &mut rng);
        img
    }

    #[test]
    fn detects_a_large_person() {
        let det = AcfDetector::train(quick_config()).unwrap();
        let img = scene_with_person(80.0, 110.0, 70.0);
        let out = det.detect(&img);
        assert!(!out.detections.is_empty());
        let (cx, _) = out.detections[0].bbox.center();
        assert!((cx - 80.0).abs() < 20.0, "best at x={cx}");
    }

    #[test]
    fn no_upsampling_misses_small_people() {
        let det = AcfDetector::train(quick_config()).unwrap();
        // 30-px person: below the 48-px window at max scale 1.0.
        let img = scene_with_person(80.0, 80.0, 30.0);
        let out = det.detect(&img);
        let hits = out
            .detections
            .iter()
            .filter(|d| {
                d.score > 0.0 && (d.bbox.center().0 - 80.0).abs() < 15.0 && d.bbox.height() < 45.0
            })
            .count();
        assert_eq!(hits, 0, "ACF should not see a 30-px person");
    }

    #[test]
    fn cheaper_than_hog_on_same_frame() {
        let acf = AcfDetector::train(quick_config()).unwrap();
        let hog =
            crate::hog_detector::HogSvmDetector::train(crate::hog_detector::HogDetectorConfig {
                training: TrainingConfig {
                    positives: 60,
                    negatives: 90,
                    regime: NegativeRegime::Clean,
                    seed: 3,
                },
                ..Default::default()
            })
            .unwrap();
        let img = scene_with_person(80.0, 110.0, 70.0);
        let acf_ops = acf.detect(&img).ops;
        let hog_ops = hog.detect(&img).ops;
        assert!(
            acf_ops * 5 < hog_ops,
            "ACF {acf_ops} ops should be well below HOG {hog_ops}"
        );
    }

    #[test]
    fn cascade_reduces_work() {
        let mut cfg = quick_config();
        let with_cascade = AcfDetector::train(cfg.clone()).unwrap();
        cfg.cascade_floor = f64::NEG_INFINITY; // disable rejection
        let without = AcfDetector::train(cfg).unwrap();
        let img = scene_with_person(80.0, 110.0, 70.0);
        assert!(with_cascade.detect(&img).ops < without.detect(&img).ops);
    }

    #[test]
    fn detect_matches_reference_bitwise() {
        let det = AcfDetector::train(quick_config()).unwrap();
        for frame in [
            scene_with_person(80.0, 110.0, 70.0),
            scene_with_person(40.0, 100.0, 90.0),
        ] {
            let got = det.detect(&frame);
            let want = det.detect_reference(&frame);
            assert_eq!(got.ops, want.ops);
            assert_eq!(got.detections.len(), want.detections.len());
            for (a, b) in got.detections.iter().zip(&want.detections) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.bbox, b.bbox);
            }
        }
    }

    #[test]
    fn rejects_bad_shrink() {
        let cfg = AcfDetectorConfig {
            shrink: 5,
            ..quick_config()
        };
        assert!(AcfDetector::train(cfg).is_err());
    }

    #[test]
    fn algorithm_id_and_determinism() {
        let det = AcfDetector::train(quick_config()).unwrap();
        assert_eq!(det.algorithm(), AlgorithmId::Acf);
        let img = scene_with_person(70.0, 100.0, 60.0);
        assert_eq!(det.detect(&img), det.detect(&img));
        assert!(det.num_stumps() > 0);
    }
}
