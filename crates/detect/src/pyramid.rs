//! Scale pyramids for sliding-window detection.
//!
//! Detecting a person of height `H` with a fixed `h`-pixel window means
//! searching the image resized by `s = h / H`. Each detector declares its
//! scale schedule; the schedule is where the algorithms' genuine cost and
//! coverage differences live (e.g. ACF never upsamples, so people smaller
//! than its window are invisible to it).

/// The detection window shared by all four detectors: 16×48 pixels,
/// matching the ~0.3 width/height aspect of a standing person.
pub const WINDOW_W: usize = 16;
/// Window height in pixels.
pub const WINDOW_H: usize = 48;

/// A geometric scale schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSchedule {
    /// Smallest image resize factor (detects the largest people).
    pub min_scale: f64,
    /// Largest resize factor (> 1 upsamples to catch small people).
    pub max_scale: f64,
    /// Geometric ratio between consecutive scales (> 1).
    pub ratio: f64,
}

impl ScaleSchedule {
    /// Enumerates the scales, smallest to largest.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is degenerate (`ratio ≤ 1`, inverted bounds,
    /// or non-positive scales).
    pub fn scales(&self) -> Vec<f64> {
        assert!(self.ratio > 1.0, "ratio must exceed 1");
        assert!(
            self.min_scale > 0.0 && self.max_scale >= self.min_scale,
            "invalid scale bounds"
        );
        let mut out = Vec::new();
        let mut s = self.min_scale;
        while s <= self.max_scale * 1.0001 {
            out.push(s);
            s *= self.ratio;
        }
        out
    }

    /// Restricts the schedule to scales at which a `w × h` image still
    /// contains at least one detection window.
    pub fn usable_scales(&self, w: usize, h: usize) -> Vec<f64> {
        let scales = self.scales();
        Self::usable_from(&scales, w, h).collect()
    }

    /// Filters a precomputed scale list (from [`ScaleSchedule::scales`]) to
    /// the scales at which a `w × h` image still contains at least one
    /// detection window. Detectors cache the enumerated list at training
    /// time and filter it per frame through this, instead of re-deriving
    /// (and re-validating) the geometric schedule on every `detect` call.
    pub fn usable_from(scales: &[f64], w: usize, h: usize) -> impl Iterator<Item = f64> + '_ {
        scales.iter().copied().filter(move |&s| {
            (w as f64 * s) as usize >= WINDOW_W && (h as f64 * s) as usize >= WINDOW_H
        })
    }

    /// Pixel dimensions of the pyramid level at `scale` for a `w × h`
    /// image: `((w·scale).round(), (h·scale).round())` — the exact
    /// expression every detector historically inlined per scale, hoisted
    /// here so the scan loops and the precompute-only bench kernels agree
    /// on level geometry by construction.
    pub fn level_dims(scale: f64, w: usize, h: usize) -> (usize, usize) {
        (
            (w as f64 * scale).round() as usize,
            (h as f64 * scale).round() as usize,
        )
    }

    /// Range of detectable person heights (pixels in the original image),
    /// assuming the window matches the person height exactly.
    pub fn detectable_heights(&self) -> (f64, f64) {
        (
            WINDOW_H as f64 / self.max_scale,
            WINDOW_H as f64 / self.min_scale,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_geometric_and_bounded() {
        let sched = ScaleSchedule {
            min_scale: 0.25,
            max_scale: 1.0,
            ratio: 2.0,
        };
        assert_eq!(sched.scales(), vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn usable_scales_drop_tiny_images() {
        let sched = ScaleSchedule {
            min_scale: 0.1,
            max_scale: 1.0,
            ratio: 2.0,
        };
        // A 100×100 image at scale 0.1 is 10×10: smaller than the window.
        let usable = sched.usable_scales(100, 100);
        assert!(usable.iter().all(|&s| s * 100.0 >= WINDOW_H as f64));
        assert!(!usable.contains(&0.1));
    }

    #[test]
    fn detectable_heights_inverse_of_scales() {
        let sched = ScaleSchedule {
            min_scale: 0.5,
            max_scale: 1.5,
            ratio: 1.3,
        };
        let (min_h, max_h) = sched.detectable_heights();
        assert!((min_h - 32.0).abs() < 1e-9);
        assert!((max_h - 96.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn degenerate_ratio_panics() {
        ScaleSchedule {
            min_scale: 0.5,
            max_scale: 1.0,
            ratio: 1.0,
        }
        .scales();
    }

    #[test]
    fn level_dims_round_like_the_scan_loops() {
        assert_eq!(ScaleSchedule::level_dims(0.5, 321, 240), (161, 120));
        assert_eq!(ScaleSchedule::level_dims(1.0, 160, 120), (160, 120));
        assert_eq!(ScaleSchedule::level_dims(1.25, 160, 120), (200, 150));
    }

    #[test]
    fn window_aspect_matches_person() {
        let aspect = WINDOW_W as f64 / WINDOW_H as f64;
        assert!((0.25..0.4).contains(&aspect), "aspect {aspect}");
    }
}
