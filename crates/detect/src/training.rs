//! Synthetic training windows.
//!
//! The paper's detectors come pre-trained (OpenCV's INRIA-trained HOG, the
//! authors' ACF/C4/LSVM models). Our detectors are trained here, at bank
//! construction time, on windows synthesized with the *same sprites* the
//! scene renderer uses — so train and test distributions relate the way
//! INRIA relates to the evaluation videos.
//!
//! The crucial asymmetry (DESIGN.md §3): the **clean** regime contains no
//! furniture, so HOG — trained clean, like its INRIA original — never sees
//! the person-shaped clutter of dataset #2; ACF's training includes
//! furniture negatives, buying its clutter robustness.

use crate::pyramid::{WINDOW_H, WINDOW_W};
use eecs_vision::draw;
use eecs_vision::image::RgbImage;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which negative-mining regime to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegativeRegime {
    /// Backgrounds and partial bodies only (the INRIA analog).
    Clean,
    /// Additionally includes furniture-panel negatives (the ACF analog).
    WithClutter,
}

/// Configuration for synthesizing a training set.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingConfig {
    /// Number of positive windows.
    pub positives: usize,
    /// Number of negative windows.
    pub negatives: usize,
    /// Negative-mining regime.
    pub regime: NegativeRegime,
    /// RNG seed (deterministic training sets).
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            positives: 250,
            negatives: 350,
            regime: NegativeRegime::Clean,
            seed: 7,
        }
    }
}

/// A synthesized training set of window images.
#[derive(Debug, Clone)]
pub struct TrainingWindows {
    /// Positive (person) windows.
    pub positives: Vec<RgbImage>,
    /// Negative (background/clutter) windows.
    pub negatives: Vec<RgbImage>,
}

/// Synthesizes a training set per the config.
pub fn synthesize(config: &TrainingConfig) -> TrainingWindows {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let positives = (0..config.positives)
        .map(|_| positive_window(&mut rng))
        .collect();
    let negatives = (0..config.negatives)
        .map(|i| {
            let clutter = config.regime == NegativeRegime::WithClutter && i % 3 == 0;
            negative_window(&mut rng, clutter)
        })
        .collect();
    TrainingWindows {
        positives,
        negatives,
    }
}

/// One positive window: a person sprite (same renderer as the scene crate)
/// over a varied background with jittered placement, illumination and noise.
pub fn positive_window(rng: &mut StdRng) -> RgbImage {
    let mut img = background_window(rng);
    let jx = rng.random_range(-1.5..1.5);
    let jy = rng.random_range(-2.0..2.0);
    let shrink = rng.random_range(0.0..0.12);
    let clothing = [
        rng.random_range(0.1..1.0f32),
        rng.random_range(0.1..1.0f32),
        rng.random_range(0.1..1.0f32),
    ];
    let skin = [
        rng.random_range(0.55..0.95f32),
        rng.random_range(0.45..0.75f32),
        rng.random_range(0.35..0.60f32),
    ];
    let w = WINDOW_W as f64;
    let h = WINDOW_H as f64;
    draw::draw_human(
        &mut img,
        w * (0.08 + shrink / 2.0) + jx,
        h * (0.04 + shrink / 2.0) + jy,
        w * (0.92 - shrink / 2.0) + jx,
        h * (0.97 - shrink / 2.0) + jy,
        clothing,
        skin,
    );
    finish(&mut img, rng);
    img
}

/// One negative window: background texture, a partial body at the border,
/// or (in the clutter regime) a furniture panel.
pub fn negative_window(rng: &mut StdRng, clutter: bool) -> RgbImage {
    let mut img = background_window(rng);
    if clutter {
        // Furniture panels fill the window like a person would.
        let c1 = [
            rng.random_range(0.3..0.9f32),
            rng.random_range(0.2..0.6f32),
            rng.random_range(0.1..0.4f32),
        ];
        let c2 = [
            rng.random_range(0.05..0.3f32),
            rng.random_range(0.05..0.3f32),
            rng.random_range(0.05..0.3f32),
        ];
        draw::draw_furniture(
            &mut img,
            rng.random_range(-2.0..2.0),
            rng.random_range(-3.0..1.0),
            WINDOW_W as f64 + rng.random_range(-2.0..2.0),
            WINDOW_H as f64 + rng.random_range(-1.0..3.0),
            (c1, c2),
        );
    } else {
        match rng.random_range(0..3u32) {
            0 => {} // bare background
            1 => {
                // A partial body poking in from a border — hard negative.
                let clothing = [
                    rng.random_range(0.1..1.0f32),
                    rng.random_range(0.1..1.0f32),
                    rng.random_range(0.1..1.0f32),
                ];
                let skin = [0.8, 0.6, 0.5];
                let dx = if rng.random_bool(0.5) {
                    -(WINDOW_W as f64) * 0.65
                } else {
                    WINDOW_W as f64 * 0.65
                };
                draw::draw_human(
                    &mut img,
                    1.0 + dx,
                    2.0,
                    WINDOW_W as f64 - 1.0 + dx,
                    WINDOW_H as f64 - 1.0,
                    clothing,
                    skin,
                );
            }
            _ => {
                // A random blob — generic distractor.
                draw::fill_ellipse(
                    &mut img,
                    rng.random_range(2.0..WINDOW_W as f64 - 2.0),
                    rng.random_range(4.0..WINDOW_H as f64 - 4.0),
                    rng.random_range(2.0..6.0),
                    rng.random_range(2.0..8.0),
                    [
                        rng.random_range(0.0..1.0f32),
                        rng.random_range(0.0..1.0f32),
                        rng.random_range(0.0..1.0f32),
                    ],
                );
            }
        }
    }
    finish(&mut img, rng);
    img
}

fn background_window(rng: &mut StdRng) -> RgbImage {
    let mut img = RgbImage::new(WINDOW_W, WINDOW_H);
    let top = rng.random_range(0.35..0.75f32);
    let bot = rng.random_range(0.25..0.6f32);
    draw::vertical_gradient(
        &mut img,
        [top, top * 0.98, top * 0.94],
        [bot, bot * 0.97, bot * 0.95],
    );
    img
}

fn finish(img: &mut RgbImage, rng: &mut StdRng) {
    img.scale_brightness(rng.random_range(0.75..1.2));
    draw::add_noise(img, rng.random_range(0.01..0.04), rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_counts_match_config() {
        let tw = synthesize(&TrainingConfig {
            positives: 10,
            negatives: 15,
            regime: NegativeRegime::WithClutter,
            seed: 1,
        });
        assert_eq!(tw.positives.len(), 10);
        assert_eq!(tw.negatives.len(), 15);
    }

    #[test]
    fn windows_have_canonical_size() {
        let tw = synthesize(&TrainingConfig {
            positives: 2,
            negatives: 2,
            regime: NegativeRegime::Clean,
            seed: 2,
        });
        for img in tw.positives.iter().chain(&tw.negatives) {
            assert_eq!((img.width(), img.height()), (WINDOW_W, WINDOW_H));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TrainingConfig {
            positives: 3,
            negatives: 3,
            regime: NegativeRegime::Clean,
            seed: 3,
        };
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a.positives[0], b.positives[0]);
        assert_eq!(a.negatives[2], b.negatives[2]);
    }

    #[test]
    fn positives_differ_from_negatives_on_average() {
        // Gradient energy of positives (body edges) should exceed that of
        // bare backgrounds on average.
        let tw = synthesize(&TrainingConfig {
            positives: 20,
            negatives: 20,
            regime: NegativeRegime::Clean,
            seed: 4,
        });
        let energy = |imgs: &[RgbImage]| -> f64 {
            imgs.iter()
                .map(|i| eecs_vision::gradient::edge_energy(&i.to_gray()))
                .sum::<f64>()
                / imgs.len() as f64
        };
        assert!(energy(&tw.positives) > energy(&tw.negatives) * 1.1);
    }

    #[test]
    fn clutter_negatives_have_high_edge_energy() {
        let mut rng = StdRng::seed_from_u64(5);
        let clutter = negative_window(&mut rng, true);
        let mut rng2 = StdRng::seed_from_u64(5);
        let plain = {
            let mut img = background_window(&mut rng2);
            finish(&mut img, &mut rng2);
            img
        };
        let e = |i: &RgbImage| eecs_vision::gradient::edge_energy(&i.to_gray());
        assert!(e(&clutter) > e(&plain));
    }
}
