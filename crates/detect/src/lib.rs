//! The four human-detection algorithms of the paper, from scratch.
//!
//! Section V-A: each camera node ships HOG \[3\], ACF \[4\], C4 \[6\] and
//! LSVM \[5\]. The four detectors here are real sliding-window detectors over
//! rendered frames, with genuinely different algorithmic structure so that
//! their accuracy orderings differ across environments the way the paper's
//! do (Tables II–IV):
//!
//! * [`hog_detector`] — Dalal–Triggs: HOG pyramid + linear SVM, trained on
//!   *clean* scenes (the INRIA analog). High precision on clean data;
//!   fooled by person-shaped furniture.
//! * [`acf_detector`] — Dollár: aggregated channel features + AdaBoost,
//!   trained *with* clutter negatives, no upsampling octaves — an order of
//!   magnitude cheaper, robust in clutter, blind to small people.
//! * [`c4_detector`] — Wu et al.: CENTRIST-style census-transform contour
//!   features at a fixed internal resolution (cost nearly independent of
//!   input resolution).
//! * [`lsvm_detector`] — Felzenszwalb DPM: root filter + deformable part
//!   filters with displacement search. Most accurate, most expensive.
//!
//! Shared infrastructure: [`detection`] (boxes, IoU), [`nms`] (non-maximum
//! suppression), [`pyramid`] (scale schedules), [`training`] (synthetic
//! training windows), [`eval`] (precision/recall/f-score against ground
//! truth, threshold selection — Section VI-A), [`probability`] (score →
//! detection probability calibration, footnote 5), and [`bank`] (the
//! trained set of all four detectors a camera node carries).

pub mod acf_detector;
pub mod bank;
pub mod c4_detector;
pub mod detection;
pub mod eval;
pub mod frame_features;
pub mod health;
pub mod hog_detector;
pub mod kernels;
pub mod lsvm_detector;
pub mod nms;
pub mod probability;
pub mod pyramid;
pub mod training;

pub use bank::DetectorBank;
pub use detection::{AlgorithmId, BBox, Detection, DetectionOutput};
pub use eval::{EvalConfig, EvalCounts, ThresholdSweep};
pub use frame_features::FrameFeatures;
pub use health::{DetectorHealth, HealthIssue, HealthPolicy};
pub use kernels::{CensusCodePlane, DetectScratch};
pub use nms::{nms_in_place, non_maximum_suppression};

use eecs_vision::image::RgbImage;
use std::error::Error;
use std::fmt;

/// Errors produced while building or running detectors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DetectError {
    /// Detector training failed.
    Training(String),
    /// An argument was out of the valid domain.
    InvalidArgument(String),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::Training(msg) => write!(f, "training failed: {msg}"),
            DetectError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for DetectError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DetectError>;

/// A runnable human detector (one of the paper's four algorithms).
///
/// Implementations return **all** candidate detections above their internal
/// floor together with raw scores; the cut-off threshold `d_t` is applied by
/// the evaluation layer (Section VI-A: the threshold maximizing f-score is
/// chosen per algorithm and training item).
pub trait Detector: Send + Sync {
    /// Which algorithm this is.
    fn algorithm(&self) -> AlgorithmId;

    /// Runs detection on a frame.
    fn detect(&self, frame: &RgbImage) -> DetectionOutput;

    /// Runs detection on a frame, sharing per-frame intermediates
    /// (grayscale conversion, pyramid levels, feature channels) with other
    /// detectors through `cache`. `cache` must have been built over
    /// `frame`.
    ///
    /// The output — detections *and* the `ops` counter — is identical to
    /// [`Detector::detect`]; the cache only removes redundant host
    /// computation, never modeled work (the simulated cameras run each
    /// algorithm in isolation, so `ops`-based energy charges must not
    /// shrink when features are shared).
    fn detect_with_cache(&self, frame: &RgbImage, cache: &FrameFeatures<'_>) -> DetectionOutput {
        let _ = cache;
        self.detect(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(DetectError::Training("svm".into())
            .to_string()
            .contains("svm"));
    }
}
