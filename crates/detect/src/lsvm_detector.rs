//! The LSVM deformable-part-model detector (Felzenszwalb et al., \[5\]).
//!
//! A root HOG filter plus four part filters (head, shoulders, hips, legs)
//! with quadratic deformation costs and displacement search — the
//! "discriminatively trained part based models" the paper installs on each
//! phone. The part search is why LSVM is both the most accurate algorithm
//! in Tables II–IV **and** the most expensive (6.2 s/frame on the phones):
//! every window that passes the root gate pays `parts × displacements`
//! extra filter evaluations.

use crate::detection::{AlgorithmId, BBox, Detection, DetectionOutput};
use crate::frame_features::FrameFeatures;
use crate::hog_detector::descriptor_examples;
use crate::nms::{nms_in_place, non_maximum_suppression};
use crate::pyramid::{ScaleSchedule, WINDOW_H, WINDOW_W};
use crate::training::{synthesize, NegativeRegime, TrainingConfig, TrainingWindows};
use crate::{DetectError, Detector, Result};
use eecs_learn::svm::{LinearSvm, SvmConfig};
use eecs_learn::Example;
use eecs_vision::hog::{HogCellGrid, HogConfig};
use eecs_vision::image::RgbImage;

/// A part filter: an anchor (in cells, relative to the window origin) and a
/// linear filter over a 2×2-cell HOG sub-descriptor.
#[derive(Debug, Clone)]
struct Part {
    anchor_cx: usize,
    anchor_cy: usize,
    svm: LinearSvm,
}

/// Part size in cells (2×2 cells = one HOG block).
const PART_CELLS: usize = 2;
/// Displacement search radius in cells.
const DISP: isize = 1;

/// LSVM detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LsvmDetectorConfig {
    /// HOG layout shared by root and parts.
    pub hog: HogConfig,
    /// Scale schedule — finer than HOG's for higher recall.
    pub scales: ScaleSchedule,
    /// Window stride in cells.
    pub stride_cells: usize,
    /// Root score gate below which parts are not evaluated.
    pub part_gate: f64,
    /// Quadratic deformation cost weight.
    pub deformation: f64,
    /// Relative weight of the summed part scores.
    pub part_weight: f64,
    /// Candidates below this combined score are dropped before NMS.
    pub keep_floor: f64,
    /// NMS IoU threshold.
    pub nms_iou: f64,
    /// SVM hyper-parameters (root and parts).
    pub svm: SvmConfig,
    /// Training-set synthesis — the robust regime (clean *and* clutter),
    /// which is what makes LSVM accurate across environments.
    pub training: TrainingConfig,
}

impl Default for LsvmDetectorConfig {
    fn default() -> Self {
        LsvmDetectorConfig {
            hog: HogConfig {
                cell_size: 4,
                block_cells: 2,
                bins: 9,
            },
            scales: ScaleSchedule {
                min_scale: 0.08,
                max_scale: 1.45,
                ratio: 1.22,
            },
            stride_cells: 1,
            part_gate: -0.6,
            deformation: 0.25,
            part_weight: 0.35,
            keep_floor: -0.3,
            nms_iou: 0.35,
            svm: SvmConfig {
                lambda: 1e-4,
                epochs: 60,
                seed: 61,
            },
            training: TrainingConfig {
                positives: 400,
                negatives: 600,
                regime: NegativeRegime::WithClutter,
                seed: 71,
            },
        }
    }
}

/// A trained deformable-part-model detector.
#[derive(Debug, Clone)]
pub struct LsvmDetector {
    config: LsvmDetectorConfig,
    root: LinearSvm,
    parts: Vec<Part>,
    /// The enumerated scale schedule, cached at training time so `detect`
    /// only filters it per frame instead of re-deriving it.
    scale_levels: Vec<f64>,
}

impl LsvmDetector {
    /// Trains root and part filters on synthesized windows.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Training`] if any filter fails to train.
    pub fn train(config: LsvmDetectorConfig) -> Result<LsvmDetector> {
        let windows = synthesize(&config.training);
        let root_examples = descriptor_examples(&windows, config.hog)?;
        let root = LinearSvm::train(&root_examples, &config.svm)
            .map_err(|e| DetectError::Training(format!("lsvm root: {e}")))?;

        // Anatomical anchors on the 4×12-cell window: head, shoulders,
        // hips, legs.
        let cells_w = WINDOW_W / config.hog.cell_size;
        let cells_h = WINDOW_H / config.hog.cell_size;
        let anchors = [
            (cells_w / 2 - 1, 0),                // head
            (0, cells_h / 4),                    // left shoulder/arm
            (cells_w - PART_CELLS, cells_h / 4), // right shoulder/arm
            (cells_w / 2 - 1, cells_h * 2 / 3),  // legs
        ];
        let mut parts = Vec::with_capacity(anchors.len());
        for &(ax, ay) in &anchors {
            let examples = part_examples(&windows, config.hog, ax, ay)?;
            let svm = LinearSvm::train(&examples, &config.svm)
                .map_err(|e| DetectError::Training(format!("lsvm part ({ax},{ay}): {e}")))?;
            parts.push(Part {
                anchor_cx: ax,
                anchor_cy: ay,
                svm,
            });
        }
        let scale_levels = config.scales.scales();
        Ok(LsvmDetector {
            config,
            root,
            parts,
            scale_levels,
        })
    }

    /// Builds a detector from already-trained filters: `part_filters`
    /// attach to the four anatomical anchors in training order (head, left
    /// shoulder, right shoulder, legs). The equivalence battery uses this
    /// to probe random filter banks without paying for training.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidArgument`] if the HOG layout cannot
    /// tile the window, the part count is not four, or any filter has the
    /// wrong dimension.
    pub fn from_filters(
        config: LsvmDetectorConfig,
        root: LinearSvm,
        part_filters: Vec<LinearSvm>,
    ) -> Result<LsvmDetector> {
        let b = config.hog.block_cells;
        let cell = config.hog.cell_size;
        if cell == 0 || b == 0 {
            return Err(DetectError::InvalidArgument(
                "hog cell/block size must be positive".into(),
            ));
        }
        let cells_w = WINDOW_W / cell;
        let cells_h = WINDOW_H / cell;
        if cells_w < b || cells_h < b || PART_CELLS < b {
            return Err(DetectError::InvalidArgument(format!(
                "window of {cells_w}×{cells_h} cells (parts {PART_CELLS}×{PART_CELLS}) \
                 cannot hold a {b}-cell block"
            )));
        }
        let block_len = b * b * config.hog.bins;
        let root_dim = (cells_w - b + 1) * (cells_h - b + 1) * block_len;
        if root.weights().len() != root_dim {
            return Err(DetectError::InvalidArgument(format!(
                "lsvm root weight dim {} != {root_dim}",
                root.weights().len()
            )));
        }
        let part_dim = (PART_CELLS - b + 1) * (PART_CELLS - b + 1) * block_len;
        let anchors = [
            (cells_w / 2 - 1, 0),
            (0, cells_h / 4),
            (cells_w - PART_CELLS, cells_h / 4),
            (cells_w / 2 - 1, cells_h * 2 / 3),
        ];
        if part_filters.len() != anchors.len() {
            return Err(DetectError::InvalidArgument(format!(
                "expected {} part filters, got {}",
                anchors.len(),
                part_filters.len()
            )));
        }
        let mut parts = Vec::with_capacity(anchors.len());
        for (&(ax, ay), svm) in anchors.iter().zip(part_filters) {
            if svm.weights().len() != part_dim {
                return Err(DetectError::InvalidArgument(format!(
                    "lsvm part weight dim {} != {part_dim}",
                    svm.weights().len()
                )));
            }
            parts.push(Part {
                anchor_cx: ax,
                anchor_cy: ay,
                svm,
            });
        }
        let scale_levels = config.scales.scales();
        Ok(LsvmDetector {
            config,
            root,
            parts,
            scale_levels,
        })
    }

    /// Number of part filters.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &LsvmDetectorConfig {
        &self.config
    }

    /// Part contribution at a window position: for each part, the best
    /// displaced response minus deformation cost. Returns `(score, ops)`.
    ///
    /// Pre-optimization path, kept verbatim as the oracle for
    /// [`LsvmDetector::part_score_blocks`].
    fn part_score(&self, grid: &HogCellGrid, cx0: usize, cy0: usize) -> (f64, u64) {
        let mut total = 0.0;
        let mut ops = 0u64;
        for part in &self.parts {
            let mut best = f64::NEG_INFINITY;
            for dy in -DISP..=DISP {
                for dx in -DISP..=DISP {
                    let px = cx0 as isize + part.anchor_cx as isize + dx;
                    let py = cy0 as isize + part.anchor_cy as isize + dy;
                    if px < 0 || py < 0 {
                        continue;
                    }
                    let (px, py) = (px as usize, py as usize);
                    let Ok(desc) = grid.window_descriptor(px, py, PART_CELLS, PART_CELLS) else {
                        continue;
                    };
                    ops += desc.len() as u64;
                    let deform = self.config.deformation * (dx * dx + dy * dy) as f64;
                    let s = part.svm.score(&desc) - deform;
                    if s > best {
                        best = s;
                    }
                }
            }
            if best.is_finite() {
                total += best;
            }
        }
        (total / self.parts.len() as f64, ops)
    }

    /// [`LsvmDetector::part_score`] over the precomputed block grid: the
    /// same displacement search without materializing part descriptors.
    /// `part_len` is the part-descriptor length (`window_len` of a
    /// `PART_CELLS × PART_CELLS` window), hoisted out by the caller.
    fn part_score_blocks(
        &self,
        blocks: &eecs_vision::hog::HogBlockGrid,
        cx0: usize,
        cy0: usize,
        part_len: u64,
    ) -> (f64, u64) {
        let mut total = 0.0;
        let mut ops = 0u64;
        for part in &self.parts {
            let mut best = f64::NEG_INFINITY;
            for dy in -DISP..=DISP {
                for dx in -DISP..=DISP {
                    let px = cx0 as isize + part.anchor_cx as isize + dx;
                    let py = cy0 as isize + part.anchor_cy as isize + dy;
                    if px < 0 || py < 0 {
                        continue;
                    }
                    let (px, py) = (px as usize, py as usize);
                    let Some(dot) =
                        blocks.window_score(px, py, PART_CELLS, PART_CELLS, part.svm.weights())
                    else {
                        continue;
                    };
                    ops += part_len;
                    let deform = self.config.deformation * (dx * dx + dy * dy) as f64;
                    let s = (dot + part.svm.bias()) - deform;
                    if s > best {
                        best = s;
                    }
                }
            }
            if best.is_finite() {
                total += best;
            }
        }
        (total / self.parts.len() as f64, ops)
    }

    /// The pre-optimization detection loop, kept verbatim (fresh cache,
    /// per-window descriptor assembly, allocating NMS) as the equivalence
    /// oracle for `detect`: same detections, same scores, same `ops`.
    pub fn detect_reference(&self, frame: &RgbImage) -> DetectionOutput {
        let cache = FrameFeatures::new(frame);
        let cell = self.config.hog.cell_size;
        let cells_w = WINDOW_W / cell;
        let cells_h = WINDOW_H / cell;
        let mut ops = (frame.width() * frame.height()) as u64;
        let mut candidates = Vec::new();

        for scale in ScaleSchedule::usable_from(&self.scale_levels, frame.width(), frame.height()) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, frame.width(), frame.height());
            if cache.resized_gray(sw, sh).is_err() {
                continue;
            }
            ops += (sw * sh) as u64 * 3;
            let Ok(grid) = cache.hog_grid(sw, sh, self.config.hog) else {
                continue;
            };
            if grid.cells_x() < cells_w || grid.cells_y() < cells_h {
                continue;
            }
            let stride = self.config.stride_cells.max(1);
            let mut cy0 = 0;
            while cy0 + cells_h <= grid.cells_y() {
                let mut cx0 = 0;
                while cx0 + cells_w <= grid.cells_x() {
                    if let Ok(desc) = grid.window_descriptor(cx0, cy0, cells_w, cells_h) {
                        ops += desc.len() as u64;
                        let root_score = self.root.score(&desc);
                        if root_score >= self.config.part_gate {
                            let (parts, part_ops) = self.part_score(&grid, cx0, cy0);
                            ops += part_ops;
                            let score = root_score + self.config.part_weight * parts;
                            if score >= self.config.keep_floor {
                                let x0 = (cx0 * cell) as f64 / scale;
                                let y0 = (cy0 * cell) as f64 / scale;
                                candidates.push(Detection {
                                    bbox: BBox::new(
                                        x0,
                                        y0,
                                        x0 + WINDOW_W as f64 / scale,
                                        y0 + WINDOW_H as f64 / scale,
                                    ),
                                    score,
                                });
                            }
                        }
                    }
                    cx0 += stride;
                }
                cy0 += stride;
            }
        }
        DetectionOutput {
            detections: non_maximum_suppression(candidates, self.config.nms_iou),
            ops,
        }
    }
}

/// Builds ±1 examples for a part anchored at `(ax, ay)` cells: positives are
/// sub-patches of person windows, negatives sub-patches of negatives.
fn part_examples(
    windows: &TrainingWindows,
    hog: HogConfig,
    ax: usize,
    ay: usize,
) -> Result<Vec<Example>> {
    let mut out = Vec::new();
    for (imgs, label) in [(&windows.positives, 1.0), (&windows.negatives, -1.0)] {
        for img in imgs.iter() {
            let grid = HogCellGrid::compute(&img.to_gray(), hog)
                .map_err(|e| DetectError::Training(format!("part grid: {e}")))?;
            let desc = grid
                .window_descriptor(
                    ax.min(grid.cells_x().saturating_sub(PART_CELLS)),
                    ay.min(grid.cells_y().saturating_sub(PART_CELLS)),
                    PART_CELLS,
                    PART_CELLS,
                )
                .map_err(|e| DetectError::Training(format!("part descriptor: {e}")))?;
            out.push(Example {
                features: desc,
                label,
            });
        }
    }
    Ok(out)
}

impl Detector for LsvmDetector {
    fn algorithm(&self) -> AlgorithmId {
        AlgorithmId::Lsvm
    }

    fn detect(&self, frame: &RgbImage) -> DetectionOutput {
        self.detect_with_cache(frame, &FrameFeatures::new(frame))
    }

    fn detect_with_cache(&self, frame: &RgbImage, cache: &FrameFeatures<'_>) -> DetectionOutput {
        let cell = self.config.hog.cell_size;
        let cells_w = WINDOW_W / cell;
        let cells_h = WINDOW_H / cell;
        let mut ops = (frame.width() * frame.height()) as u64;
        let mut candidates = Vec::new();

        for scale in ScaleSchedule::usable_from(&self.scale_levels, frame.width(), frame.height()) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, frame.width(), frame.height());
            // Cache stages mirror the direct resize-then-grid computation
            // so the ops increment lands between the same failure points.
            if cache.resized_gray(sw, sh).is_err() {
                continue;
            }
            ops += (sw * sh) as u64 * 3;
            let Ok(grid) = cache.hog_grid(sw, sh, self.config.hog) else {
                continue;
            };
            if grid.cells_x() < cells_w || grid.cells_y() < cells_h {
                continue;
            }
            // Root and parts both score against the per-level normalized
            // block grid: same values, same accumulation order as the
            // assembled descriptors, so scores are bit-identical.
            let Ok(blocks) = cache.hog_blocks(sw, sh, self.config.hog) else {
                continue;
            };
            let Some(root_len) = blocks.window_len(cells_w, cells_h) else {
                continue;
            };
            let part_len = blocks
                .window_len(PART_CELLS, PART_CELLS)
                .unwrap_or_default() as u64;
            let stride = self.config.stride_cells.max(1);
            let mut cy0 = 0;
            while cy0 + cells_h <= grid.cells_y() {
                let mut cx0 = 0;
                while cx0 + cells_w <= grid.cells_x() {
                    if let Some(dot) =
                        blocks.window_score(cx0, cy0, cells_w, cells_h, self.root.weights())
                    {
                        ops += root_len as u64;
                        let root_score = dot + self.root.bias();
                        // Part cascade: only promising roots pay for parts.
                        if root_score >= self.config.part_gate {
                            let (parts, part_ops) =
                                self.part_score_blocks(&blocks, cx0, cy0, part_len);
                            ops += part_ops;
                            let score = root_score + self.config.part_weight * parts;
                            if score >= self.config.keep_floor {
                                let x0 = (cx0 * cell) as f64 / scale;
                                let y0 = (cy0 * cell) as f64 / scale;
                                candidates.push(Detection {
                                    bbox: BBox::new(
                                        x0,
                                        y0,
                                        x0 + WINDOW_W as f64 / scale,
                                        y0 + WINDOW_H as f64 / scale,
                                    ),
                                    score,
                                });
                            }
                        }
                    }
                    cx0 += stride;
                }
                cy0 += stride;
            }
        }
        nms_in_place(&mut candidates, self.config.nms_iou);
        DetectionOutput {
            detections: candidates,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_vision::draw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> LsvmDetectorConfig {
        LsvmDetectorConfig {
            training: TrainingConfig {
                positives: 80,
                negatives: 140,
                regime: NegativeRegime::WithClutter,
                seed: 5,
            },
            svm: SvmConfig {
                epochs: 20,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn scene_with_person(px: f64, py: f64, h: f64) -> RgbImage {
        let mut img = RgbImage::new(160, 120);
        draw::vertical_gradient(&mut img, [0.6, 0.6, 0.58], [0.35, 0.35, 0.33]);
        let w = h / 3.0;
        draw::draw_human(
            &mut img,
            px - w / 2.0,
            py - h,
            px + w / 2.0,
            py,
            [0.7, 0.6, 0.1],
            [0.85, 0.65, 0.5],
        );
        let mut rng = StdRng::seed_from_u64(11);
        draw::add_noise(&mut img, 0.02, &mut rng);
        img
    }

    #[test]
    fn detects_a_person() {
        let det = LsvmDetector::train(quick_config()).unwrap();
        let img = scene_with_person(80.0, 100.0, 60.0);
        let out = det.detect(&img);
        assert!(!out.detections.is_empty());
        let (cx, _) = out.detections[0].bbox.center();
        assert!((cx - 80.0).abs() < 15.0, "best at x={cx}");
    }

    #[test]
    fn has_four_parts() {
        let det = LsvmDetector::train(quick_config()).unwrap();
        assert_eq!(det.num_parts(), 4);
    }

    #[test]
    fn more_expensive_than_root_only_hog() {
        let lsvm = LsvmDetector::train(quick_config()).unwrap();
        let hog =
            crate::hog_detector::HogSvmDetector::train(crate::hog_detector::HogDetectorConfig {
                training: TrainingConfig {
                    positives: 60,
                    negatives: 90,
                    regime: NegativeRegime::Clean,
                    seed: 6,
                },
                ..Default::default()
            })
            .unwrap();
        let img = scene_with_person(80.0, 100.0, 60.0);
        assert!(
            lsvm.detect(&img).ops > hog.detect(&img).ops,
            "LSVM should out-cost HOG"
        );
    }

    #[test]
    fn part_gate_reduces_cost() {
        let open = LsvmDetector::train(LsvmDetectorConfig {
            part_gate: f64::NEG_INFINITY,
            ..quick_config()
        })
        .unwrap();
        let gated = LsvmDetector::train(quick_config()).unwrap();
        let img = scene_with_person(80.0, 100.0, 60.0);
        assert!(gated.detect(&img).ops < open.detect(&img).ops);
    }

    #[test]
    fn detect_matches_reference_bitwise() {
        let det = LsvmDetector::train(quick_config()).unwrap();
        for frame in [
            scene_with_person(80.0, 100.0, 60.0),
            scene_with_person(40.0, 70.0, 35.0),
        ] {
            let got = det.detect(&frame);
            let want = det.detect_reference(&frame);
            assert_eq!(got.ops, want.ops);
            assert_eq!(got.detections.len(), want.detections.len());
            for (a, b) in got.detections.iter().zip(&want.detections) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.bbox, b.bbox);
            }
        }
    }

    #[test]
    fn from_filters_validates_dimensions() {
        let cfg = quick_config();
        let err = LsvmDetector::from_filters(
            cfg.clone(),
            LinearSvm::from_parts(vec![0.0; 3], 0.0),
            vec![],
        );
        assert!(matches!(err, Err(DetectError::InvalidArgument(_))));
        // Correct root dim (4×12 cells, 2-cell blocks, 9 bins) but missing
        // part filters must still be rejected.
        let root_dim = 3 * 11 * 2 * 2 * 9;
        let err = LsvmDetector::from_filters(
            cfg,
            LinearSvm::from_parts(vec![0.0; root_dim], 0.0),
            vec![LinearSvm::from_parts(vec![0.0; 36], 0.0)],
        );
        assert!(matches!(err, Err(DetectError::InvalidArgument(_))));
    }

    #[test]
    fn algorithm_id_and_determinism() {
        let det = LsvmDetector::train(quick_config()).unwrap();
        assert_eq!(det.algorithm(), AlgorithmId::Lsvm);
        let img = scene_with_person(60.0, 90.0, 50.0);
        assert_eq!(det.detect(&img), det.detect(&img));
    }
}
