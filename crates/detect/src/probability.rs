//! Score → detection-probability calibration.
//!
//! Footnote 5 of the paper: "Object detection scores can be converted into
//! detection probabilities via an offline training process." On the
//! training segment we match detections against ground truth, label each
//! detection true/false, and fit a Platt sigmoid. At run time, `P_ij` — the
//! probability that detected area `R_ij` really is a person — feeds the
//! multi-camera fusion of Eq. 6.

use crate::detection::Detection;
use crate::eval::{gt_bbox, EvalConfig};
use crate::{DetectError, Result};
use eecs_learn::calibrate::PlattScaler;
use eecs_scene::ground_truth::GtBox;

/// A fitted score-to-probability map for one (algorithm, environment) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreCalibration {
    scaler: PlattScaler,
}

impl ScoreCalibration {
    /// Fits calibration from per-frame `(detections, ground truth)` pairs of
    /// the training segment.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Training`] when there are no detections or
    /// they are all of one class (all true or all false).
    pub fn fit(
        frames: &[(Vec<Detection>, Vec<GtBox>)],
        config: &EvalConfig,
    ) -> Result<ScoreCalibration> {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for (dets, gt) in frames {
            let mut sorted: Vec<&Detection> = dets.iter().collect();
            sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
            let required: Vec<&GtBox> = gt
                .iter()
                .filter(|g| g.visibility >= config.min_visibility)
                .collect();
            let mut claimed = vec![false; required.len()];
            for det in sorted {
                let mut matched = false;
                for (i, g) in required.iter().enumerate() {
                    if !claimed[i] && det.bbox.iou(&gt_bbox(g)) >= config.iou_threshold {
                        claimed[i] = true;
                        matched = true;
                        break;
                    }
                }
                scores.push(det.score);
                labels.push(matched);
            }
        }
        let scaler = PlattScaler::fit(&scores, &labels)
            .map_err(|e| DetectError::Training(format!("calibration: {e}")))?;
        Ok(ScoreCalibration { scaler })
    }

    /// Builds a calibration from explicit sigmoid parameters (used when a
    /// controller ships calibration constants to a camera).
    pub fn from_parts(a: f64, b: f64) -> ScoreCalibration {
        ScoreCalibration {
            scaler: PlattScaler::from_parts(a, b),
        }
    }

    /// The detection probability `P_ij ∈ (0, 1)` for a raw score.
    pub fn probability(&self, score: f64) -> f64 {
        self.scaler.probability(score)
    }

    /// Sigmoid parameters `(a, b)`.
    pub fn parts(&self) -> (f64, f64) {
        (self.scaler.a(), self.scaler.b())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::BBox;
    use eecs_geometry::point::Point2;

    fn gt(x0: f64) -> GtBox {
        GtBox {
            human_id: 0,
            x0,
            y0: 10.0,
            x1: x0 + 20.0,
            y1: 60.0,
            visibility: 1.0,
            ground: Point2::new(0.0, 0.0),
        }
    }

    fn det(x0: f64, score: f64) -> Detection {
        Detection {
            bbox: BBox::new(x0, 10.0, x0 + 20.0, 60.0),
            score,
        }
    }

    fn training_frames() -> Vec<(Vec<Detection>, Vec<GtBox>)> {
        // True detections score ~2, false ones ~0.2.
        (0..10)
            .map(|i| {
                let jitter = i as f64 * 0.01;
                (
                    vec![det(10.0, 2.0 + jitter), det(200.0, 0.2 + jitter)],
                    vec![gt(10.0)],
                )
            })
            .collect()
    }

    #[test]
    fn calibration_orders_probabilities() {
        let cal = ScoreCalibration::fit(&training_frames(), &EvalConfig::default()).unwrap();
        assert!(cal.probability(2.0) > cal.probability(0.2));
        assert!(cal.probability(2.0) > 0.5);
        assert!(cal.probability(0.2) < 0.5);
    }

    #[test]
    fn probabilities_in_open_unit_interval() {
        let cal = ScoreCalibration::fit(&training_frames(), &EvalConfig::default()).unwrap();
        for s in [-10.0, 0.0, 10.0] {
            let p = cal.probability(s);
            assert!(p > 0.0 && p < 1.0);
        }
    }

    #[test]
    fn degenerate_labels_rejected() {
        // All detections true → Platt cannot fit.
        let frames = vec![(vec![det(10.0, 1.0)], vec![gt(10.0)])];
        assert!(ScoreCalibration::fit(&frames, &EvalConfig::default()).is_err());
    }

    #[test]
    fn from_parts_roundtrip() {
        let cal = ScoreCalibration::from_parts(1.5, -0.5);
        assert_eq!(cal.parts(), (1.5, -0.5));
    }
}
