//! Detection evaluation: precision, recall, f-score, threshold selection.
//!
//! Section VI-A of the paper: detections below a cut-off score `d_t` are
//! discarded; for each (algorithm, training segment) pair the threshold
//! maximizing f-score is chosen and then reused on the test segment.

use crate::detection::{BBox, Detection};
use eecs_scene::ground_truth::GtBox;

/// Matching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalConfig {
    /// Minimum IoU for a detection to claim a ground-truth box.
    pub iou_threshold: f64,
    /// Ground-truth boxes with visibility below this are *ignore regions*:
    /// matching them is neither rewarded nor punished (standard practice
    /// for heavily occluded people).
    pub min_visibility: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            iou_threshold: 0.5,
            min_visibility: 0.35,
        }
    }
}

/// Aggregated true/false positive/negative counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalCounts {
    /// Correct detections.
    pub tp: usize,
    /// Spurious detections.
    pub fp: usize,
    /// Missed people.
    pub fn_: usize,
}

impl EvalCounts {
    /// Adds another frame's counts.
    pub fn accumulate(&mut self, other: EvalCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was detected.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when nothing was there.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// The f-score `2·P·R / (P + R)` used throughout the paper.
    pub fn f_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Converts a ground-truth box to a detection-space [`BBox`].
pub fn gt_bbox(gt: &GtBox) -> BBox {
    BBox::new(gt.x0, gt.y0, gt.x1, gt.y1)
}

/// Greedily matches detections (score order) to ground truth at one frame.
///
/// Ground truth below the visibility floor is an ignore region; detections
/// matching only ignore regions count as neither TP nor FP.
pub fn evaluate_frame(detections: &[&Detection], gt: &[GtBox], config: &EvalConfig) -> EvalCounts {
    let required: Vec<&GtBox> = gt
        .iter()
        .filter(|g| g.visibility >= config.min_visibility)
        .collect();
    let ignore: Vec<&GtBox> = gt
        .iter()
        .filter(|g| g.visibility < config.min_visibility)
        .collect();

    let mut sorted: Vec<&Detection> = detections.to_vec();
    sorted.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());

    let mut claimed = vec![false; required.len()];
    let mut tp = 0;
    let mut fp = 0;
    for det in sorted {
        // Best unclaimed required GT.
        let mut best: Option<(usize, f64)> = None;
        for (i, g) in required.iter().enumerate() {
            if claimed[i] {
                continue;
            }
            let iou = det.bbox.iou(&gt_bbox(g));
            if iou >= config.iou_threshold && best.map(|(_, b)| iou > b).unwrap_or(true) {
                best = Some((i, iou));
            }
        }
        if let Some((i, _)) = best {
            claimed[i] = true;
            tp += 1;
            continue;
        }
        // An ignore-region hit is discarded silently.
        let hits_ignore = ignore
            .iter()
            .any(|g| det.bbox.iou(&gt_bbox(g)) >= config.iou_threshold);
        if !hits_ignore {
            fp += 1;
        }
    }
    EvalCounts {
        tp,
        fp,
        fn_: required.len() - tp,
    }
}

/// Sweeps candidate thresholds over a set of frames and reports the best.
///
/// The paper: "we choose a threshold `d_t` which maximizes the f_score
/// value" (Section VI-A).
#[derive(Debug, Clone)]
pub struct ThresholdSweep {
    /// `(threshold, aggregated counts)` per candidate, ascending threshold.
    pub points: Vec<(f64, EvalCounts)>,
}

impl ThresholdSweep {
    /// Evaluates every candidate threshold (the distinct detection scores,
    /// subsampled to at most `max_candidates`) over per-frame
    /// `(detections, ground truth)` pairs.
    pub fn run(
        frames: &[(Vec<Detection>, Vec<GtBox>)],
        config: &EvalConfig,
        max_candidates: usize,
    ) -> ThresholdSweep {
        let mut scores: Vec<f64> = frames
            .iter()
            .flat_map(|(d, _)| d.iter().map(|x| x.score))
            .collect();
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
        scores.dedup();
        if scores.is_empty() {
            scores.push(0.0);
        }
        let stride = (scores.len() / max_candidates.max(1)).max(1);
        let candidates: Vec<f64> = scores.iter().copied().step_by(stride).collect();

        let points = candidates
            .into_iter()
            .map(|threshold| {
                let mut counts = EvalCounts::default();
                for (dets, gt) in frames {
                    let kept: Vec<&Detection> =
                        dets.iter().filter(|d| d.score >= threshold).collect();
                    counts.accumulate(evaluate_frame(&kept, gt, config));
                }
                (threshold, counts)
            })
            .collect();
        ThresholdSweep { points }
    }

    /// The threshold with the maximum f-score (ties: lowest threshold).
    pub fn best(&self) -> (f64, EvalCounts) {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| {
                a.1.f_score()
                    .partial_cmp(&b.1.f_score())
                    .unwrap()
                    .then(b.0.partial_cmp(&a.0).unwrap())
            })
            .unwrap_or((0.0, EvalCounts::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_geometry::point::Point2;

    fn gt(x0: f64, y0: f64, x1: f64, y1: f64, vis: f64) -> GtBox {
        GtBox {
            human_id: 0,
            x0,
            y0,
            x1,
            y1,
            visibility: vis,
            ground: Point2::new(0.0, 0.0),
        }
    }

    fn det(x0: f64, y0: f64, x1: f64, y1: f64, score: f64) -> Detection {
        Detection {
            bbox: BBox::new(x0, y0, x1, y1),
            score,
        }
    }

    #[test]
    fn perfect_detection_counts() {
        let gts = vec![gt(10.0, 10.0, 30.0, 60.0, 1.0)];
        let d = det(10.0, 10.0, 30.0, 60.0, 1.0);
        let counts = evaluate_frame(&[&d], &gts, &EvalConfig::default());
        assert_eq!(
            counts,
            EvalCounts {
                tp: 1,
                fp: 0,
                fn_: 0
            }
        );
        assert_eq!(counts.precision(), 1.0);
        assert_eq!(counts.recall(), 1.0);
        assert_eq!(counts.f_score(), 1.0);
    }

    #[test]
    fn miss_and_false_positive() {
        let gts = vec![gt(10.0, 10.0, 30.0, 60.0, 1.0)];
        let d = det(200.0, 10.0, 220.0, 60.0, 1.0);
        let counts = evaluate_frame(&[&d], &gts, &EvalConfig::default());
        assert_eq!(
            counts,
            EvalCounts {
                tp: 0,
                fp: 1,
                fn_: 1
            }
        );
        assert_eq!(counts.f_score(), 0.0);
    }

    #[test]
    fn double_detection_counts_one_fp() {
        let gts = vec![gt(10.0, 10.0, 30.0, 60.0, 1.0)];
        let d1 = det(10.0, 10.0, 30.0, 60.0, 1.0);
        let d2 = det(11.0, 11.0, 31.0, 61.0, 0.9);
        let counts = evaluate_frame(&[&d1, &d2], &gts, &EvalConfig::default());
        assert_eq!(
            counts,
            EvalCounts {
                tp: 1,
                fp: 1,
                fn_: 0
            }
        );
    }

    #[test]
    fn occluded_gt_is_ignore_region() {
        let gts = vec![gt(10.0, 10.0, 30.0, 60.0, 0.1)];
        // Detecting it: no credit, no penalty.
        let d = det(10.0, 10.0, 30.0, 60.0, 1.0);
        let counts = evaluate_frame(&[&d], &gts, &EvalConfig::default());
        assert_eq!(
            counts,
            EvalCounts {
                tp: 0,
                fp: 0,
                fn_: 0
            }
        );
        // Missing it: no penalty either.
        let counts2 = evaluate_frame(&[], &gts, &EvalConfig::default());
        assert_eq!(counts2.fn_, 0);
    }

    #[test]
    fn higher_score_claims_gt_first() {
        let gts = vec![gt(10.0, 10.0, 30.0, 60.0, 1.0)];
        let weak = det(10.0, 10.0, 30.0, 60.0, 0.2);
        let strong = det(12.0, 10.0, 32.0, 60.0, 0.9);
        let counts = evaluate_frame(&[&weak, &strong], &gts, &EvalConfig::default());
        // The strong one matches; the weak duplicate becomes FP.
        assert_eq!(counts.tp, 1);
        assert_eq!(counts.fp, 1);
    }

    #[test]
    fn counts_accumulate() {
        let mut a = EvalCounts {
            tp: 1,
            fp: 2,
            fn_: 3,
        };
        a.accumulate(EvalCounts {
            tp: 4,
            fp: 5,
            fn_: 6,
        });
        assert_eq!(
            a,
            EvalCounts {
                tp: 5,
                fp: 7,
                fn_: 9
            }
        );
    }

    #[test]
    fn empty_counts_metrics_zero() {
        let c = EvalCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f_score(), 0.0);
    }

    #[test]
    fn sweep_finds_separating_threshold() {
        // One real person; detector emits a strong true detection and a
        // weak false one per frame. Best threshold sits above the noise.
        let frames: Vec<(Vec<Detection>, Vec<GtBox>)> = (0..5)
            .map(|_| {
                (
                    vec![
                        det(10.0, 10.0, 30.0, 60.0, 2.0),
                        det(100.0, 10.0, 120.0, 60.0, 0.3),
                    ],
                    vec![gt(10.0, 10.0, 30.0, 60.0, 1.0)],
                )
            })
            .collect();
        let sweep = ThresholdSweep::run(&frames, &EvalConfig::default(), 64);
        let (thr, counts) = sweep.best();
        assert!(thr > 0.3 && thr <= 2.0, "threshold {thr}");
        assert_eq!(counts.f_score(), 1.0);
    }

    #[test]
    fn sweep_handles_no_detections() {
        let frames = vec![(Vec::new(), vec![gt(0.0, 0.0, 10.0, 20.0, 1.0)])];
        let sweep = ThresholdSweep::run(&frames, &EvalConfig::default(), 16);
        let (_, counts) = sweep.best();
        assert_eq!(counts.tp, 0);
        assert_eq!(counts.fn_, 1);
    }
}
