//! The HOG pedestrian detector (Dalal–Triggs, \[3\] in the paper).
//!
//! A linear SVM over block-normalized HOG descriptors, evaluated over a
//! dense scale pyramid. Trained on *clean* synthetic windows — the analog
//! of OpenCV's INRIA-trained model the paper used — which is precisely why
//! it keeps high precision in clean scenes (Table II) and loses precision
//! against the person-shaped furniture of dataset #2 (Table III).

use crate::detection::BBox;
use crate::detection::{AlgorithmId, Detection, DetectionOutput};
use crate::frame_features::FrameFeatures;
use crate::nms::{nms_in_place, non_maximum_suppression};
use crate::pyramid::{ScaleSchedule, WINDOW_H, WINDOW_W};
use crate::training::{synthesize, NegativeRegime, TrainingConfig, TrainingWindows};
use crate::{DetectError, Detector, Result};
use eecs_learn::svm::{LinearSvm, SvmConfig};
use eecs_learn::Example;
use eecs_vision::hog::{HogConfig, HogDescriptor};
use eecs_vision::image::RgbImage;

/// HOG detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HogDetectorConfig {
    /// HOG layout (cell size divides the 16×48 window).
    pub hog: HogConfig,
    /// Scale schedule; upsampling (scale > 1) lets HOG catch small people.
    pub scales: ScaleSchedule,
    /// Window stride in cells.
    pub stride_cells: usize,
    /// Candidates below this raw score are dropped before NMS.
    pub keep_floor: f64,
    /// NMS IoU threshold.
    pub nms_iou: f64,
    /// SVM training hyper-parameters.
    pub svm: SvmConfig,
    /// Training-set synthesis parameters (clean regime).
    pub training: TrainingConfig,
}

impl Default for HogDetectorConfig {
    fn default() -> Self {
        HogDetectorConfig {
            hog: HogConfig {
                cell_size: 4,
                block_cells: 2,
                bins: 9,
            },
            scales: ScaleSchedule {
                min_scale: 0.08,
                max_scale: 1.35,
                ratio: 1.33,
            },
            stride_cells: 1,
            keep_floor: -0.3,
            nms_iou: 0.35,
            svm: SvmConfig {
                lambda: 1e-4,
                epochs: 40,
                seed: 11,
            },
            training: TrainingConfig {
                positives: 250,
                negatives: 350,
                regime: NegativeRegime::Clean,
                seed: 21,
            },
        }
    }
}

/// A trained HOG + linear SVM detector.
#[derive(Debug, Clone)]
pub struct HogSvmDetector {
    config: HogDetectorConfig,
    svm: LinearSvm,
    /// The enumerated scale schedule, cached at training time so `detect`
    /// only filters it per frame instead of re-deriving it.
    scale_levels: Vec<f64>,
}

impl HogSvmDetector {
    /// Trains the detector on synthesized windows.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Training`] if descriptor extraction or SVM
    /// training fails.
    pub fn train(config: HogDetectorConfig) -> Result<HogSvmDetector> {
        let windows = synthesize(&config.training);
        let examples = descriptor_examples(&windows, config.hog)?;
        let svm = LinearSvm::train(&examples, &config.svm)
            .map_err(|e| DetectError::Training(format!("hog svm: {e}")))?;
        let scale_levels = config.scales.scales();
        Ok(HogSvmDetector {
            config,
            svm,
            scale_levels,
        })
    }

    /// Builds a detector around an already-trained SVM whose weight vector
    /// has the window-descriptor dimension implied by `config.hog`. Used by
    /// the equivalence battery to probe random weight vectors without
    /// paying for training.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidArgument`] if the HOG layout cannot
    /// tile the detection window or the weight dimension mismatches.
    pub fn from_svm(config: HogDetectorConfig, svm: LinearSvm) -> Result<HogSvmDetector> {
        let b = config.hog.block_cells;
        let cell = config.hog.cell_size;
        if cell == 0 || b == 0 {
            return Err(DetectError::InvalidArgument(
                "hog cell/block size must be positive".into(),
            ));
        }
        let (cells_w, cells_h) = (WINDOW_W / cell, WINDOW_H / cell);
        if cells_w < b || cells_h < b {
            return Err(DetectError::InvalidArgument(format!(
                "window of {cells_w}×{cells_h} cells cannot hold a {b}-cell block"
            )));
        }
        let dim = (cells_w - b + 1) * (cells_h - b + 1) * b * b * config.hog.bins;
        if svm.weights().len() != dim {
            return Err(DetectError::InvalidArgument(format!(
                "hog svm weight dim {} != {dim}",
                svm.weights().len()
            )));
        }
        let scale_levels = config.scales.scales();
        Ok(HogSvmDetector {
            config,
            svm,
            scale_levels,
        })
    }

    /// The trained SVM (for inspection/calibration).
    pub fn svm(&self) -> &LinearSvm {
        &self.svm
    }

    /// The pre-optimization detection loop, kept verbatim (fresh cache,
    /// per-window descriptor assembly, allocating NMS) as the equivalence
    /// oracle for `detect`: same detections, same scores, same `ops`.
    pub fn detect_reference(&self, frame: &RgbImage) -> DetectionOutput {
        let cache = FrameFeatures::new(frame);
        let cell = self.config.hog.cell_size;
        let cells_w = WINDOW_W / cell;
        let cells_h = WINDOW_H / cell;
        let mut ops = (frame.width() * frame.height()) as u64;
        let mut candidates = Vec::new();

        for scale in ScaleSchedule::usable_from(&self.scale_levels, frame.width(), frame.height()) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, frame.width(), frame.height());
            if cache.resized_gray(sw, sh).is_err() {
                continue;
            }
            ops += (sw * sh) as u64 * 3;
            let Ok(grid) = cache.hog_grid(sw, sh, self.config.hog) else {
                continue;
            };
            if grid.cells_x() < cells_w || grid.cells_y() < cells_h {
                continue;
            }
            let stride = self.config.stride_cells.max(1);
            let mut cy0 = 0;
            while cy0 + cells_h <= grid.cells_y() {
                let mut cx0 = 0;
                while cx0 + cells_w <= grid.cells_x() {
                    if let Ok(desc) = grid.window_descriptor(cx0, cy0, cells_w, cells_h) {
                        ops += desc.len() as u64;
                        let score = self.svm.score(&desc);
                        if score >= self.config.keep_floor {
                            let x0 = (cx0 * cell) as f64 / scale;
                            let y0 = (cy0 * cell) as f64 / scale;
                            candidates.push(Detection {
                                bbox: BBox::new(
                                    x0,
                                    y0,
                                    x0 + WINDOW_W as f64 / scale,
                                    y0 + WINDOW_H as f64 / scale,
                                ),
                                score,
                            });
                        }
                    }
                    cx0 += stride;
                }
                cy0 += stride;
            }
        }

        DetectionOutput {
            detections: non_maximum_suppression(candidates, self.config.nms_iou),
            ops,
        }
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &HogDetectorConfig {
        &self.config
    }
}

/// Extracts window descriptors and labels for training.
pub(crate) fn descriptor_examples(
    windows: &TrainingWindows,
    hog: HogConfig,
) -> Result<Vec<Example>> {
    let mut examples = Vec::with_capacity(windows.positives.len() + windows.negatives.len());
    for (imgs, label) in [(&windows.positives, 1.0), (&windows.negatives, -1.0)] {
        for img in imgs.iter() {
            let desc = HogDescriptor::compute(&img.to_gray(), hog)
                .map_err(|e| DetectError::Training(format!("hog descriptor: {e}")))?;
            examples.push(Example {
                features: desc,
                label,
            });
        }
    }
    Ok(examples)
}

impl Detector for HogSvmDetector {
    fn algorithm(&self) -> AlgorithmId {
        AlgorithmId::Hog
    }

    fn detect(&self, frame: &RgbImage) -> DetectionOutput {
        self.detect_with_cache(frame, &FrameFeatures::new(frame))
    }

    fn detect_with_cache(&self, frame: &RgbImage, cache: &FrameFeatures<'_>) -> DetectionOutput {
        let cell = self.config.hog.cell_size;
        let cells_w = WINDOW_W / cell;
        let cells_h = WINDOW_H / cell;
        let mut ops = (frame.width() * frame.height()) as u64; // grayscale
        let mut candidates = Vec::new();

        for scale in ScaleSchedule::usable_from(&self.scale_levels, frame.width(), frame.height()) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, frame.width(), frame.height());
            // The cache stages mirror the direct resize-then-grid
            // computation so the ops increment lands between the same
            // failure points as before.
            if cache.resized_gray(sw, sh).is_err() {
                continue;
            }
            ops += (sw * sh) as u64 * 3; // resize + gradient + cell binning
            let Ok(grid) = cache.hog_grid(sw, sh, self.config.hog) else {
                continue;
            };
            if grid.cells_x() < cells_w || grid.cells_y() < cells_h {
                continue;
            }
            // Blocks are normalized once per level; each window then scores
            // as a running dot over its blocks — same values, same order as
            // assembling the descriptor, so scores are bit-identical.
            let Ok(blocks) = cache.hog_blocks(sw, sh, self.config.hog) else {
                continue;
            };
            let Some(win_len) = blocks.window_len(cells_w, cells_h) else {
                // Window smaller than one block: the reference path would
                // fail every `window_descriptor` call and emit nothing.
                continue;
            };
            let stride = self.config.stride_cells.max(1);
            let mut cy0 = 0;
            while cy0 + cells_h <= grid.cells_y() {
                let mut cx0 = 0;
                while cx0 + cells_w <= grid.cells_x() {
                    if let Some(dot) =
                        blocks.window_score(cx0, cy0, cells_w, cells_h, self.svm.weights())
                    {
                        ops += win_len as u64;
                        // `LinearSvm::score` is `dot + bias`; `dot` is
                        // bit-identical by construction, so adding the bias
                        // reproduces the reference score exactly.
                        let score = dot + self.svm.bias();
                        if score >= self.config.keep_floor {
                            let x0 = (cx0 * cell) as f64 / scale;
                            let y0 = (cy0 * cell) as f64 / scale;
                            candidates.push(Detection {
                                bbox: BBox::new(
                                    x0,
                                    y0,
                                    x0 + WINDOW_W as f64 / scale,
                                    y0 + WINDOW_H as f64 / scale,
                                ),
                                score,
                            });
                        }
                    }
                    cx0 += stride;
                }
                cy0 += stride;
            }
        }

        nms_in_place(&mut candidates, self.config.nms_iou);
        DetectionOutput {
            detections: candidates,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_vision::draw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> HogDetectorConfig {
        HogDetectorConfig {
            training: TrainingConfig {
                positives: 80,
                negatives: 120,
                regime: NegativeRegime::Clean,
                seed: 1,
            },
            svm: SvmConfig {
                epochs: 20,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn scene_with_person(px: f64, py: f64, h: f64) -> RgbImage {
        let mut img = RgbImage::new(160, 120);
        draw::vertical_gradient(&mut img, [0.6, 0.6, 0.58], [0.35, 0.35, 0.33]);
        let w = h / 3.0;
        draw::draw_human(
            &mut img,
            px - w / 2.0,
            py - h,
            px + w / 2.0,
            py,
            [0.2, 0.3, 0.8],
            [0.85, 0.65, 0.5],
        );
        let mut rng = StdRng::seed_from_u64(3);
        draw::add_noise(&mut img, 0.02, &mut rng);
        img
    }

    #[test]
    fn detects_a_person() {
        let det = HogSvmDetector::train(quick_config()).unwrap();
        let img = scene_with_person(80.0, 100.0, 60.0);
        let out = det.detect(&img);
        assert!(!out.detections.is_empty(), "no detections at all");
        let best = &out.detections[0];
        let (cx, _) = best.bbox.center();
        assert!(
            (cx - 80.0).abs() < 15.0,
            "best detection at x={cx}, expected ~80: {best:?}"
        );
    }

    #[test]
    fn empty_scene_scores_below_person_scene() {
        let det = HogSvmDetector::train(quick_config()).unwrap();
        let mut empty = RgbImage::new(160, 120);
        draw::vertical_gradient(&mut empty, [0.6, 0.6, 0.58], [0.35, 0.35, 0.33]);
        let person = scene_with_person(80.0, 100.0, 60.0);
        let top = |o: &DetectionOutput| o.detections.first().map(|d| d.score).unwrap_or(-10.0);
        let e = det.detect(&empty);
        let p = det.detect(&person);
        assert!(top(&p) > top(&e), "person {} vs empty {}", top(&p), top(&e));
    }

    #[test]
    fn ops_scale_with_resolution() {
        let det = HogSvmDetector::train(quick_config()).unwrap();
        let small = RgbImage::new(80, 60);
        let large = RgbImage::new(320, 240);
        let o_small = det.detect(&small).ops;
        let o_large = det.detect(&large).ops;
        assert!(
            o_large > o_small * 8,
            "ops should grow ~quadratically: {o_small} vs {o_large}"
        );
    }

    #[test]
    fn detect_matches_reference_bitwise() {
        let det = HogSvmDetector::train(quick_config()).unwrap();
        for frame in [
            scene_with_person(80.0, 100.0, 60.0),
            scene_with_person(40.0, 70.0, 35.0),
        ] {
            let got = det.detect(&frame);
            let want = det.detect_reference(&frame);
            assert_eq!(got.ops, want.ops);
            assert_eq!(got.detections.len(), want.detections.len());
            for (a, b) in got.detections.iter().zip(&want.detections) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.bbox, b.bbox);
            }
        }
    }

    #[test]
    fn from_svm_rejects_bad_dimension() {
        let err =
            HogSvmDetector::from_svm(quick_config(), LinearSvm::from_parts(vec![0.0; 3], 0.0));
        assert!(matches!(err, Err(DetectError::InvalidArgument(_))));
    }

    #[test]
    fn detection_is_deterministic() {
        let det = HogSvmDetector::train(quick_config()).unwrap();
        let img = scene_with_person(60.0, 90.0, 50.0);
        assert_eq!(det.detect(&img), det.detect(&img));
    }

    #[test]
    fn algorithm_id() {
        let det = HogSvmDetector::train(quick_config()).unwrap();
        assert_eq!(det.algorithm(), AlgorithmId::Hog);
    }
}
