//! Per-detector sanity checks: catch silent garbage before it poisons the
//! controller's accuracy assessments.
//!
//! A detector running on a degraded sensor (see
//! `eecs_scene::sensor_fault`) can fail in ways that are worse than
//! returning nothing: non-finite scores propagate NaN into probability
//! calibration, a detection-count explosion floods re-identification, and
//! a collapsed score distribution (every window the same score) means the
//! classifier has stopped discriminating. [`DetectorHealth::check`]
//! inspects one [`DetectionOutput`] against a [`HealthPolicy`] and
//! reports every violation, so the runtime can replace the output with an
//! explicit empty report and quarantine the (camera, algorithm) pair
//! instead of trusting garbage.
//!
//! The default thresholds are deliberately lenient: a healthy detector on
//! clean or even moderately degraded frames never trips them, so enabling
//! the checks does not perturb fault-free runs.

use crate::detection::{AlgorithmId, DetectionOutput};
use std::fmt;

/// Thresholds separating a misbehaving detector from a merely busy one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Hard cap on detections per frame; more is a count explosion (the
    /// scene never holds more than a handful of people, and NMS keeps
    /// healthy outputs far below this).
    pub max_detections: usize,
    /// Score-collapse screening only applies to outputs with at least
    /// this many detections (tiny outputs legitimately tie).
    pub collapse_min_detections: usize,
    /// Minimum spread (`max score − min score`) a large output must show;
    /// below it the score distribution has collapsed.
    pub min_score_spread: f64,
}

impl HealthPolicy {
    /// Lenient defaults that healthy detectors never trip.
    pub fn lenient() -> HealthPolicy {
        HealthPolicy {
            max_detections: 512,
            collapse_min_detections: 16,
            min_score_spread: 1e-9,
        }
    }

    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns a message when a threshold is degenerate (zero caps, or a
    /// non-finite/negative spread).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_detections == 0 {
            return Err("health policy: max_detections must be at least 1".into());
        }
        if self.collapse_min_detections < 2 {
            return Err("health policy: collapse_min_detections must be at least 2".into());
        }
        if !self.min_score_spread.is_finite() || self.min_score_spread < 0.0 {
            return Err(format!(
                "health policy: min_score_spread must be finite and non-negative, got {}",
                self.min_score_spread
            ));
        }
        Ok(())
    }
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy::lenient()
    }
}

/// One way a detector output violated its [`HealthPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthIssue {
    /// A detection carried a NaN or infinite score.
    NonFiniteScore {
        /// Index of the offending detection in the output.
        index: usize,
    },
    /// A detection's bounding box had a non-finite coordinate.
    NonFiniteBox {
        /// Index of the offending detection in the output.
        index: usize,
    },
    /// The detector returned implausibly many detections.
    CountExplosion {
        /// How many it returned.
        count: usize,
        /// The policy's cap.
        limit: usize,
    },
    /// A large output whose scores are all (nearly) identical — the
    /// classifier has stopped discriminating.
    ScoreCollapse {
        /// How many detections shared the collapsed distribution.
        count: usize,
        /// The observed `max − min` score spread.
        spread: f64,
    },
}

impl HealthIssue {
    /// A stable kind label, used as a metric-name component
    /// (`health.issue.count_explosion` and friends).
    pub fn kind(&self) -> &'static str {
        match self {
            HealthIssue::NonFiniteScore { .. } => "non_finite_score",
            HealthIssue::NonFiniteBox { .. } => "non_finite_box",
            HealthIssue::CountExplosion { .. } => "count_explosion",
            HealthIssue::ScoreCollapse { .. } => "score_collapse",
        }
    }
}

impl fmt::Display for HealthIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthIssue::NonFiniteScore { index } => {
                write!(f, "non-finite score at detection {index}")
            }
            HealthIssue::NonFiniteBox { index } => {
                write!(f, "non-finite bounding box at detection {index}")
            }
            HealthIssue::CountExplosion { count, limit } => {
                write!(f, "detection count explosion: {count} > {limit}")
            }
            HealthIssue::ScoreCollapse { count, spread } => {
                write!(f, "score collapse: {count} detections, spread {spread:e}")
            }
        }
    }
}

/// The verdict on one detector output — which algorithm, and every policy
/// violation found.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorHealth {
    /// The algorithm whose output was inspected.
    pub algorithm: AlgorithmId,
    /// All violations, in inspection order; empty means healthy.
    pub issues: Vec<HealthIssue>,
}

impl DetectorHealth {
    /// Inspects `output` against `policy` and records every violation.
    pub fn check(
        algorithm: AlgorithmId,
        output: &DetectionOutput,
        policy: &HealthPolicy,
    ) -> DetectorHealth {
        let mut issues = Vec::new();

        for (index, det) in output.detections.iter().enumerate() {
            if !det.score.is_finite() {
                issues.push(HealthIssue::NonFiniteScore { index });
            }
            let b = &det.bbox;
            if ![b.x0, b.y0, b.x1, b.y1].iter().all(|v| v.is_finite()) {
                issues.push(HealthIssue::NonFiniteBox { index });
            }
        }

        let count = output.detections.len();
        if count > policy.max_detections {
            issues.push(HealthIssue::CountExplosion {
                count,
                limit: policy.max_detections,
            });
        }

        // Collapse screening needs finite scores to be meaningful; the
        // non-finite issues above already condemn the output otherwise.
        if count >= policy.collapse_min_detections
            && output.detections.iter().all(|d| d.score.is_finite())
        {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for d in &output.detections {
                lo = lo.min(d.score);
                hi = hi.max(d.score);
            }
            let spread = hi - lo;
            if spread < policy.min_score_spread {
                issues.push(HealthIssue::ScoreCollapse { count, spread });
            }
        }

        DetectorHealth { algorithm, issues }
    }

    /// Whether the output passed every check.
    pub fn is_healthy(&self) -> bool {
        self.issues.is_empty()
    }
}

impl fmt::Display for DetectorHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_healthy() {
            write!(f, "{}: healthy", self.algorithm)
        } else {
            write!(f, "{}: ", self.algorithm)?;
            for (i, issue) in self.issues.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{issue}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::{BBox, Detection};

    fn output(scores: &[f64]) -> DetectionOutput {
        DetectionOutput {
            detections: scores
                .iter()
                .map(|&score| Detection {
                    bbox: BBox::new(0.0, 0.0, 10.0, 20.0),
                    score,
                })
                .collect(),
            ops: 100,
        }
    }

    #[test]
    fn clean_output_is_healthy() {
        let policy = HealthPolicy::default();
        let out = output(&[3.0, 2.5, 1.0]);
        let health = DetectorHealth::check(AlgorithmId::Hog, &out, &policy);
        assert!(health.is_healthy());
        assert!(health.to_string().contains("healthy"));
    }

    #[test]
    fn empty_output_is_healthy() {
        let health = DetectorHealth::check(AlgorithmId::C4, &output(&[]), &HealthPolicy::default());
        assert!(health.is_healthy(), "no detections is a valid answer");
    }

    #[test]
    fn nan_and_infinite_scores_are_flagged() {
        let out = output(&[1.0, f64::NAN, f64::INFINITY]);
        let health = DetectorHealth::check(AlgorithmId::Acf, &out, &HealthPolicy::default());
        assert_eq!(
            health.issues,
            vec![
                HealthIssue::NonFiniteScore { index: 1 },
                HealthIssue::NonFiniteScore { index: 2 },
            ]
        );
    }

    #[test]
    fn non_finite_bbox_is_flagged() {
        let mut out = output(&[1.0]);
        out.detections[0].bbox.x1 = f64::NAN;
        let health = DetectorHealth::check(AlgorithmId::Lsvm, &out, &HealthPolicy::default());
        assert_eq!(health.issues, vec![HealthIssue::NonFiniteBox { index: 0 }]);
    }

    #[test]
    fn count_explosion_is_flagged() {
        let scores: Vec<f64> = (0..600).map(|i| i as f64).collect();
        let health =
            DetectorHealth::check(AlgorithmId::Hog, &output(&scores), &HealthPolicy::default());
        assert_eq!(
            health.issues,
            vec![HealthIssue::CountExplosion {
                count: 600,
                limit: 512
            }]
        );
    }

    #[test]
    fn score_collapse_is_flagged_only_on_large_outputs() {
        let policy = HealthPolicy::default();
        // 20 identical scores: collapsed.
        let collapsed = output(&vec![0.7; 20]);
        let health = DetectorHealth::check(AlgorithmId::C4, &collapsed, &policy);
        assert!(matches!(
            health.issues.as_slice(),
            [HealthIssue::ScoreCollapse { count: 20, .. }]
        ));
        // 5 identical scores: too small to judge.
        let tiny = output(&vec![0.7; 5]);
        assert!(DetectorHealth::check(AlgorithmId::C4, &tiny, &policy).is_healthy());
        // 20 spread scores: fine.
        let spread: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        assert!(DetectorHealth::check(AlgorithmId::C4, &output(&spread), &policy).is_healthy());
    }

    #[test]
    fn policy_validation_rejects_degenerate_thresholds() {
        assert!(HealthPolicy::default().validate().is_ok());
        assert!(HealthPolicy {
            max_detections: 0,
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
        assert!(HealthPolicy {
            collapse_min_detections: 1,
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
        assert!(HealthPolicy {
            min_score_spread: f64::NAN,
            ..HealthPolicy::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn display_lists_every_issue() {
        let out = output(&[f64::NAN]);
        let health = DetectorHealth::check(AlgorithmId::Hog, &out, &HealthPolicy::default());
        let text = health.to_string();
        assert!(text.contains("HOG") && text.contains("non-finite score"));
    }
}
