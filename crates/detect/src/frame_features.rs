//! Shared per-frame feature cache.
//!
//! The four detectors all derive their features from the same frame: HOG
//! and LSVM resize the grayscale image and build HOG cell grids, ACF
//! resizes the RGB image and aggregates channels, C4 resizes through a
//! fixed internal resolution and census-transforms each level. Run
//! back-to-back on one frame (the assessment phase does exactly that),
//! they repeat the grayscale conversion, many pyramid levels, and — when
//! two detectors share a HOG layout — entire cell grids.
//!
//! [`FrameFeatures`] memoizes those intermediates so each is computed once
//! per frame and shared across detectors via
//! [`Detector::detect_with_cache`](crate::Detector::detect_with_cache).
//!
//! Two invariants make the cache safe for the simulator:
//!
//! 1. **Exactness** — every cache key fully encodes the derivation of the
//!    value from the frame (target dimensions, HOG layout, shrink factor,
//!    and for C4 the internal resolution the level was resized *through*).
//!    All derivations are deterministic, so a cached value is bit-identical
//!    to what the detector would have computed directly.
//! 2. **No energy accounting** — the cache is a *host simulation* speedup
//!    only. The modeled camera hardware runs each algorithm in isolation,
//!    so per-algorithm `ops` counters (and therefore
//!    `processing_energy(ops)` charges) must not shrink when features are
//!    shared; detectors increment `ops` exactly as in the uncached path.
//!
//! Errors from the underlying vision routines (degenerate target
//! dimensions, too-small levels) are returned but not cached: failure
//! paths are rare and cheap, and detectors handle them at the same points
//! as the direct computation.

use eecs_vision::channels::AcfChannels;
use eecs_vision::hog::{HogBlockGrid, HogCellGrid, HogConfig};
use eecs_vision::image::{GrayImage, RgbImage};
use eecs_vision::resize::{resize_gray, resize_rgb};
use eecs_vision::Result as VisionResult;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::c4_detector::census_transform;
use crate::kernels::{CensusCodePlane, DetectScratch};

/// Key of a HOG cell grid: level dimensions plus the full HOG layout
/// (`HogConfig` carries no `Hash` impl, so the fields are spread here).
type HogKey = (usize, usize, usize, usize, usize);
/// Key of a census-transformed level: the internal resolution the level was
/// resized through, then the level dimensions.
type CensusKey = (usize, usize, usize, usize);

/// Memoized per-frame intermediates, shared across detectors.
///
/// Construct one per frame with [`FrameFeatures::new`] and pass it to each
/// detector's `detect_with_cache`. All methods take `&self` and the cache
/// is `Sync`, so one instance may serve several threads, though the
/// simulator uses one per worker task.
pub struct FrameFeatures<'a> {
    frame: &'a RgbImage,
    gray: OnceLock<Arc<GrayImage>>,
    gray_levels: Mutex<HashMap<(usize, usize), Arc<GrayImage>>>,
    rgb_levels: Mutex<HashMap<(usize, usize), Arc<RgbImage>>>,
    hog_grids: Mutex<HashMap<HogKey, Arc<HogCellGrid>>>,
    hog_blocks: Mutex<HashMap<HogKey, Arc<HogBlockGrid>>>,
    acf_levels: Mutex<HashMap<(usize, usize, usize), Arc<AcfChannels>>>,
    census_levels: Mutex<HashMap<CensusKey, Arc<GrayImage>>>,
    census_codes: Mutex<HashMap<CensusKey, Arc<CensusCodePlane>>>,
    scratch: Mutex<Vec<DetectScratch>>,
}

impl<'a> FrameFeatures<'a> {
    /// Creates an empty cache over `frame`. Nothing is computed until a
    /// detector asks for it.
    pub fn new(frame: &'a RgbImage) -> FrameFeatures<'a> {
        FrameFeatures {
            frame,
            gray: OnceLock::new(),
            gray_levels: Mutex::new(HashMap::new()),
            rgb_levels: Mutex::new(HashMap::new()),
            hog_grids: Mutex::new(HashMap::new()),
            hog_blocks: Mutex::new(HashMap::new()),
            acf_levels: Mutex::new(HashMap::new()),
            census_levels: Mutex::new(HashMap::new()),
            census_codes: Mutex::new(HashMap::new()),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a [`DetectScratch`] checked out of this frame's pool.
    ///
    /// Buffers keep their capacity across checkouts, so every detector
    /// scanning through the same cache reuses the same allocations; under
    /// concurrent access each caller simply gets its own scratch. Contents
    /// are transient — callers must not read a buffer before writing it.
    pub fn with_scratch<R>(&self, f: impl FnOnce(&mut DetectScratch) -> R) -> R {
        let mut scratch = {
            let mut pool = self.scratch.lock().unwrap();
            pool.pop().unwrap_or_default()
        };
        let out = f(&mut scratch);
        self.scratch.lock().unwrap().push(scratch);
        out
    }

    /// The frame this cache is derived from.
    pub fn frame(&self) -> &RgbImage {
        self.frame
    }

    /// The grayscale conversion of the frame.
    pub fn gray(&self) -> Arc<GrayImage> {
        self.gray
            .get_or_init(|| Arc::new(self.frame.to_gray()))
            .clone()
    }

    /// The grayscale frame resized to `w × h`
    /// (= `resize_gray(&frame.to_gray(), w, h)`).
    ///
    /// # Errors
    ///
    /// Propagates [`resize_gray`] errors; failures are not cached.
    pub fn resized_gray(&self, w: usize, h: usize) -> VisionResult<Arc<GrayImage>> {
        if let Some(hit) = self.gray_levels.lock().unwrap().get(&(w, h)) {
            return Ok(hit.clone());
        }
        let level = Arc::new(resize_gray(&self.gray(), w, h)?);
        Ok(self
            .gray_levels
            .lock()
            .unwrap()
            .entry((w, h))
            .or_insert(level)
            .clone())
    }

    /// The RGB frame resized to `w × h` (= `resize_rgb(frame, w, h)`).
    ///
    /// # Errors
    ///
    /// Propagates [`resize_rgb`] errors; failures are not cached.
    pub fn resized_rgb(&self, w: usize, h: usize) -> VisionResult<Arc<RgbImage>> {
        if let Some(hit) = self.rgb_levels.lock().unwrap().get(&(w, h)) {
            return Ok(hit.clone());
        }
        let level = Arc::new(resize_rgb(self.frame, w, h)?);
        Ok(self
            .rgb_levels
            .lock()
            .unwrap()
            .entry((w, h))
            .or_insert(level)
            .clone())
    }

    /// The HOG cell grid of the `w × h` grayscale level under `config`
    /// (= `HogCellGrid::compute(&resize_gray(&gray, w, h), config)`).
    ///
    /// Shared between the HOG and LSVM detectors whenever their scale
    /// schedules land on the same level with the same layout.
    ///
    /// # Errors
    ///
    /// Propagates resize or grid-computation errors; failures are not
    /// cached.
    pub fn hog_grid(
        &self,
        w: usize,
        h: usize,
        config: HogConfig,
    ) -> VisionResult<Arc<HogCellGrid>> {
        let key = (w, h, config.cell_size, config.block_cells, config.bins);
        if let Some(hit) = self.hog_grids.lock().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let level = self.resized_gray(w, h)?;
        let grid = Arc::new(HogCellGrid::compute(&level, config)?);
        Ok(self
            .hog_grids
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(grid)
            .clone())
    }

    /// The precomputed block-normalized HOG blocks of the `w × h` level
    /// under `config` (= `HogBlockGrid::compute(&hog_grid(w, h, config))`).
    ///
    /// Every block's normalized vector is bit-identical to the block the
    /// cell grid's `window_descriptor` would assemble in place, so window
    /// scores folded over these blocks equal the assemble-then-dot path
    /// exactly; the scan skips the per-window normalization and
    /// allocation.
    ///
    /// # Errors
    ///
    /// Propagates resize or grid-computation errors; failures are not
    /// cached.
    pub fn hog_blocks(
        &self,
        w: usize,
        h: usize,
        config: HogConfig,
    ) -> VisionResult<Arc<HogBlockGrid>> {
        let key = (w, h, config.cell_size, config.block_cells, config.bins);
        if let Some(hit) = self.hog_blocks.lock().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let grid = self.hog_grid(w, h, config)?;
        let blocks = Arc::new(HogBlockGrid::compute(&grid));
        Ok(self
            .hog_blocks
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(blocks)
            .clone())
    }

    /// The aggregated ACF channels of the `w × h` RGB level
    /// (= `AcfChannels::compute(&resize_rgb(frame, w, h), shrink)`).
    ///
    /// # Errors
    ///
    /// Propagates resize or channel-computation errors; failures are not
    /// cached.
    pub fn acf_channels(
        &self,
        w: usize,
        h: usize,
        shrink: usize,
    ) -> VisionResult<Arc<AcfChannels>> {
        let key = (w, h, shrink);
        if let Some(hit) = self.acf_levels.lock().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let level = self.resized_rgb(w, h)?;
        let channels = Arc::new(AcfChannels::compute(&level, shrink)?);
        Ok(self
            .acf_levels
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(channels)
            .clone())
    }

    /// The census transform of the `w × h` level obtained by resizing the
    /// grayscale frame through C4's fixed `internal_w × internal_h`
    /// resolution first
    /// (= `census_transform(&resize_gray(&resize_gray(&gray, iw, ih), w, h))`).
    ///
    /// The internal resolution is part of the key because a second-order
    /// resize is **not** the same image as a direct resize to `w × h`.
    ///
    /// # Errors
    ///
    /// Propagates resize errors (from either stage); failures are not
    /// cached.
    pub fn census_level(
        &self,
        internal_w: usize,
        internal_h: usize,
        w: usize,
        h: usize,
    ) -> VisionResult<Arc<GrayImage>> {
        let key = (internal_w, internal_h, w, h);
        if let Some(hit) = self.census_levels.lock().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let internal = self.resized_gray(internal_w, internal_h)?;
        let level = resize_gray(&internal, w, h)?;
        let census = Arc::new(census_transform(&level));
        Ok(self
            .census_levels
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(census)
            .clone())
    }

    /// The `u8` code plane of the census level keyed exactly like
    /// [`FrameFeatures::census_level`]: each code is
    /// `(pixel as usize).min(255)`, the cast the reference scorer applies
    /// per window pixel, materialized once per level.
    ///
    /// # Errors
    ///
    /// Propagates resize errors (from either stage); failures are not
    /// cached.
    pub fn census_codes(
        &self,
        internal_w: usize,
        internal_h: usize,
        w: usize,
        h: usize,
    ) -> VisionResult<Arc<CensusCodePlane>> {
        let key = (internal_w, internal_h, w, h);
        if let Some(hit) = self.census_codes.lock().unwrap().get(&key) {
            return Ok(hit.clone());
        }
        let census = self.census_level(internal_w, internal_h, w, h)?;
        let plane = Arc::new(CensusCodePlane::from_census(&census));
        Ok(self
            .census_codes
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(plane)
            .clone())
    }
}

impl std::fmt::Debug for FrameFeatures<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrameFeatures({}x{}, {} gray / {} rgb levels, {} hog grids, {} hog block grids, {} acf levels, {} census levels, {} code planes)",
            self.frame.width(),
            self.frame.height(),
            self.gray_levels.lock().unwrap().len(),
            self.rgb_levels.lock().unwrap().len(),
            self.hog_grids.lock().unwrap().len(),
            self.hog_blocks.lock().unwrap().len(),
            self.acf_levels.lock().unwrap().len(),
            self.census_levels.lock().unwrap().len(),
            self.census_codes.lock().unwrap().len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_frame() -> RgbImage {
        let mut img = RgbImage::new(64, 48);
        for y in 0..48 {
            for x in 0..64 {
                img.set(
                    x,
                    y,
                    [
                        (x as f32) / 64.0,
                        (y as f32) / 48.0,
                        ((x * y) % 7) as f32 / 7.0,
                    ],
                );
            }
        }
        img
    }

    #[test]
    fn gray_matches_direct_conversion() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        assert_eq!(*cache.gray(), frame.to_gray());
        // Second call returns the same allocation.
        assert!(Arc::ptr_eq(&cache.gray(), &cache.gray()));
    }

    #[test]
    fn resized_levels_match_direct_and_are_shared() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        let level = cache.resized_gray(32, 24).unwrap();
        assert_eq!(*level, resize_gray(&frame.to_gray(), 32, 24).unwrap());
        assert!(Arc::ptr_eq(&level, &cache.resized_gray(32, 24).unwrap()));

        let rgb = cache.resized_rgb(16, 12).unwrap();
        assert_eq!(*rgb, resize_rgb(&frame, 16, 12).unwrap());
        assert!(Arc::ptr_eq(&rgb, &cache.resized_rgb(16, 12).unwrap()));
    }

    #[test]
    fn census_key_encodes_internal_resolution() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        let via_32 = cache.census_level(32, 24, 24, 18).unwrap();
        let via_48 = cache.census_level(48, 36, 24, 18).unwrap();
        // Same final dimensions, different derivation: distinct entries.
        assert!(!Arc::ptr_eq(&via_32, &via_48));
        let direct = census_transform(
            &resize_gray(&resize_gray(&frame.to_gray(), 32, 24).unwrap(), 24, 18).unwrap(),
        );
        assert_eq!(*via_32, direct);
    }

    #[test]
    fn census_codes_match_level_cast_and_are_shared() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        let plane = cache.census_codes(32, 24, 24, 18).unwrap();
        let level = cache.census_level(32, 24, 24, 18).unwrap();
        for y in 0..18 {
            for x in 0..24 {
                assert_eq!(plane.code(x, y), (level.get(x, y) as usize).min(255));
            }
        }
        assert!(Arc::ptr_eq(
            &plane,
            &cache.census_codes(32, 24, 24, 18).unwrap()
        ));
    }

    #[test]
    fn hog_blocks_derive_from_the_cached_grid() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        let cfg = HogConfig {
            cell_size: 4,
            block_cells: 2,
            bins: 9,
        };
        let blocks = cache.hog_blocks(64, 48, cfg).unwrap();
        let grid = cache.hog_grid(64, 48, cfg).unwrap();
        assert_eq!(blocks.blocks_x(), grid.cells_x() - 1);
        let direct = HogBlockGrid::compute(&grid);
        assert_eq!(blocks.block(2, 3), direct.block(2, 3));
        assert!(Arc::ptr_eq(
            &blocks,
            &cache.hog_blocks(64, 48, cfg).unwrap()
        ));
    }

    #[test]
    fn scratch_pool_reuses_buffers() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        let cap = cache.with_scratch(|s| {
            s.descriptor.clear();
            s.descriptor.extend(std::iter::repeat(0.5).take(512));
            s.descriptor.capacity()
        });
        // The same buffer (or at least its capacity) comes back.
        let cap2 = cache.with_scratch(|s| s.descriptor.capacity());
        assert!(cap2 >= cap);
    }

    #[test]
    fn errors_are_propagated_not_cached() {
        let frame = test_frame();
        let cache = FrameFeatures::new(&frame);
        assert!(cache.resized_gray(0, 10).is_err());
        // The failed key did not poison the cache.
        assert!(cache.resized_gray(10, 10).is_ok());
    }
}
