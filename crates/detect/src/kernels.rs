//! Shared kernel-optimization primitives for the detector hot paths.
//!
//! The sliding-window scans dominate the whole simulator (BENCH_pipeline:
//! C4 alone was ~90 ms/frame before this layer). Two constant-factor sinks
//! recur across all four detectors:
//!
//! 1. **Redundant per-window recomputation** — every pixel of a census
//!    level was re-fetched as `f32` and re-cast/clamped to a code by each
//!    of the ~(W/stride)·(H/stride) overlapping windows covering it.
//!    [`CensusCodePlane`] materializes the cast once per level.
//! 2. **Per-window allocations** — HOG descriptors, census histograms and
//!    NMS buffers were freshly `Vec`-allocated in the innermost loops.
//!    [`DetectScratch`] owns those buffers; detectors check one out of the
//!    [`FrameFeatures`](crate::FrameFeatures) pool per `detect` call and
//!    reuse it across every window and scale.
//!
//! Everything here is **output-preserving by construction**: the same
//! integer codes, the same `f64` values in the same order, so scores,
//! boxes, and `ops` counters stay bit-identical to the unoptimized
//! reference paths (enforced by `tests/kernel_equivalence.rs`).

use eecs_vision::image::GrayImage;

use crate::c4_detector::CENSUS_BINS as CODE_BINS;

/// A census level as a dense `u8` code plane.
///
/// `census_transform` stores codes as `f32` pixels in a [`GrayImage`]
/// (exact integers in `[0, 255]`). Scoring reads them as
/// `(pixel as usize).min(255)`; this plane applies that cast/clamp once
/// per pixel instead of once per covering window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusCodePlane {
    width: usize,
    height: usize,
    codes: Vec<u8>,
}

impl CensusCodePlane {
    /// Casts a census-transformed level into codes. Each code equals
    /// `(census.get(x, y) as usize).min(255)` — the exact expression the
    /// reference scoring path evaluates per window pixel.
    pub fn from_census(census: &GrayImage) -> CensusCodePlane {
        let codes = census
            .as_slice()
            .iter()
            .map(|&v| (v as usize).min(CODE_BINS - 1) as u8)
            .collect();
        CensusCodePlane {
            width: census.width(),
            height: census.height(),
            codes,
        }
    }

    /// Plane width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Code at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the plane.
    #[inline]
    pub fn code(&self, x: usize, y: usize) -> usize {
        self.codes[y * self.width + x] as usize
    }

    /// The codes of row `y` from column `x0`, `len` wide.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the plane.
    #[inline]
    pub fn row(&self, x0: usize, y: usize, len: usize) -> &[u8] {
        let start = y * self.width + x0;
        &self.codes[start..start + len]
    }

    /// Raw row-major code slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.codes
    }
}

/// Reusable scratch buffers for one detector scan.
///
/// Checked out of the per-frame pool via
/// [`FrameFeatures::with_scratch`](crate::FrameFeatures::with_scratch);
/// buffers keep their capacity between windows, scales, detectors, and
/// frames, so the steady-state hot loop performs no heap allocation.
/// Contents are transient — every user clears (or overwrites) a buffer
/// before reading it.
#[derive(Debug, Default)]
pub struct DetectScratch {
    /// HOG window / root descriptors (`window_descriptor_into`).
    pub descriptor: Vec<f64>,
    /// LSVM part descriptors (kept separate from `descriptor` so the root
    /// descriptor could still be alive while parts are probed).
    pub part_descriptor: Vec<f64>,
    /// Census window histograms (`window_census_histogram_into`).
    pub histogram: Vec<f64>,
    /// Per-level flattened lookup offsets (ACF stump positions).
    pub offsets: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_plane_matches_reference_cast() {
        // Include out-of-range and fractional values: the plane must apply
        // exactly the `(v as usize).min(255)` cast the scorer used.
        let census = GrayImage::from_fn(7, 5, |x, y| match (x + y) % 4 {
            0 => (x * 37 + y) as f32,
            1 => 255.9,
            2 => 300.0,
            _ => 12.5,
        });
        let plane = CensusCodePlane::from_census(&census);
        assert_eq!(plane.width(), 7);
        assert_eq!(plane.height(), 5);
        for y in 0..5 {
            for x in 0..7 {
                let want = (census.get(x, y) as usize).min(255);
                assert_eq!(plane.code(x, y), want, "at ({x},{y})");
            }
        }
        let row = plane.row(2, 3, 4);
        assert_eq!(row.len(), 4);
        for (i, &c) in row.iter().enumerate() {
            assert_eq!(c as usize, plane.code(2 + i, 3));
        }
    }

    #[test]
    fn scratch_buffers_keep_capacity() {
        let mut s = DetectScratch::default();
        s.descriptor.extend([1.0; 64]);
        let cap = s.descriptor.capacity();
        s.descriptor.clear();
        assert!(s.descriptor.capacity() >= cap);
    }
}
