//! The C4 contour-cue detector (Wu, Geyer & Rehg, \[6\] in the paper).
//!
//! C4 classifies windows from CENTRIST-style census-transform histograms —
//! pure contour information, no gradient magnitudes — after resizing the
//! input to a **fixed internal resolution**. The fixed internal resolution
//! is what Tables II/III show: C4 costs 4.92 J at 360×288 and only 5.56 J at
//! 1024×768 (a 9.5× pixel increase), because only the initial resize sees
//! the full-resolution frame.

use crate::detection::{AlgorithmId, BBox, Detection, DetectionOutput};
use crate::frame_features::FrameFeatures;
use crate::kernels::CensusCodePlane;
use crate::nms::{nms_in_place, non_maximum_suppression};
use crate::pyramid::{ScaleSchedule, WINDOW_H, WINDOW_W};
use crate::training::{synthesize, NegativeRegime, TrainingConfig};
use crate::{DetectError, Detector, Result};
use eecs_learn::svm::{LinearSvm, SvmConfig};
use eecs_learn::Example;
use eecs_vision::image::{GrayImage, RgbImage};

/// Census histogram bins (8-neighbor census → 256 codes).
pub const CENSUS_BINS: usize = 256;

/// Horizontal tiles over the window: 4 × 6 tiles (evenly dividing 16×48,
/// so each tile covers exactly 4×8 pixels).
pub const TILES_X: usize = 4;
/// Vertical tiles over the window.
pub const TILES_Y: usize = 6;
/// Length of the tiled census feature vector (the SVM weight dimension).
pub const C4_FEATURE_DIM: usize = TILES_X * TILES_Y * CENSUS_BINS;
/// Pixels per tile (used by the direct scoring fast path).
const TILE_PIXELS: f64 = ((WINDOW_W / TILES_X) * (WINDOW_H / TILES_Y)) as f64;

/// Rows accumulated before the early-reject bound is first consulted: the
/// head rows alone rarely decide a window, so checking earlier only adds
/// branch overhead.
const CASCADE_WARMUP_ROWS: usize = 4;

/// C4 detector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct C4DetectorConfig {
    /// Fixed internal processing width.
    pub internal_w: usize,
    /// Fixed internal processing height.
    pub internal_h: usize,
    /// Scales applied to the internal image.
    pub scales: ScaleSchedule,
    /// Window stride in internal pixels.
    pub stride: usize,
    /// Candidates below this raw score are dropped before NMS.
    pub keep_floor: f64,
    /// NMS IoU threshold.
    pub nms_iou: f64,
    /// SVM hyper-parameters.
    pub svm: SvmConfig,
    /// Training-set synthesis.
    pub training: TrainingConfig,
    /// Hard-negative mining rounds: after the initial fit, extra negative
    /// windows are synthesized, the ones the current model mis-scores are
    /// added to the training set, and the SVM is refit (the bootstrapping
    /// step of the original C4/INRIA training protocols). `0` disables.
    pub hard_negative_rounds: usize,
    /// Candidate negatives synthesized per mining round.
    pub hard_negative_pool: usize,
}

impl Default for C4DetectorConfig {
    fn default() -> Self {
        C4DetectorConfig {
            internal_w: 320,
            internal_h: 240,
            scales: ScaleSchedule {
                min_scale: 0.3,
                max_scale: 1.35,
                ratio: 1.25,
            },
            stride: 2,
            keep_floor: -0.3,
            nms_iou: 0.35,
            svm: SvmConfig {
                lambda: 1e-4,
                epochs: 40,
                seed: 41,
            },
            training: TrainingConfig {
                positives: 300,
                negatives: 500,
                regime: NegativeRegime::WithClutter,
                seed: 51,
            },
            hard_negative_rounds: 2,
            hard_negative_pool: 600,
        }
    }
}

/// A trained C4 detector.
#[derive(Debug, Clone)]
pub struct C4Detector {
    config: C4DetectorConfig,
    svm: LinearSvm,
    /// The enumerated scale schedule, cached at training time so `detect`
    /// only filters it per frame instead of re-deriving it.
    scale_levels: Vec<f64>,
    /// Precomputed scan tables derived from the trained SVM.
    scan: C4ScanTables,
}

/// Precomputed tables for the sliding-window scan.
///
/// Hoists the per-pixel tile-index divisions of the reference scorer into
/// per-row/per-column weight offsets, and pairs them with a conservative
/// early-reject bound so the scan can abandon hopeless windows mid-window
/// without ever changing which windows survive or their scores.
#[derive(Debug, Clone)]
struct C4ScanTables {
    /// Weight base offset of window row `y`: `ty(y) · TILES_X · CENSUS_BINS`.
    /// (The column offset needs no table: `TILES_X` divides `WINDOW_W`, so
    /// the scan walks each row in tile-width chunks.)
    row_off: [usize; WINDOW_H],
    /// `remaining[y]` bounds (from above, including float slack) the
    /// contribution rows `y..` can still add to the raw accumulator.
    remaining: [f64; WINDOW_H + 1],
    /// Accumulator-space keep floor: a window whose upper bound stays below
    /// this is provably below `keep_floor` after the `/TILE_PIXELS + bias`
    /// finish, so it can be rejected without finishing the sum.
    acc_floor: f64,
}

impl C4ScanTables {
    fn build(svm: &LinearSvm, config: &C4DetectorConfig) -> C4ScanTables {
        let mut row_off = [0usize; WINDOW_H];
        for (y, off) in row_off.iter_mut().enumerate() {
            *off = (y * TILES_Y / WINDOW_H).min(TILES_Y - 1) * TILES_X * CENSUS_BINS;
        }
        let w = svm.weights();
        let max_abs = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        // Per-row ceiling: the best weight any census code could select,
        // summed over the row's columns (each tile column covers
        // WINDOW_W / TILES_X pixels).
        let mut row_max = [0.0f64; WINDOW_H];
        for y in 0..WINDOW_H {
            row_max[y] = (0..TILES_X)
                .map(|tx| {
                    let base = row_off[y] + tx * CENSUS_BINS;
                    let best = w[base..base + CENSUS_BINS]
                        .iter()
                        .fold(f64::NEG_INFINITY, |m, &v| m.max(v));
                    best * (WINDOW_W / TILES_X) as f64
                })
                .sum();
        }
        // Slack absorbing the non-associativity of the running f64 sum: the
        // worst-case drift of an n-term fold is below n²·ε·max|w|; inflate
        // ×4 for headroom. Rejection must only ever be *more* conservative
        // than exact arithmetic.
        let n = (WINDOW_W * WINDOW_H) as f64;
        let slack = 4.0 * n * n * f64::EPSILON * max_abs.max(1.0);
        let mut remaining = [0.0f64; WINDOW_H + 1];
        for y in (0..WINDOW_H).rev() {
            remaining[y] = remaining[y + 1] + row_max[y];
        }
        for r in remaining.iter_mut() {
            *r += slack;
        }
        // Extra 1e-9 score-space margin dwarfs the rounding of this one
        // product (and of the final /TILE_PIXELS + bias the scan performs).
        let acc_floor = (config.keep_floor - svm.bias() - 1e-9) * TILE_PIXELS;
        C4ScanTables {
            row_off,
            remaining,
            acc_floor,
        }
    }
}

impl C4Detector {
    /// Trains the detector on synthesized windows.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Training`] if SVM training fails.
    pub fn train(config: C4DetectorConfig) -> Result<C4Detector> {
        let windows = synthesize(&config.training);
        let mut examples = Vec::new();
        for (imgs, label) in [(&windows.positives, 1.0), (&windows.negatives, -1.0)] {
            for img in imgs.iter() {
                let gray = img.to_gray();
                let census = census_transform(&gray);
                let feat = window_census_histogram(&census, 0, 0, WINDOW_W, WINDOW_H);
                examples.push(Example {
                    features: feat,
                    label,
                });
            }
        }
        let mut svm = LinearSvm::train(&examples, &config.svm)
            .map_err(|e| DetectError::Training(format!("c4 svm: {e}")))?;

        // Hard-negative mining (bootstrapping): synthesize fresh negatives,
        // keep the ones the current model scores as near-positives, refit.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.training.seed.wrapping_add(0xC4));
        use rand::RngExt;
        let mut feat_buf = Vec::new();
        for round in 0..config.hard_negative_rounds {
            let mut mined = 0usize;
            for _ in 0..config.hard_negative_pool {
                let clutter =
                    config.training.regime == NegativeRegime::WithClutter && rng.random_bool(0.33);
                let img = crate::training::negative_window(&mut rng, clutter);
                let census = census_transform(&img.to_gray());
                // Most candidates are confident negatives that get thrown
                // away, so build the histogram in a reused buffer and only
                // clone the margin violators into the training set.
                window_census_histogram_into(&census, 0, 0, WINDOW_W, WINDOW_H, &mut feat_buf);
                if svm.score(&feat_buf) > -0.5 {
                    examples.push(Example {
                        features: feat_buf.clone(),
                        label: -1.0,
                    });
                    mined += 1;
                }
            }
            if mined == 0 {
                break;
            }
            let refit_cfg = SvmConfig {
                seed: config.svm.seed.wrapping_add(round as u64 + 1),
                ..config.svm
            };
            svm = LinearSvm::train(&examples, &refit_cfg)
                .map_err(|e| DetectError::Training(format!("c4 svm refit: {e}")))?;
        }
        Self::from_svm(config, svm)
    }

    /// Builds a detector around an already-trained SVM whose weights have
    /// the tiled-histogram dimension ([`C4_FEATURE_DIM`]). The equivalence
    /// battery uses this to probe arbitrary weight vectors without paying
    /// for training.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidArgument`] on a dimension mismatch.
    pub fn from_svm(config: C4DetectorConfig, svm: LinearSvm) -> Result<C4Detector> {
        if svm.weights().len() != C4_FEATURE_DIM {
            return Err(DetectError::InvalidArgument(format!(
                "c4 svm weight dim {} != {C4_FEATURE_DIM}",
                svm.weights().len()
            )));
        }
        let scale_levels = config.scales.scales();
        let scan = C4ScanTables::build(&svm, &config);
        Ok(C4Detector {
            config,
            svm,
            scale_levels,
            scan,
        })
    }

    /// The configuration used at training time.
    pub fn config(&self) -> &C4DetectorConfig {
        &self.config
    }

    /// Direct window scoring: equivalent to building the tiled census
    /// histogram and applying the linear SVM, in one pass over the window
    /// pixels.
    ///
    /// This is the pre-optimization scorer, kept verbatim as the oracle for
    /// [`C4Detector::scan_window`]: the optimized scan must reproduce its
    /// result bit for bit on every accepted window.
    pub fn score_window_reference(&self, census: &GrayImage, x0: usize, y0: usize) -> f64 {
        let w = self.svm.weights();
        let mut acc = 0.0;
        for y in 0..WINDOW_H {
            let ty = (y * TILES_Y / WINDOW_H).min(TILES_Y - 1);
            for x in 0..WINDOW_W {
                let tx = (x * TILES_X / WINDOW_W).min(TILES_X - 1);
                let code = (census.get(x0 + x, y0 + y) as usize).min(CENSUS_BINS - 1);
                acc += w[(ty * TILES_X + tx) * CENSUS_BINS + code];
            }
        }
        acc / TILE_PIXELS + self.svm.bias()
    }

    /// Optimized window scoring over a precomputed code plane, with early
    /// rejection.
    ///
    /// Accumulates weights in exactly the reference order (row-major over
    /// the window), so a returned score is bit-identical to
    /// [`C4Detector::score_window_reference`]. Between rows it compares the
    /// partial sum plus the precomputed conservative remainder bound
    /// against the keep floor; `None` means the bound *proved* the final
    /// score falls below `keep_floor`, i.e. the reference path would have
    /// discarded this window anyway.
    #[inline]
    pub fn scan_window(&self, codes: &CensusCodePlane, x0: usize, y0: usize) -> Option<f64> {
        let w = self.svm.weights();
        let t = &self.scan;
        let mut acc = 0.0f64;
        for y in 0..WINDOW_H {
            let base = t.row_off[y];
            let wrow = &w[base..base + TILES_X * CENSUS_BINS];
            let row = codes.row(x0, y0 + y, WINDOW_W);
            // TILES_X divides WINDOW_W, so walking the row in
            // (WINDOW_W / TILES_X)-wide chunks visits the same weight per
            // pixel as `col_off` (tile tx = chunk index) while letting the
            // `code < CENSUS_BINS` range of `u8` elide the bounds check on
            // the 256-entry tile slice. Accumulation order is unchanged
            // (columns left to right).
            for (tx, chunk) in row.chunks_exact(WINDOW_W / TILES_X).enumerate() {
                let wtile = &wrow[tx * CENSUS_BINS..(tx + 1) * CENSUS_BINS];
                for &code in chunk {
                    acc += wtile[code as usize];
                }
            }
            let next = y + 1;
            if (CASCADE_WARMUP_ROWS..WINDOW_H).contains(&next)
                && acc + t.remaining[next] < t.acc_floor
            {
                return None;
            }
        }
        Some(acc / TILE_PIXELS + self.svm.bias())
    }

    /// The pre-optimization detection loop, kept verbatim (fresh cache,
    /// reference scorer, allocating NMS) as the equivalence oracle for
    /// `detect`: same detections, same scores, same `ops`.
    pub fn detect_reference(&self, frame: &RgbImage) -> DetectionOutput {
        let cache = FrameFeatures::new(frame);
        let (iw, ih) = (self.config.internal_w, self.config.internal_h);
        let mut ops = (frame.width() * frame.height()) as u64 * 2;
        if cache.resized_gray(iw, ih).is_err() {
            return DetectionOutput {
                detections: Vec::new(),
                ops,
            };
        }
        let fx = frame.width() as f64 / iw as f64;
        let fy = frame.height() as f64 / ih as f64;

        let mut candidates = Vec::new();
        for scale in ScaleSchedule::usable_from(&self.scale_levels, iw, ih) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, iw, ih);
            let Ok(census) = cache.census_level(iw, ih, sw, sh) else {
                continue;
            };
            ops += (sw * sh) as u64 * 9;
            let stride = self.config.stride.max(1);
            let mut y0 = 0;
            while y0 + WINDOW_H <= sh {
                let mut x0 = 0;
                while x0 + WINDOW_W <= sw {
                    ops += (WINDOW_W * WINDOW_H) as u64;
                    let score = self.score_window_reference(&census, x0, y0);
                    if score >= self.config.keep_floor {
                        let ox0 = x0 as f64 / scale * fx;
                        let oy0 = y0 as f64 / scale * fy;
                        candidates.push(Detection {
                            bbox: BBox::new(
                                ox0,
                                oy0,
                                ox0 + WINDOW_W as f64 / scale * fx,
                                oy0 + WINDOW_H as f64 / scale * fy,
                            ),
                            score,
                        });
                    }
                    x0 += stride;
                }
                y0 += stride;
            }
        }
        DetectionOutput {
            detections: non_maximum_suppression(candidates, self.config.nms_iou),
            ops,
        }
    }

    /// Scans `frame` exactly like `detect` and reports
    /// `(windows, rejected)`: windows visited and how many the cascade
    /// bound abandoned early. Diagnostic only (the bench layer records the
    /// reject ratio); detection output is unaffected by rejection.
    pub fn cascade_stats(&self, frame: &RgbImage) -> (u64, u64) {
        let cache = FrameFeatures::new(frame);
        let (iw, ih) = (self.config.internal_w, self.config.internal_h);
        if cache.resized_gray(iw, ih).is_err() {
            return (0, 0);
        }
        let (mut windows, mut rejected) = (0u64, 0u64);
        for scale in ScaleSchedule::usable_from(&self.scale_levels, iw, ih) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, iw, ih);
            let Ok(codes) = cache.census_codes(iw, ih, sw, sh) else {
                continue;
            };
            let stride = self.config.stride.max(1);
            let mut y0 = 0;
            while y0 + WINDOW_H <= sh {
                let mut x0 = 0;
                while x0 + WINDOW_W <= sw {
                    windows += 1;
                    if self.scan_window(&codes, x0, y0).is_none() {
                        rejected += 1;
                    }
                    x0 += stride;
                }
                y0 += stride;
            }
        }
        (windows, rejected)
    }
}

/// Comparison margin of the census transform: neighbors must be darker by
/// at least this much to set a bit, which keeps sensor noise on flat
/// regions from producing random codes.
pub const CENSUS_MARGIN: f32 = 0.02;

/// The 8-neighbor census transform: each pixel becomes an 8-bit code of
/// "is my neighbor darker than me (by the noise margin)" comparisons —
/// pure local contour shape.
pub fn census_transform(img: &GrayImage) -> GrayImage {
    let (w, h) = (img.width(), img.height());
    GrayImage::from_fn(w, h, |x, y| {
        let c = img.get(x, y);
        let mut code = 0u32;
        let mut bit = 0;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let n = img.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                if n < c - CENSUS_MARGIN {
                    code |= 1 << bit;
                }
                bit += 1;
            }
        }
        code as f32
    })
}

/// The tiled census histogram of a window: `TILES_X × TILES_Y` tiles, each
/// a 256-bin code histogram, L1-normalized per tile.
pub fn window_census_histogram(
    census: &GrayImage,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
) -> Vec<f64> {
    let mut hist = Vec::new();
    window_census_histogram_into(census, x0, y0, w, h, &mut hist);
    hist
}

/// [`window_census_histogram`] into a caller-owned buffer: `hist` is
/// cleared and refilled, keeping its capacity, so training/mining loops
/// that score thousands of windows reuse one allocation.
pub fn window_census_histogram_into(
    census: &GrayImage,
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    hist: &mut Vec<f64>,
) {
    hist.clear();
    hist.resize(C4_FEATURE_DIM, 0.0);
    for y in 0..h {
        let ty = (y * TILES_Y / h).min(TILES_Y - 1);
        for x in 0..w {
            let tx = (x * TILES_X / w).min(TILES_X - 1);
            let code = (census.get(x0 + x, y0 + y) as usize).min(CENSUS_BINS - 1);
            hist[(ty * TILES_X + tx) * CENSUS_BINS + code] += 1.0;
        }
    }
    // Per-tile L1 normalization.
    for tile in hist.chunks_mut(CENSUS_BINS) {
        let total: f64 = tile.iter().sum();
        if total > 0.0 {
            for v in tile {
                *v /= total;
            }
        }
    }
}

impl Detector for C4Detector {
    fn algorithm(&self) -> AlgorithmId {
        AlgorithmId::C4
    }

    fn detect(&self, frame: &RgbImage) -> DetectionOutput {
        self.detect_with_cache(frame, &FrameFeatures::new(frame))
    }

    fn detect_with_cache(&self, frame: &RgbImage, cache: &FrameFeatures<'_>) -> DetectionOutput {
        let (iw, ih) = (self.config.internal_w, self.config.internal_h);
        // Resize to the fixed internal resolution: the only step whose cost
        // depends on the input resolution.
        let mut ops = (frame.width() * frame.height()) as u64 * 2;
        if cache.resized_gray(iw, ih).is_err() {
            return DetectionOutput {
                detections: Vec::new(),
                ops,
            };
        }
        // Back-projection factors internal → original pixels.
        let fx = frame.width() as f64 / iw as f64;
        let fy = frame.height() as f64 / ih as f64;

        let mut candidates = Vec::new();
        for scale in ScaleSchedule::usable_from(&self.scale_levels, iw, ih) {
            let (sw, sh) = ScaleSchedule::level_dims(scale, iw, ih);
            // The census level is keyed on the internal resolution too: a
            // resize *through* the internal image is not the same image as
            // a direct resize, and the failure point (the second resize)
            // precedes the ops increment exactly as in the direct path.
            let Ok(codes) = cache.census_codes(iw, ih, sw, sh) else {
                continue;
            };
            ops += (sw * sh) as u64 * 9; // resize + 8-comparison census
            let stride = self.config.stride.max(1);
            let mut y0 = 0;
            while y0 + WINDOW_H <= sh {
                let mut x0 = 0;
                while x0 + WINDOW_W <= sw {
                    // Direct scoring: because the census histogram is a
                    // (normalized) count vector, w·h(x) folds into one
                    // weight lookup per window pixel. The modeled cost is
                    // the full window regardless of early rejection — the
                    // cascade is a host-simulation speedup, not a change to
                    // the camera's energy model.
                    ops += (WINDOW_W * WINDOW_H) as u64;
                    if let Some(score) = self.scan_window(&codes, x0, y0) {
                        if score >= self.config.keep_floor {
                            let ox0 = x0 as f64 / scale * fx;
                            let oy0 = y0 as f64 / scale * fy;
                            candidates.push(Detection {
                                bbox: BBox::new(
                                    ox0,
                                    oy0,
                                    ox0 + WINDOW_W as f64 / scale * fx,
                                    oy0 + WINDOW_H as f64 / scale * fy,
                                ),
                                score,
                            });
                        }
                    }
                    x0 += stride;
                }
                y0 += stride;
            }
        }
        nms_in_place(&mut candidates, self.config.nms_iou);
        DetectionOutput {
            detections: candidates,
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_vision::draw;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_config() -> C4DetectorConfig {
        C4DetectorConfig {
            internal_w: 160,
            internal_h: 120,
            stride: 3,
            training: TrainingConfig {
                positives: 80,
                negatives: 120,
                regime: NegativeRegime::Clean,
                seed: 4,
            },
            svm: SvmConfig {
                epochs: 25,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn scene_with_person(w: usize, h: usize, px: f64, py: f64, ph: f64) -> RgbImage {
        let mut img = RgbImage::new(w, h);
        draw::vertical_gradient(&mut img, [0.6, 0.6, 0.58], [0.35, 0.35, 0.33]);
        let pw = ph / 3.0;
        draw::draw_human(
            &mut img,
            px - pw / 2.0,
            py - ph,
            px + pw / 2.0,
            py,
            [0.3, 0.7, 0.3],
            [0.85, 0.65, 0.5],
        );
        let mut rng = StdRng::seed_from_u64(9);
        draw::add_noise(&mut img, 0.02, &mut rng);
        img
    }

    #[test]
    fn census_code_range() {
        let img = GrayImage::from_fn(8, 8, |x, y| ((x * 5 + y * 3) % 7) as f32 / 7.0);
        let c = census_transform(&img);
        for &v in c.as_slice() {
            assert!((0.0..256.0).contains(&v));
        }
    }

    #[test]
    fn census_flat_image_is_zero() {
        let img = GrayImage::filled(8, 8, 0.5);
        let c = census_transform(&img);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn census_is_illumination_invariant() {
        // Census compares neighbors, so a global gain leaves codes intact.
        let a = GrayImage::from_fn(10, 10, |x, y| ((x * y) % 5) as f32 / 10.0);
        let b = GrayImage::from_fn(10, 10, |x, y| ((x * y) % 5) as f32 / 20.0);
        assert_eq!(census_transform(&a), census_transform(&b));
    }

    #[test]
    fn histogram_tiles_normalized() {
        let img = GrayImage::from_fn(32, 64, |x, y| ((x + y) % 9) as f32 / 9.0);
        let census = census_transform(&img);
        let h = window_census_histogram(&census, 0, 0, 32, 64);
        assert_eq!(h.len(), TILES_X * TILES_Y * CENSUS_BINS);
        for tile in h.chunks(CENSUS_BINS) {
            let sum: f64 = tile.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn detects_a_person() {
        let det = C4Detector::train(quick_config()).unwrap();
        let img = scene_with_person(160, 120, 80.0, 105.0, 60.0);
        let out = det.detect(&img);
        assert!(!out.detections.is_empty());
        let (cx, _) = out.detections[0].bbox.center();
        assert!((cx - 80.0).abs() < 25.0, "best at x={cx}");
    }

    #[test]
    fn cost_nearly_resolution_independent() {
        let det = C4Detector::train(quick_config()).unwrap();
        let small = scene_with_person(160, 120, 80.0, 100.0, 60.0);
        let large = scene_with_person(640, 480, 320.0, 400.0, 240.0);
        let o_small = det.detect(&small).ops;
        let o_large = det.detect(&large).ops;
        // A 16× pixel increase should cost well under 2× (only the initial
        // resize scales).
        assert!(
            o_large < o_small * 2,
            "C4 cost should be ~flat: {o_small} vs {o_large}"
        );
    }

    #[test]
    fn algorithm_id() {
        let det = C4Detector::train(quick_config()).unwrap();
        assert_eq!(det.algorithm(), AlgorithmId::C4);
    }

    #[test]
    fn from_svm_rejects_bad_dimension() {
        let err = C4Detector::from_svm(quick_config(), LinearSvm::from_parts(vec![0.0; 7], 0.1));
        assert!(matches!(err, Err(DetectError::InvalidArgument(_))));
    }

    #[test]
    fn histogram_into_matches_owned() {
        let img = GrayImage::from_fn(24, 56, |x, y| ((x * 3 + y) % 11) as f32 / 11.0);
        let census = census_transform(&img);
        let want = window_census_histogram(&census, 4, 2, WINDOW_W, WINDOW_H);
        let mut buf = vec![9.0; 3]; // stale contents must be ignored
        window_census_histogram_into(&census, 4, 2, WINDOW_W, WINDOW_H, &mut buf);
        assert_eq!(want.len(), buf.len());
        for (a, b) in want.iter().zip(&buf) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Random-weight detector over a textured level: every accepted window
    /// must score bit-identically to the reference scorer, and every
    /// rejected window must truly fall below the keep floor.
    #[test]
    fn scan_window_bit_identical_and_sound() {
        use crate::kernels::CensusCodePlane;
        let mut rng = StdRng::seed_from_u64(77);
        use rand::RngExt;
        let weights: Vec<f64> = (0..C4_FEATURE_DIM)
            .map(|_| rng.random_range(-1.0..1.0))
            .collect();
        let det =
            C4Detector::from_svm(quick_config(), LinearSvm::from_parts(weights, 0.05)).unwrap();
        let img = GrayImage::from_fn(80, 90, |x, y| ((x * 7 + y * 13) % 23) as f32 / 23.0);
        let census = census_transform(&img);
        let codes = CensusCodePlane::from_census(&census);
        let (mut accepted, mut rejected) = (0, 0);
        for y0 in (0..=90 - WINDOW_H).step_by(3) {
            for x0 in (0..=80 - WINDOW_W).step_by(3) {
                let want = det.score_window_reference(&census, x0, y0);
                match det.scan_window(&codes, x0, y0) {
                    Some(got) => {
                        assert_eq!(got.to_bits(), want.to_bits(), "at ({x0},{y0})");
                        accepted += 1;
                    }
                    None => {
                        assert!(
                            want < det.config.keep_floor,
                            "unsound reject at ({x0},{y0}): {want}"
                        );
                        rejected += 1;
                    }
                }
            }
        }
        assert!(accepted + rejected > 0);
    }

    #[test]
    fn detect_matches_reference_bitwise() {
        let det = C4Detector::train(quick_config()).unwrap();
        for frame in [
            scene_with_person(160, 120, 80.0, 105.0, 60.0),
            scene_with_person(200, 150, 50.0, 120.0, 80.0),
        ] {
            let got = det.detect(&frame);
            let want = det.detect_reference(&frame);
            assert_eq!(got.ops, want.ops);
            assert_eq!(got.detections.len(), want.detections.len());
            for (a, b) in got.detections.iter().zip(&want.detections) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.bbox, b.bbox);
            }
        }
    }

    #[test]
    fn cascade_rejects_some_windows_on_a_real_model() {
        let det = C4Detector::train(quick_config()).unwrap();
        let frame = scene_with_person(160, 120, 80.0, 105.0, 60.0);
        let (windows, rejected) = det.cascade_stats(&frame);
        assert!(windows > 0);
        // Not an output guarantee — just confirms the bound is tight enough
        // to fire at all on a trained model over a realistic scene.
        assert!(rejected > 0, "cascade never fired over {windows} windows");
    }

    #[test]
    fn hard_negative_mining_reduces_background_scores() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let plain = C4Detector::train(C4DetectorConfig {
            hard_negative_rounds: 0,
            ..quick_config()
        })
        .unwrap();
        let mined = C4Detector::train(C4DetectorConfig {
            hard_negative_rounds: 2,
            hard_negative_pool: 300,
            ..quick_config()
        })
        .unwrap();
        // Score a pool of fresh negatives with both models: mining should
        // lower the mean negative score (fewer near-positives).
        let mut rng = StdRng::seed_from_u64(999);
        let mean = |det: &C4Detector, rng: &mut StdRng| -> f64 {
            let mut total = 0.0;
            for _ in 0..40 {
                let img = crate::training::negative_window(rng, false);
                let census = census_transform(&img.to_gray());
                let feat = window_census_histogram(&census, 0, 0, WINDOW_W, WINDOW_H);
                total += det.svm.score(&feat);
            }
            total / 40.0
        };
        let mut rng2 = StdRng::seed_from_u64(999);
        let plain_mean = mean(&plain, &mut rng);
        let mined_mean = mean(&mined, &mut rng2);
        assert!(
            mined_mean < plain_mean,
            "mining should push negatives down: {mined_mean} vs {plain_mean}"
        );
    }
}
