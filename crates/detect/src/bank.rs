//! The detector bank: all four trained algorithms, as installed on each
//! camera node (Section V-A: "Each node is pre-installed with 4 different
//! human detection algorithms").

use crate::acf_detector::{AcfDetector, AcfDetectorConfig};
use crate::c4_detector::{C4Detector, C4DetectorConfig};
use crate::detection::{AlgorithmId, DetectionOutput};
use crate::frame_features::FrameFeatures;
use crate::hog_detector::{HogDetectorConfig, HogSvmDetector};
use crate::lsvm_detector::{LsvmDetector, LsvmDetectorConfig};
use crate::{Detector, Result};
use eecs_vision::image::RgbImage;
use std::sync::Arc;

/// The four trained detectors a camera carries.
///
/// Training all four takes a few seconds; banks are meant to be built once
/// and shared (hence the `Arc` accessors).
#[derive(Clone)]
pub struct DetectorBank {
    hog: Arc<HogSvmDetector>,
    acf: Arc<AcfDetector>,
    c4: Arc<C4Detector>,
    lsvm: Arc<LsvmDetector>,
}

impl std::fmt::Debug for DetectorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DetectorBank(HOG, ACF, C4, LSVM)")
    }
}

impl DetectorBank {
    /// Trains all four detectors with their default configurations.
    ///
    /// # Errors
    ///
    /// Propagates any detector's training failure.
    pub fn train_default() -> Result<DetectorBank> {
        DetectorBank::train(
            HogDetectorConfig::default(),
            AcfDetectorConfig::default(),
            C4DetectorConfig::default(),
            LsvmDetectorConfig::default(),
        )
    }

    /// Trains all four detectors with explicit configurations.
    ///
    /// # Errors
    ///
    /// Propagates any detector's training failure.
    pub fn train(
        hog: HogDetectorConfig,
        acf: AcfDetectorConfig,
        c4: C4DetectorConfig,
        lsvm: LsvmDetectorConfig,
    ) -> Result<DetectorBank> {
        Ok(DetectorBank {
            hog: Arc::new(HogSvmDetector::train(hog)?),
            acf: Arc::new(AcfDetector::train(acf)?),
            c4: Arc::new(C4Detector::train(c4)?),
            lsvm: Arc::new(LsvmDetector::train(lsvm)?),
        })
    }

    /// A fast-training bank for tests and examples: smaller training sets
    /// and fewer boosting rounds, same structure.
    ///
    /// # Errors
    ///
    /// Propagates any detector's training failure.
    pub fn train_quick(seed: u64) -> Result<DetectorBank> {
        use crate::training::{NegativeRegime, TrainingConfig};
        let tc = |regime, s| TrainingConfig {
            positives: 90,
            negatives: 140,
            regime,
            seed: s,
        };
        DetectorBank::train(
            HogDetectorConfig {
                training: tc(NegativeRegime::Clean, seed),
                ..Default::default()
            },
            AcfDetectorConfig {
                rounds: 48,
                training: tc(NegativeRegime::WithClutter, seed + 1),
                ..Default::default()
            },
            C4DetectorConfig {
                training: tc(NegativeRegime::Clean, seed + 2),
                hard_negative_rounds: 1,
                hard_negative_pool: 200,
                ..Default::default()
            },
            LsvmDetectorConfig {
                training: tc(NegativeRegime::WithClutter, seed + 3),
                ..Default::default()
            },
        )
    }

    /// The detector implementing `algorithm`.
    pub fn detector(&self, algorithm: AlgorithmId) -> &dyn Detector {
        match algorithm {
            AlgorithmId::Hog => self.hog.as_ref(),
            AlgorithmId::Acf => self.acf.as_ref(),
            AlgorithmId::C4 => self.c4.as_ref(),
            AlgorithmId::Lsvm => self.lsvm.as_ref(),
        }
    }

    /// All four detectors in table order.
    pub fn all(&self) -> [(AlgorithmId, &dyn Detector); 4] {
        [
            (AlgorithmId::Hog, self.hog.as_ref() as &dyn Detector),
            (AlgorithmId::Acf, self.acf.as_ref() as &dyn Detector),
            (AlgorithmId::C4, self.c4.as_ref() as &dyn Detector),
            (AlgorithmId::Lsvm, self.lsvm.as_ref() as &dyn Detector),
        ]
    }

    /// Runs several algorithms on the same frame, in order. With
    /// `share_features` the detectors share one [`FrameFeatures`] cache —
    /// outputs (detections *and* per-algorithm `ops`) are identical either
    /// way; sharing only removes redundant host computation.
    pub fn run_algorithms(
        &self,
        algorithms: &[AlgorithmId],
        frame: &RgbImage,
        share_features: bool,
    ) -> Vec<DetectionOutput> {
        if share_features {
            let cache = FrameFeatures::new(frame);
            algorithms
                .iter()
                .map(|&a| self.detector(a).detect_with_cache(frame, &cache))
                .collect()
        } else {
            algorithms
                .iter()
                .map(|&a| self.detector(a).detect(frame))
                .collect()
        }
    }

    /// The HOG detector.
    pub fn hog(&self) -> &HogSvmDetector {
        &self.hog
    }

    /// The ACF detector.
    pub fn acf(&self) -> &AcfDetector {
        &self.acf
    }

    /// The C4 detector.
    pub fn c4(&self) -> &C4Detector {
        &self.c4
    }

    /// The LSVM detector.
    pub fn lsvm(&self) -> &LsvmDetector {
        &self.lsvm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bank_trains_and_dispatches() {
        let bank = DetectorBank::train_quick(1).unwrap();
        for (id, det) in bank.all() {
            assert_eq!(det.algorithm(), id);
        }
        assert_eq!(bank.detector(AlgorithmId::C4).algorithm(), AlgorithmId::C4);
    }

    #[test]
    fn bank_is_cheaply_cloneable() {
        let bank = DetectorBank::train_quick(2).unwrap();
        let clone = bank.clone();
        // Arc sharing: same underlying detector.
        assert!(std::ptr::eq(bank.hog(), clone.hog()));
    }
}
