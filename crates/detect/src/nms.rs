//! Greedy non-maximum suppression.

use crate::detection::Detection;

/// Suppresses detections that overlap a higher-scoring detection by more
/// than `iou_threshold`. Returns survivors sorted by descending score.
pub fn non_maximum_suppression(
    mut detections: Vec<Detection>,
    iou_threshold: f64,
) -> Vec<Detection> {
    detections.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    let mut keep: Vec<Detection> = Vec::with_capacity(detections.len());
    for d in detections {
        if keep.iter().all(|k| k.bbox.iou(&d.bbox) <= iou_threshold) {
            keep.push(d);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::BBox;

    fn det(x: f64, score: f64) -> Detection {
        Detection {
            bbox: BBox::new(x, 0.0, x + 10.0, 20.0),
            score,
        }
    }

    #[test]
    fn overlapping_lower_scores_suppressed() {
        let dets = vec![det(0.0, 1.0), det(1.0, 0.9), det(2.0, 0.8)];
        let kept = non_maximum_suppression(dets, 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 1.0);
    }

    #[test]
    fn distant_detections_kept() {
        let dets = vec![det(0.0, 1.0), det(50.0, 0.9)];
        let kept = non_maximum_suppression(dets, 0.5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn result_sorted_by_score() {
        let dets = vec![det(50.0, 0.5), det(0.0, 1.0), det(100.0, 0.8)];
        let kept = non_maximum_suppression(dets, 0.5);
        let scores: Vec<f64> = kept.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![1.0, 0.8, 0.5]);
    }

    #[test]
    fn threshold_one_keeps_everything() {
        let dets = vec![det(0.0, 1.0), det(0.0, 0.9)];
        assert_eq!(non_maximum_suppression(dets, 1.0).len(), 2);
    }

    #[test]
    fn threshold_zero_keeps_only_disjoint() {
        let dets = vec![det(0.0, 1.0), det(9.0, 0.9), det(30.0, 0.8)];
        let kept = non_maximum_suppression(dets, 0.0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input_ok() {
        assert!(non_maximum_suppression(vec![], 0.5).is_empty());
    }
}
