//! Greedy non-maximum suppression.

use crate::detection::Detection;

/// Suppresses detections that overlap a higher-scoring detection by more
/// than `iou_threshold`. Returns survivors sorted by descending score.
pub fn non_maximum_suppression(
    mut detections: Vec<Detection>,
    iou_threshold: f64,
) -> Vec<Detection> {
    nms_in_place(&mut detections, iou_threshold);
    detections
}

/// In-place greedy NMS: the detector hot paths call this on their reused
/// candidate buffer so suppression allocates nothing.
///
/// Identical semantics to [`non_maximum_suppression`] (same stable sort by
/// descending score, same greedy keep-order): after the call `detections`
/// holds exactly the survivors the allocating variant would have returned,
/// in the same order.
pub fn nms_in_place(detections: &mut Vec<Detection>, iou_threshold: f64) {
    detections.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    let mut kept = 0usize;
    for i in 0..detections.len() {
        // The kept prefix [0, kept) plays the role of the old `keep` Vec:
        // candidates arrive in the same (sorted) order and are compared
        // against the same survivors.
        let d = detections[i].clone();
        if detections[..kept]
            .iter()
            .all(|k| k.bbox.iou(&d.bbox) <= iou_threshold)
        {
            detections[kept] = d;
            kept += 1;
        }
    }
    detections.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::BBox;

    fn det(x: f64, score: f64) -> Detection {
        Detection {
            bbox: BBox::new(x, 0.0, x + 10.0, 20.0),
            score,
        }
    }

    #[test]
    fn overlapping_lower_scores_suppressed() {
        let dets = vec![det(0.0, 1.0), det(1.0, 0.9), det(2.0, 0.8)];
        let kept = non_maximum_suppression(dets, 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 1.0);
    }

    #[test]
    fn distant_detections_kept() {
        let dets = vec![det(0.0, 1.0), det(50.0, 0.9)];
        let kept = non_maximum_suppression(dets, 0.5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn result_sorted_by_score() {
        let dets = vec![det(50.0, 0.5), det(0.0, 1.0), det(100.0, 0.8)];
        let kept = non_maximum_suppression(dets, 0.5);
        let scores: Vec<f64> = kept.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![1.0, 0.8, 0.5]);
    }

    #[test]
    fn threshold_one_keeps_everything() {
        let dets = vec![det(0.0, 1.0), det(0.0, 0.9)];
        assert_eq!(non_maximum_suppression(dets, 1.0).len(), 2);
    }

    #[test]
    fn threshold_zero_keeps_only_disjoint() {
        let dets = vec![det(0.0, 1.0), det(9.0, 0.9), det(30.0, 0.8)];
        let kept = non_maximum_suppression(dets, 0.0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input_ok() {
        assert!(non_maximum_suppression(vec![], 0.5).is_empty());
    }

    /// The pre-optimization implementation, kept as an oracle: sort, then
    /// push survivors into a fresh `keep` vector.
    fn nms_oracle(mut detections: Vec<Detection>, iou_threshold: f64) -> Vec<Detection> {
        detections.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        let mut keep: Vec<Detection> = Vec::with_capacity(detections.len());
        for d in detections {
            if keep.iter().all(|k| k.bbox.iou(&d.bbox) <= iou_threshold) {
                keep.push(d);
            }
        }
        keep
    }

    #[test]
    fn in_place_matches_allocating_oracle() {
        // Dense overlapping pile with score ties (stable sort order must
        // be preserved) across several thresholds.
        let mut dets = Vec::new();
        for i in 0..40 {
            let x = (i % 7) as f64 * 3.0;
            let y = (i / 7) as f64 * 5.0;
            dets.push(Detection {
                bbox: BBox::new(x, y, x + 12.0, y + 24.0),
                score: ((i * 13) % 5) as f64 / 5.0, // many ties
            });
        }
        for iou in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let want = nms_oracle(dets.clone(), iou);
            let mut got = dets.clone();
            nms_in_place(&mut got, iou);
            assert_eq!(got.len(), want.len(), "iou {iou}");
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.bbox, b.bbox);
            }
        }
    }
}
