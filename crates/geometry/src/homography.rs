//! 3×3 projective transforms and DLT estimation.
//!
//! The paper builds homographies between camera ground planes from landmark
//! correspondences (Section IV-C). We estimate them with the normalized
//! direct linear transform: the null vector of the 2n×9 design matrix,
//! obtained as the smallest eigenvector of `AᵀA`.

use crate::point::Point2;
use crate::{GeometryError, Result};
use eecs_linalg::eig::symmetric_eigen;
use eecs_linalg::solve::invert;
use eecs_linalg::Mat;

/// A 3×3 homography mapping `p ↦ H p` in homogeneous coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Homography {
    h: Mat,
}

impl Homography {
    /// The identity transform.
    pub fn identity() -> Homography {
        Homography {
            h: Mat::identity(3),
        }
    }

    /// Wraps an explicit 3×3 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not 3×3.
    pub fn from_matrix(h: Mat) -> Homography {
        assert_eq!(h.shape(), (3, 3), "homography must be 3x3");
        Homography { h }
    }

    /// Estimates the homography mapping each `src[i]` to `dst[i]` using the
    /// normalized DLT.
    ///
    /// # Errors
    ///
    /// * [`GeometryError::NotEnoughPoints`] with fewer than 4 pairs,
    /// * [`GeometryError::Degenerate`] for degenerate configurations
    ///   (e.g. collinear points).
    pub fn estimate(src: &[Point2], dst: &[Point2]) -> Result<Homography> {
        if src.len() != dst.len() || src.len() < 4 {
            return Err(GeometryError::NotEnoughPoints {
                needed: 4,
                got: src.len().min(dst.len()),
            });
        }
        // Hartley normalization: translate to centroid, scale to mean √2.
        let t_src = normalizing_transform(src)?;
        let t_dst = normalizing_transform(dst)?;
        let ns: Vec<Point2> = src.iter().map(|p| apply_mat(&t_src, p)).collect();
        let nd: Vec<Point2> = dst.iter().map(|p| apply_mat(&t_dst, p)).collect();

        // Build the 2n×9 DLT design matrix.
        let n = ns.len();
        let mut a = Mat::zeros(2 * n, 9);
        for i in 0..n {
            let (x, y) = (ns[i].x, ns[i].y);
            let (u, v) = (nd[i].x, nd[i].y);
            let r0 = 2 * i;
            for (j, val) in [-x, -y, -1.0, 0.0, 0.0, 0.0, u * x, u * y, u]
                .iter()
                .enumerate()
            {
                a[(r0, j)] = *val;
            }
            for (j, val) in [0.0, 0.0, 0.0, -x, -y, -1.0, v * x, v * y, v]
                .iter()
                .enumerate()
            {
                a[(r0 + 1, j)] = *val;
            }
        }
        // Null vector = eigenvector of AᵀA with the smallest eigenvalue.
        let ata = a
            .transpose_matmul(&a)
            .map_err(|e| GeometryError::Degenerate(e.to_string()))?;
        let eig = symmetric_eigen(&ata).map_err(|e| GeometryError::Degenerate(e.to_string()))?;
        // Degeneracy check: the second-smallest eigenvalue must clearly
        // dominate the smallest (unique null direction).
        let evs = &eig.eigenvalues;
        let smallest = evs[8].max(0.0);
        let second = evs[7].max(0.0);
        if second < 1e-9 {
            return Err(GeometryError::Degenerate(
                "multiple null directions: points are degenerate".into(),
            ));
        }
        let _ = smallest;
        let hvec = eig.eigenvectors.col(8);
        let hn = Mat::from_vec(3, 3, hvec);

        // Denormalize: H = T_dst⁻¹ · Hn · T_src.
        let t_dst_inv = invert(&t_dst).map_err(|e| GeometryError::Degenerate(e.to_string()))?;
        let mut h = t_dst_inv.matmul(&hn).matmul(&t_src);
        // Scale so h[2][2] = 1 when possible (canonical form).
        let scale = h[(2, 2)];
        if scale.abs() > 1e-12 {
            h = h.scale(1.0 / scale);
        }
        Ok(Homography { h })
    }

    /// Applies the homography to a point.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::Unprojectable`] if the point maps to
    /// infinity (`w ≈ 0`).
    pub fn apply(&self, p: &Point2) -> Result<Point2> {
        let w = self.h[(2, 0)] * p.x + self.h[(2, 1)] * p.y + self.h[(2, 2)];
        if w.abs() < 1e-12 {
            return Err(GeometryError::Unprojectable);
        }
        Ok(Point2::new(
            (self.h[(0, 0)] * p.x + self.h[(0, 1)] * p.y + self.h[(0, 2)]) / w,
            (self.h[(1, 0)] * p.x + self.h[(1, 1)] * p.y + self.h[(1, 2)]) / w,
        ))
    }

    /// The inverse homography.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::Degenerate`] if the matrix is singular.
    pub fn inverse(&self) -> Result<Homography> {
        let inv = invert(&self.h).map_err(|e| GeometryError::Degenerate(e.to_string()))?;
        Ok(Homography { h: inv })
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Homography) -> Homography {
        Homography {
            h: self.h.matmul(&other.h),
        }
    }

    /// The underlying 3×3 matrix.
    pub fn matrix(&self) -> &Mat {
        &self.h
    }

    /// Mean reprojection error over correspondence pairs (∞ if any point is
    /// unprojectable).
    pub fn reprojection_error(&self, src: &[Point2], dst: &[Point2]) -> f64 {
        if src.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (s, d) in src.iter().zip(dst) {
            match self.apply(s) {
                Ok(p) => total += p.distance(d),
                Err(_) => return f64::INFINITY,
            }
        }
        total / src.len() as f64
    }
}

/// Builds the Hartley normalization transform for a point set.
fn normalizing_transform(pts: &[Point2]) -> Result<Mat> {
    let n = pts.len() as f64;
    let cx = pts.iter().map(|p| p.x).sum::<f64>() / n;
    let cy = pts.iter().map(|p| p.y).sum::<f64>() / n;
    let mean_dist = pts
        .iter()
        .map(|p| ((p.x - cx).powi(2) + (p.y - cy).powi(2)).sqrt())
        .sum::<f64>()
        / n;
    if mean_dist < 1e-12 {
        return Err(GeometryError::Degenerate("all points coincide".into()));
    }
    let s = std::f64::consts::SQRT_2 / mean_dist;
    Ok(Mat::from_rows(&[
        &[s, 0.0, -s * cx],
        &[0.0, s, -s * cy],
        &[0.0, 0.0, 1.0],
    ]))
}

fn apply_mat(t: &Mat, p: &Point2) -> Point2 {
    Point2::new(
        t[(0, 0)] * p.x + t[(0, 1)] * p.y + t[(0, 2)],
        t[(1, 0)] * p.x + t[(1, 1)] * p.y + t[(1, 2)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Vec<Point2> {
        vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.5, 0.25),
        ]
    }

    #[test]
    fn identity_maps_points_to_themselves() {
        let h = Homography::identity();
        let p = Point2::new(3.2, -1.5);
        assert_eq!(h.apply(&p).unwrap(), p);
    }

    #[test]
    fn estimates_translation() {
        let src = square();
        let dst: Vec<Point2> = src
            .iter()
            .map(|p| Point2::new(p.x + 5.0, p.y - 2.0))
            .collect();
        let h = Homography::estimate(&src, &dst).unwrap();
        assert!(h.reprojection_error(&src, &dst) < 1e-8);
    }

    #[test]
    fn estimates_affine_scale_rotation() {
        let src = square();
        let dst: Vec<Point2> = src
            .iter()
            .map(|p| Point2::new(2.0 * p.x - 1.0 * p.y + 3.0, 1.0 * p.x + 2.0 * p.y - 4.0))
            .collect();
        let h = Homography::estimate(&src, &dst).unwrap();
        assert!(h.reprojection_error(&src, &dst) < 1e-8);
    }

    #[test]
    fn estimates_projective_warp() {
        // A genuine perspective transform.
        let true_h = Homography::from_matrix(Mat::from_rows(&[
            &[1.2, 0.1, 5.0],
            &[-0.2, 0.9, 1.0],
            &[0.001, 0.002, 1.0],
        ]));
        let src: Vec<Point2> = (0..8)
            .map(|i| Point2::new((i % 3) as f64 * 40.0, (i / 3) as f64 * 30.0 + i as f64))
            .collect();
        let dst: Vec<Point2> = src.iter().map(|p| true_h.apply(p).unwrap()).collect();
        let h = Homography::estimate(&src, &dst).unwrap();
        assert!(h.reprojection_error(&src, &dst) < 1e-6);
    }

    #[test]
    fn inverse_roundtrip() {
        let src = square();
        let dst: Vec<Point2> = src
            .iter()
            .map(|p| Point2::new(3.0 * p.x + 1.0, 2.0 * p.y - 1.0))
            .collect();
        let h = Homography::estimate(&src, &dst).unwrap();
        let hinv = h.inverse().unwrap();
        for p in &src {
            let roundtrip = hinv.apply(&h.apply(p).unwrap()).unwrap();
            assert!(roundtrip.distance(p) < 1e-8);
        }
    }

    #[test]
    fn compose_applies_right_to_left() {
        let shift = Homography::from_matrix(Mat::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 1.0],
        ]));
        let scale = Homography::from_matrix(Mat::from_rows(&[
            &[2.0, 0.0, 0.0],
            &[0.0, 2.0, 0.0],
            &[0.0, 0.0, 1.0],
        ]));
        // scale ∘ shift: shift first, then scale.
        let h = scale.compose(&shift);
        let p = h.apply(&Point2::new(1.0, 1.0)).unwrap();
        assert_eq!(p, Point2::new(4.0, 2.0));
    }

    #[test]
    fn rejects_too_few_points() {
        let pts = vec![Point2::new(0.0, 0.0); 3];
        assert!(matches!(
            Homography::estimate(&pts, &pts),
            Err(GeometryError::NotEnoughPoints { .. })
        ));
    }

    #[test]
    fn rejects_coincident_points() {
        let pts = vec![Point2::new(1.0, 1.0); 5];
        assert!(Homography::estimate(&pts, &pts).is_err());
    }

    #[test]
    fn rejects_collinear_points() {
        let src: Vec<Point2> = (0..5)
            .map(|i| Point2::new(i as f64, 2.0 * i as f64))
            .collect();
        let dst: Vec<Point2> = (0..5)
            .map(|i| Point2::new(i as f64, 3.0 * i as f64))
            .collect();
        assert!(Homography::estimate(&src, &dst).is_err());
    }

    #[test]
    fn unprojectable_point_detected() {
        let h = Homography::from_matrix(Mat::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0], // w = y
        ]));
        assert!(matches!(
            h.apply(&Point2::new(1.0, 0.0)),
            Err(GeometryError::Unprojectable)
        ));
        assert!(h.apply(&Point2::new(1.0, 1.0)).is_ok());
    }

    #[test]
    fn noisy_estimation_stays_close() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let src: Vec<Point2> = (0..30)
            .map(|_| Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect();
        let dst: Vec<Point2> = src
            .iter()
            .map(|p| {
                Point2::new(
                    0.8 * p.x + 0.1 * p.y + 10.0 + rng.random_range(-0.05..0.05),
                    -0.1 * p.x + 0.9 * p.y - 5.0 + rng.random_range(-0.05..0.05),
                )
            })
            .collect();
        let h = Homography::estimate(&src, &dst).unwrap();
        assert!(h.reprojection_error(&src, &dst) < 0.2);
    }
}
