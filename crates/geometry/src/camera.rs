//! Pinhole camera model.
//!
//! The synthetic stand-in for the testbed phone cameras: a position, a yaw
//! (optical-axis bearing in the ground plane), a downward pitch, and a focal
//! length in pixels. World frame: X east, Y north, Z up (meters). Image
//! frame: x right, y **down**, origin at the top-left pixel.

use crate::point::{Point2, Point3};
use crate::{GeometryError, Result};

/// A calibrated pinhole camera.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// Optical center in world coordinates (meters).
    pub position: Point3,
    /// Bearing of the optical axis in the ground plane, radians from +X.
    pub yaw: f64,
    /// Downward tilt in radians (positive looks down).
    pub pitch: f64,
    /// Focal length in pixels (square pixels assumed).
    pub focal_px: f64,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
}

impl Camera {
    /// Creates a camera.
    ///
    /// # Panics
    ///
    /// Panics if `focal_px` is not positive or the image is empty.
    pub fn new(
        position: Point3,
        yaw: f64,
        pitch: f64,
        focal_px: f64,
        width: usize,
        height: usize,
    ) -> Camera {
        assert!(focal_px > 0.0, "focal length must be positive");
        assert!(width > 0 && height > 0, "image must be non-empty");
        Camera {
            position,
            yaw,
            pitch,
            focal_px,
            width,
            height,
        }
    }

    /// Camera-frame basis vectors in world coordinates:
    /// `(right, down, forward)` — right-handed with `right × down = forward`.
    pub fn basis(&self) -> (Point3, Point3, Point3) {
        let (cy, sy) = (self.yaw.cos(), self.yaw.sin());
        let (cp, sp) = (self.pitch.cos(), self.pitch.sin());
        let forward = Point3::new(cy * cp, sy * cp, -sp);
        let right = Point3::new(sy, -cy, 0.0);
        let down = forward.cross(&right);
        (right, down, forward)
    }

    /// Projects a world point into the image plane.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::Unprojectable`] when the point is on or
    /// behind the camera plane. The returned pixel may lie outside the
    /// image bounds — use [`Camera::contains`] to test visibility.
    pub fn project(&self, world: &Point3) -> Result<Point2> {
        let (right, down, forward) = self.basis();
        let rel = *world - self.position;
        let z = rel.dot(&forward);
        if z <= 1e-9 {
            return Err(GeometryError::Unprojectable);
        }
        let x = rel.dot(&right);
        let y = rel.dot(&down);
        Ok(Point2::new(
            self.width as f64 / 2.0 + self.focal_px * x / z,
            self.height as f64 / 2.0 + self.focal_px * y / z,
        ))
    }

    /// Whether a pixel lies inside the image bounds.
    pub fn contains(&self, pixel: &Point2) -> bool {
        pixel.x >= 0.0
            && pixel.y >= 0.0
            && pixel.x < self.width as f64
            && pixel.y < self.height as f64
    }

    /// Back-projects an image pixel onto the world ground plane (`z = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::Unprojectable`] if the viewing ray is
    /// parallel to or points away from the ground plane.
    pub fn pixel_to_ground(&self, pixel: &Point2) -> Result<Point3> {
        let (right, down, forward) = self.basis();
        // Ray direction in world coordinates.
        let dx = (pixel.x - self.width as f64 / 2.0) / self.focal_px;
        let dy = (pixel.y - self.height as f64 / 2.0) / self.focal_px;
        let dir = Point3::new(
            forward.x + dx * right.x + dy * down.x,
            forward.y + dx * right.y + dy * down.y,
            forward.z + dx * right.z + dy * down.z,
        );
        if dir.z.abs() < 1e-12 {
            return Err(GeometryError::Unprojectable);
        }
        let t = -self.position.z / dir.z;
        if t <= 0.0 {
            return Err(GeometryError::Unprojectable);
        }
        Ok(Point3::new(
            self.position.x + t * dir.x,
            self.position.y + t * dir.y,
            0.0,
        ))
    }

    /// Projects the axis-aligned bounding box of a standing person at ground
    /// position `(x, y)` with the given height and width (meters). Returns
    /// `(x0, y0, x1, y1)` in image pixels (possibly partially outside the
    /// image).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::Unprojectable`] when the person is behind
    /// the camera.
    pub fn person_bbox(
        &self,
        ground: &Point2,
        person_height: f64,
        person_width: f64,
    ) -> Result<(f64, f64, f64, f64)> {
        let feet = Point3::new(ground.x, ground.y, 0.0);
        let head = Point3::new(ground.x, ground.y, person_height);
        let feet_px = self.project(&feet)?;
        let head_px = self.project(&head)?;
        // Width: project a point displaced half a body width along the
        // camera's right direction at mid height.
        let (right, _, _) = self.basis();
        let mid = Point3::new(ground.x, ground.y, person_height / 2.0);
        let side = mid + right * (person_width / 2.0);
        let mid_px = self.project(&mid)?;
        let side_px = self.project(&side)?;
        let half_w = (side_px.x - mid_px.x).abs().max(1.0);
        Ok((
            feet_px.x.min(head_px.x) - half_w,
            head_px.y.min(feet_px.y),
            feet_px.x.max(head_px.x) + half_w,
            feet_px.y.max(head_px.y),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A camera at 3 m height looking north, pitched 20° down.
    fn test_camera() -> Camera {
        Camera::new(
            Point3::new(0.0, 0.0, 3.0),
            std::f64::consts::FRAC_PI_2, // +Y (north)
            20f64.to_radians(),
            300.0,
            360,
            288,
        )
    }

    #[test]
    fn basis_is_orthonormal_right_handed() {
        let cam = test_camera();
        let (r, d, f) = cam.basis();
        assert!(r.dot(&d).abs() < 1e-12);
        assert!(r.dot(&f).abs() < 1e-12);
        assert!(d.dot(&f).abs() < 1e-12);
        assert!((r.dot(&r) - 1.0).abs() < 1e-12);
        let cross = r.cross(&d);
        assert!(cross.distance(&f) < 1e-12);
    }

    #[test]
    fn point_on_axis_projects_to_center() {
        let cam = test_camera();
        let (_, _, fwd) = cam.basis();
        let p = cam.position + fwd * 5.0;
        let px = cam.project(&p).unwrap();
        assert!((px.x - 180.0).abs() < 1e-9);
        assert!((px.y - 144.0).abs() < 1e-9);
    }

    #[test]
    fn point_behind_camera_unprojectable() {
        let cam = test_camera();
        let behind = Point3::new(0.0, -10.0, 1.0);
        assert!(matches!(
            cam.project(&behind),
            Err(GeometryError::Unprojectable)
        ));
    }

    #[test]
    fn closer_objects_appear_larger() {
        let cam = test_camera();
        let near = cam.person_bbox(&Point2::new(0.0, 4.0), 1.7, 0.5).unwrap();
        let far = cam.person_bbox(&Point2::new(0.0, 12.0), 1.7, 0.5).unwrap();
        let near_h = near.3 - near.1;
        let far_h = far.3 - far.1;
        assert!(near_h > far_h, "near {near_h} vs far {far_h}");
    }

    #[test]
    fn feet_below_head_in_image() {
        // Image y grows downward, so feet pixels have larger y than head.
        let cam = test_camera();
        let feet = cam.project(&Point3::new(0.0, 6.0, 0.0)).unwrap();
        let head = cam.project(&Point3::new(0.0, 6.0, 1.7)).unwrap();
        assert!(feet.y > head.y);
    }

    #[test]
    fn pixel_to_ground_roundtrip() {
        let cam = test_camera();
        for (x, y) in [(0.5, 5.0), (-2.0, 8.0), (3.0, 12.0)] {
            let world = Point3::on_ground(x, y);
            let px = cam.project(&world).unwrap();
            let back = cam.pixel_to_ground(&px).unwrap();
            assert!(
                back.distance(&world) < 1e-6,
                "roundtrip failed for ({x},{y})"
            );
        }
    }

    #[test]
    fn sky_pixels_do_not_hit_ground() {
        let cam = test_camera();
        // A pixel well above the horizon.
        assert!(cam.pixel_to_ground(&Point2::new(180.0, -500.0)).is_err());
    }

    #[test]
    fn contains_respects_bounds() {
        let cam = test_camera();
        assert!(cam.contains(&Point2::new(0.0, 0.0)));
        assert!(cam.contains(&Point2::new(359.9, 287.9)));
        assert!(!cam.contains(&Point2::new(360.0, 100.0)));
        assert!(!cam.contains(&Point2::new(-0.1, 100.0)));
    }

    #[test]
    #[should_panic(expected = "focal length")]
    fn rejects_nonpositive_focal() {
        Camera::new(Point3::default(), 0.0, 0.0, 0.0, 10, 10);
    }

    #[test]
    fn person_centered_ahead_is_horizontally_centered() {
        let cam = test_camera();
        let (x0, _, x1, _) = cam.person_bbox(&Point2::new(0.0, 6.0), 1.7, 0.5).unwrap();
        let cx = (x0 + x1) / 2.0;
        assert!((cx - 180.0).abs() < 1.5, "center {cx}");
    }
}
