//! Landmark-based ground-plane calibration.
//!
//! Section IV-C of the paper: "a set of landmark points on the ground are
//! chosen in the real world coordinate system. The locations of these
//! landmarks are then identified in the captured images of each individual
//! camera" — from these, per-camera image↔ground homographies and
//! camera↔camera ground-plane mappings are built offline (recalibrated only
//! if the camera geometry changes).

use crate::camera::Camera;
use crate::homography::Homography;
use crate::point::{Point2, Point3};
use crate::ransac::{ransac_homography, RansacConfig};
use crate::Result;

/// A calibrated view: homographies between a camera's image plane and the
/// world ground plane.
#[derive(Debug, Clone)]
pub struct GroundCalibration {
    image_to_ground: Homography,
    ground_to_image: Homography,
}

impl GroundCalibration {
    /// Calibrates from landmark correspondences: ground positions (world
    /// meters) and the pixels where each landmark appears in this camera.
    ///
    /// Uses RANSAC so a handful of mis-clicked landmarks do not corrupt the
    /// mapping.
    ///
    /// # Errors
    ///
    /// Propagates RANSAC failures ([`crate::GeometryError::NotEnoughPoints`],
    /// [`crate::GeometryError::NoConsensus`]).
    pub fn from_landmarks(
        ground: &[Point2],
        pixels: &[Point2],
        config: &RansacConfig,
    ) -> Result<GroundCalibration> {
        let fit = ransac_homography(pixels, ground, config)?;
        let image_to_ground = fit.homography;
        let ground_to_image = image_to_ground.inverse()?;
        Ok(GroundCalibration {
            image_to_ground,
            ground_to_image,
        })
    }

    /// Builds the calibration by synthetically projecting a landmark grid
    /// through a known camera — how the scene simulator produces the
    /// "provided homographies" that ship with the EPFL/Graz datasets.
    ///
    /// # Errors
    ///
    /// Fails if too few grid landmarks are visible to this camera.
    pub fn from_camera(camera: &Camera, landmarks: &[Point2]) -> Result<GroundCalibration> {
        let mut ground = Vec::new();
        let mut pixels = Vec::new();
        for lm in landmarks {
            if let Ok(px) = camera.project(&Point3::on_ground(lm.x, lm.y)) {
                ground.push(*lm);
                pixels.push(px);
            }
        }
        let config = RansacConfig {
            min_inliers: ground.len().max(4).min(ground.len()),
            ..Default::default()
        };
        GroundCalibration::from_landmarks(&ground, &pixels, &config)
    }

    /// Maps an image pixel to ground coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GeometryError::Unprojectable`] for horizon pixels.
    pub fn image_to_ground(&self, pixel: &Point2) -> Result<Point2> {
        self.image_to_ground.apply(pixel)
    }

    /// Maps ground coordinates to an image pixel.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GeometryError::Unprojectable`] for points that map to
    /// infinity.
    pub fn ground_to_image(&self, ground: &Point2) -> Result<Point2> {
        self.ground_to_image.apply(ground)
    }

    /// The homography mapping *this* camera's ground-plane pixels into
    /// `other`'s image — the paper's camera-to-camera mapping used to find
    /// the same detected object in another view.
    pub fn to_other_view(&self, other: &GroundCalibration) -> Homography {
        other.ground_to_image.compose(&self.image_to_ground)
    }

    /// The raw image→ground homography.
    pub fn image_to_ground_homography(&self) -> &Homography {
        &self.image_to_ground
    }
}

/// A default 5×5 landmark grid spanning `[0, extent] × [0, extent]` meters.
pub fn landmark_grid(extent: f64, per_side: usize) -> Vec<Point2> {
    assert!(per_side >= 2, "need at least a 2x2 grid");
    let step = extent / (per_side - 1) as f64;
    let mut out = Vec::with_capacity(per_side * per_side);
    for i in 0..per_side {
        for j in 0..per_side {
            out.push(Point2::new(i as f64 * step, j as f64 * step));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera_at(x: f64, y: f64, yaw: f64) -> Camera {
        Camera::new(
            Point3::new(x, y, 3.0),
            yaw,
            25f64.to_radians(),
            320.0,
            360,
            288,
        )
    }

    /// Camera placed south of the grid looking north.
    fn south_camera() -> Camera {
        camera_at(5.0, -6.0, std::f64::consts::FRAC_PI_2)
    }

    /// Camera placed west of the grid looking east.
    fn west_camera() -> Camera {
        camera_at(-6.0, 5.0, 0.0)
    }

    #[test]
    fn calibration_roundtrips_ground_points() {
        let cam = south_camera();
        let cal = GroundCalibration::from_camera(&cam, &landmark_grid(10.0, 5)).unwrap();
        for (gx, gy) in [(2.0, 3.0), (7.0, 8.0), (5.0, 5.0)] {
            let g = Point2::new(gx, gy);
            let px = cal.ground_to_image(&g).unwrap();
            let back = cal.image_to_ground(&px).unwrap();
            assert!(back.distance(&g) < 1e-6, "roundtrip for ({gx},{gy})");
        }
    }

    #[test]
    fn calibration_matches_true_camera_projection() {
        let cam = south_camera();
        let cal = GroundCalibration::from_camera(&cam, &landmark_grid(10.0, 5)).unwrap();
        let g = Point2::new(4.0, 6.0);
        let true_px = cam.project(&Point3::on_ground(g.x, g.y)).unwrap();
        let est_px = cal.ground_to_image(&g).unwrap();
        assert!(true_px.distance(&est_px) < 1e-4);
    }

    #[test]
    fn cross_view_mapping_finds_same_person() {
        let cam_a = south_camera();
        let cam_b = west_camera();
        let lm = landmark_grid(10.0, 5);
        let cal_a = GroundCalibration::from_camera(&cam_a, &lm).unwrap();
        let cal_b = GroundCalibration::from_camera(&cam_b, &lm).unwrap();
        // A person's feet at (5, 5): project into A, map A→B, compare with
        // the true projection in B.
        let feet = Point3::on_ground(5.0, 5.0);
        let px_a = cam_a.project(&feet).unwrap();
        let mapped = cal_a.to_other_view(&cal_b).apply(&px_a).unwrap();
        let true_b = cam_b.project(&feet).unwrap();
        assert!(
            mapped.distance(&true_b) < 1e-3,
            "mapped {mapped:?} vs {true_b:?}"
        );
    }

    #[test]
    fn landmark_grid_shape() {
        let g = landmark_grid(10.0, 3);
        assert_eq!(g.len(), 9);
        assert_eq!(g[0], Point2::new(0.0, 0.0));
        assert_eq!(g[8], Point2::new(10.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn grid_requires_two_per_side() {
        landmark_grid(10.0, 1);
    }

    #[test]
    fn noisy_landmarks_still_calibrate() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cam = south_camera();
        let lm = landmark_grid(10.0, 5);
        let mut ground = Vec::new();
        let mut pixels = Vec::new();
        for p in &lm {
            if let Ok(px) = cam.project(&Point3::on_ground(p.x, p.y)) {
                ground.push(*p);
                pixels.push(Point2::new(
                    px.x + rng.random_range(-0.5..0.5),
                    px.y + rng.random_range(-0.5..0.5),
                ));
            }
        }
        let cal = GroundCalibration::from_landmarks(
            &ground,
            &pixels,
            &RansacConfig {
                inlier_threshold: 0.5,
                min_inliers: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let g = Point2::new(5.0, 5.0);
        let est = cal.ground_to_image(&g).unwrap();
        let truth = cam.project(&Point3::on_ground(5.0, 5.0)).unwrap();
        assert!(est.distance(&truth) < 3.0, "error {}", est.distance(&truth));
    }
}
