//! RANSAC homography estimation.
//!
//! The paper cites Vincent & Laganière \[25\] for detecting planar
//! homographies robustly; we implement the classic RANSAC loop: sample four
//! correspondences, fit a DLT homography, count inliers by reprojection
//! error, and refit on the best consensus set.

use crate::homography::Homography;
use crate::point::Point2;
use crate::{GeometryError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// RANSAC parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RansacConfig {
    /// Number of sampling iterations.
    pub iterations: usize,
    /// Inlier reprojection-error threshold (pixels).
    pub inlier_threshold: f64,
    /// Minimum inliers for a model to be accepted.
    pub min_inliers: usize,
    /// RNG seed (deterministic).
    pub seed: u64,
}

impl Default for RansacConfig {
    fn default() -> Self {
        RansacConfig {
            iterations: 500,
            inlier_threshold: 2.0,
            min_inliers: 8,
            seed: 0,
        }
    }
}

/// The result of a successful RANSAC fit.
#[derive(Debug, Clone)]
pub struct RansacResult {
    /// The homography refit on all inliers.
    pub homography: Homography,
    /// Indices of the inlier correspondences.
    pub inliers: Vec<usize>,
}

/// Robustly fits a homography mapping `src[i] → dst[i]`.
///
/// # Errors
///
/// * [`GeometryError::NotEnoughPoints`] with fewer than 4 pairs or
///   `min_inliers > len`,
/// * [`GeometryError::NoConsensus`] when no sampled model reaches
///   `min_inliers`.
pub fn ransac_homography(
    src: &[Point2],
    dst: &[Point2],
    config: &RansacConfig,
) -> Result<RansacResult> {
    let n = src.len().min(dst.len());
    if n < 4 {
        return Err(GeometryError::NotEnoughPoints { needed: 4, got: n });
    }
    let needed = config.min_inliers.max(4);
    if needed > n {
        return Err(GeometryError::NotEnoughPoints { needed, got: n });
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best_inliers: Vec<usize> = Vec::new();

    for _ in 0..config.iterations {
        // Sample 4 distinct indices.
        let mut idx = [0usize; 4];
        let mut filled = 0;
        while filled < 4 {
            let cand = rng.random_range(0..n);
            if !idx[..filled].contains(&cand) {
                idx[filled] = cand;
                filled += 1;
            }
        }
        let s: Vec<Point2> = idx.iter().map(|&i| src[i]).collect();
        let d: Vec<Point2> = idx.iter().map(|&i| dst[i]).collect();
        let Ok(h) = Homography::estimate(&s, &d) else {
            continue; // degenerate sample
        };
        let inliers: Vec<usize> = (0..n)
            .filter(|&i| match h.apply(&src[i]) {
                Ok(p) => p.distance(&dst[i]) <= config.inlier_threshold,
                Err(_) => false,
            })
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
            if best_inliers.len() == n {
                break; // cannot do better
            }
        }
    }

    if best_inliers.len() < needed {
        return Err(GeometryError::NoConsensus {
            best_inliers: best_inliers.len(),
            needed,
        });
    }
    // Refit on the full consensus set.
    let s: Vec<Point2> = best_inliers.iter().map(|&i| src[i]).collect();
    let d: Vec<Point2> = best_inliers.iter().map(|&i| dst[i]).collect();
    let homography = Homography::estimate(&s, &d)?;
    Ok(RansacResult {
        homography,
        inliers: best_inliers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Point2> {
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..5 {
                pts.push(Point2::new(i as f64 * 20.0, j as f64 * 20.0 + i as f64));
            }
        }
        pts
    }

    fn warp(p: &Point2) -> Point2 {
        Point2::new(0.9 * p.x - 0.2 * p.y + 12.0, 0.3 * p.x + 1.1 * p.y - 7.0)
    }

    #[test]
    fn clean_data_recovers_model() {
        let src = grid_points();
        let dst: Vec<Point2> = src.iter().map(warp).collect();
        let result = ransac_homography(&src, &dst, &RansacConfig::default()).unwrap();
        assert_eq!(result.inliers.len(), src.len());
        assert!(result.homography.reprojection_error(&src, &dst) < 1e-6);
    }

    #[test]
    fn outliers_are_rejected() {
        let src = grid_points();
        let mut dst: Vec<Point2> = src.iter().map(warp).collect();
        // Corrupt 20% of the correspondences badly.
        for i in (0..dst.len()).step_by(5) {
            dst[i] = Point2::new(dst[i].x + 500.0, dst[i].y - 300.0);
        }
        let result = ransac_homography(&src, &dst, &RansacConfig::default()).unwrap();
        // All corrupted indices must be excluded.
        for i in (0..dst.len()).step_by(5) {
            assert!(!result.inliers.contains(&i), "outlier {i} kept");
        }
        // And the model still matches the clean points.
        let clean: Vec<usize> = (0..src.len()).filter(|i| i % 5 != 0).collect();
        for &i in &clean {
            let p = result.homography.apply(&src[i]).unwrap();
            assert!(p.distance(&dst[i]) < 0.5);
        }
    }

    #[test]
    fn too_few_points_error() {
        let pts = vec![Point2::new(0.0, 0.0); 3];
        assert!(matches!(
            ransac_homography(&pts, &pts, &RansacConfig::default()),
            Err(GeometryError::NotEnoughPoints { .. })
        ));
    }

    #[test]
    fn min_inliers_larger_than_set_rejected() {
        let src = grid_points();
        let dst: Vec<Point2> = src.iter().map(warp).collect();
        let cfg = RansacConfig {
            min_inliers: src.len() + 1,
            ..Default::default()
        };
        assert!(ransac_homography(&src, &dst, &cfg).is_err());
    }

    #[test]
    fn pure_noise_yields_no_consensus() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let src: Vec<Point2> = (0..30)
            .map(|_| Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect();
        let dst: Vec<Point2> = (0..30)
            .map(|_| Point2::new(rng.random_range(0.0..100.0), rng.random_range(0.0..100.0)))
            .collect();
        let cfg = RansacConfig {
            iterations: 100,
            inlier_threshold: 0.5,
            min_inliers: 20,
            seed: 1,
        };
        assert!(matches!(
            ransac_homography(&src, &dst, &cfg),
            Err(GeometryError::NoConsensus { .. })
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let src = grid_points();
        let mut dst: Vec<Point2> = src.iter().map(warp).collect();
        dst[3] = Point2::new(999.0, 999.0);
        let a = ransac_homography(&src, &dst, &RansacConfig::default()).unwrap();
        let b = ransac_homography(&src, &dst, &RansacConfig::default()).unwrap();
        assert_eq!(a.inliers, b.inliers);
    }
}
