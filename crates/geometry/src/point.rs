//! 2-D and 3-D points.

use std::ops::{Add, Mul, Sub};

/// A 2-D point (image pixels or ground-plane coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }
}

/// A 3-D point in world coordinates (X east, Y north, Z up; meters).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate (east).
    pub x: f64,
    /// Y coordinate (north).
    pub y: f64,
    /// Z coordinate (up).
    pub z: f64,
}

impl Point3 {
    /// Creates a point.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// A ground-plane point (`z = 0`).
    pub fn on_ground(x: f64, y: f64) -> Self {
        Point3 { x, y, z: 0.0 }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: &Point3) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2) + (self.z - other.z).powi(2))
            .sqrt()
    }

    /// Dot product.
    pub fn dot(&self, other: &Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(&self, other: &Point3) -> Point3 {
        Point3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Drops the Z coordinate.
    pub fn to_ground(&self) -> Point2 {
        Point2::new(self.x, self.y)
    }
}

impl Add for Point3 {
    type Output = Point3;
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_2d() {
        assert!((Point2::new(0.0, 0.0).distance(&Point2::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_2d() {
        let p = Point2::new(1.0, 2.0) + Point2::new(3.0, 4.0);
        assert_eq!(p, Point2::new(4.0, 6.0));
        assert_eq!(p - Point2::new(4.0, 6.0), Point2::default());
        assert_eq!(Point2::new(1.0, -2.0) * 2.0, Point2::new(2.0, -4.0));
    }

    #[test]
    fn cross_product_right_handed() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(&y), Point3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn dot_orthogonal() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let z = Point3::new(0.0, 0.0, 1.0);
        assert_eq!(x.dot(&z), 0.0);
    }

    #[test]
    fn ground_projection() {
        let p = Point3::new(2.0, 3.0, 1.7);
        assert_eq!(p.to_ground(), Point2::new(2.0, 3.0));
        assert_eq!(Point3::on_ground(1.0, 1.0).z, 0.0);
    }

    #[test]
    fn distance_3d() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(1.0, 2.0, 8.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}
