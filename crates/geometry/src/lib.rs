//! Multi-view geometry for the EECS reproduction.
//!
//! Section IV-C of the paper re-identifies people across overlapping cameras
//! by projecting the bottom-center of each detection through a ground-plane
//! homography into the other cameras' views. This crate supplies everything
//! that pipeline needs:
//!
//! * [`point`] — 2-D/3-D points,
//! * [`camera`] — a pinhole camera model (the synthetic stand-in for the
//!   testbed's phone cameras),
//! * [`homography`] — 3×3 projective transforms with DLT estimation from
//!   point correspondences (the paper's landmark calibration),
//! * [`ransac`] — robust homography fitting (the paper cites RANSAC \[25\]),
//! * [`calibration`] — building the camera↔ground and camera↔camera
//!   homographies from landmark points, as described in Section IV-C.

pub mod calibration;
pub mod camera;
pub mod homography;
pub mod point;
pub mod ransac;

pub use camera::Camera;
pub use homography::Homography;
pub use point::{Point2, Point3};

use std::error::Error;
use std::fmt;

/// Errors produced by geometric estimation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GeometryError {
    /// Not enough point correspondences for the requested fit.
    NotEnoughPoints {
        /// Points required.
        needed: usize,
        /// Points provided.
        got: usize,
    },
    /// The configuration of points is degenerate (e.g. collinear).
    Degenerate(String),
    /// RANSAC failed to find a model with enough inliers.
    NoConsensus {
        /// Best inlier count reached.
        best_inliers: usize,
        /// Inliers required.
        needed: usize,
    },
    /// A point could not be projected (behind the camera / at infinity).
    Unprojectable,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotEnoughPoints { needed, got } => {
                write!(f, "need at least {needed} correspondences, got {got}")
            }
            GeometryError::Degenerate(msg) => write!(f, "degenerate configuration: {msg}"),
            GeometryError::NoConsensus {
                best_inliers,
                needed,
            } => write!(
                f,
                "ransac found only {best_inliers} inliers, needed {needed}"
            ),
            GeometryError::Unprojectable => write!(f, "point cannot be projected"),
        }
    }
}

impl Error for GeometryError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, GeometryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = GeometryError::NotEnoughPoints { needed: 4, got: 2 };
        assert!(e.to_string().contains('4'));
    }
}
