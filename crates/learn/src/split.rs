//! Train/test splitting helpers.
//!
//! The paper splits each ~3000-frame feed into a 1000-frame training segment
//! and a ~2000-frame test segment (Section VI), and samples 100 random
//! consecutive frames for similarity assessment (Section VI-B). These helpers
//! encode both protocols deterministically.

use crate::{LearnError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A contiguous train/test split by index: `[0, train_len)` is training,
/// `[train_len, total)` is test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixSplit {
    /// Number of leading items in the training segment.
    pub train_len: usize,
    /// Total number of items.
    pub total: usize,
}

impl PrefixSplit {
    /// Creates a split with the first `train_len` of `total` items as
    /// training data.
    ///
    /// # Errors
    ///
    /// Returns [`LearnError::InvalidArgument`] when `train_len` is zero or
    /// not strictly less than `total`.
    pub fn new(train_len: usize, total: usize) -> Result<PrefixSplit> {
        if train_len == 0 || train_len >= total {
            return Err(LearnError::InvalidArgument(format!(
                "train_len must be in 1..total ({train_len} of {total})"
            )));
        }
        Ok(PrefixSplit { train_len, total })
    }

    /// Range of training indices.
    pub fn train_range(&self) -> std::ops::Range<usize> {
        0..self.train_len
    }

    /// Range of test indices.
    pub fn test_range(&self) -> std::ops::Range<usize> {
        self.train_len..self.total
    }

    /// Number of test items.
    pub fn test_len(&self) -> usize {
        self.total - self.train_len
    }
}

/// Samples `count` starting offsets of consecutive `window`-frame segments
/// inside `range`, mirroring the paper's "100 consecutive frames, randomly
/// selected, repeated 5 times" protocol.
///
/// # Errors
///
/// Returns [`LearnError::InvalidArgument`] when the window does not fit in
/// the range or `count` is zero.
pub fn sample_windows(
    range: std::ops::Range<usize>,
    window: usize,
    count: usize,
    seed: u64,
) -> Result<Vec<usize>> {
    let len = range.end.saturating_sub(range.start);
    if window == 0 || window > len {
        return Err(LearnError::InvalidArgument(format!(
            "window {window} does not fit in range of length {len}"
        )));
    }
    if count == 0 {
        return Err(LearnError::InvalidArgument("count must be positive".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let max_start = range.end - window;
    Ok((0..count)
        .map(|_| rng.random_range(range.start..=max_start))
        .collect())
}

/// Selects `k` evenly spaced key-frame indices from `total` frames (used to
/// pick the `k₁`/`k₂` representative frames of Table I).
///
/// # Errors
///
/// Returns [`LearnError::InvalidArgument`] when `k` is zero or exceeds
/// `total`.
pub fn evenly_spaced(total: usize, k: usize) -> Result<Vec<usize>> {
    if k == 0 || k > total {
        return Err(LearnError::InvalidArgument(format!(
            "cannot pick {k} key frames from {total}"
        )));
    }
    if k == 1 {
        return Ok(vec![total / 2]);
    }
    Ok((0..k).map(|i| i * (total - 1) / (k - 1)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_split_matches_paper_protocol() {
        // 3000-frame feed: first 1000 train, rest test.
        let split = PrefixSplit::new(1000, 3000).unwrap();
        assert_eq!(split.train_range(), 0..1000);
        assert_eq!(split.test_range(), 1000..3000);
        assert_eq!(split.test_len(), 2000);
    }

    #[test]
    fn prefix_split_rejects_degenerate() {
        assert!(PrefixSplit::new(0, 10).is_err());
        assert!(PrefixSplit::new(10, 10).is_err());
        assert!(PrefixSplit::new(11, 10).is_err());
    }

    #[test]
    fn sampled_windows_fit_range() {
        let starts = sample_windows(1000..3000, 100, 5, 7).unwrap();
        assert_eq!(starts.len(), 5);
        for s in starts {
            assert!(s >= 1000 && s + 100 <= 3000);
        }
    }

    #[test]
    fn sampled_windows_deterministic() {
        let a = sample_windows(0..500, 100, 5, 3).unwrap();
        let b = sample_windows(0..500, 100, 5, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sample_windows_rejects_bad_args() {
        assert!(sample_windows(0..50, 100, 5, 0).is_err());
        assert!(sample_windows(0..50, 0, 5, 0).is_err());
        assert!(sample_windows(0..50, 10, 0, 0).is_err());
    }

    #[test]
    fn window_equal_to_range_is_allowed() {
        let starts = sample_windows(10..20, 10, 3, 1).unwrap();
        assert!(starts.iter().all(|&s| s == 10));
    }

    #[test]
    fn evenly_spaced_endpoints() {
        let idx = evenly_spaced(100, 5).unwrap();
        assert_eq!(idx.first(), Some(&0));
        assert_eq!(idx.last(), Some(&99));
        assert_eq!(idx.len(), 5);
        for w in idx.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn evenly_spaced_edge_cases() {
        assert_eq!(evenly_spaced(10, 1).unwrap(), vec![5]);
        assert_eq!(evenly_spaced(3, 3).unwrap(), vec![0, 1, 2]);
        assert!(evenly_spaced(3, 4).is_err());
        assert!(evenly_spaced(3, 0).is_err());
    }
}
