//! Platt scaling: mapping raw detection scores to probabilities.
//!
//! Footnote 5 of the paper: "Object detection scores can be converted into
//! detection probabilities via an offline training process." This module is
//! that process — a one-dimensional logistic regression
//! `P(object | score) = 1 / (1 + exp(A·score + B))` fitted by gradient
//! descent on labelled (score, is-true-positive) pairs gathered on the
//! training segment.

use crate::{LearnError, Result};

/// A fitted Platt scaler.
///
/// # Example
///
/// ```
/// use eecs_learn::calibrate::PlattScaler;
///
/// let scores = vec![-2.0, -1.5, -1.0, 1.0, 1.5, 2.0];
/// let labels = vec![false, false, false, true, true, true];
/// let scaler = PlattScaler::fit(&scores, &labels)?;
/// assert!(scaler.probability(2.0) > 0.7);
/// assert!(scaler.probability(-2.0) < 0.3);
/// # Ok::<(), eecs_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid to `(score, label)` pairs by batch gradient descent
    /// on the cross-entropy loss, with the Platt prior smoothing of targets.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidArgument`] if the slices differ in length or
    ///   are empty,
    /// * [`LearnError::DegenerateTrainingSet`] if only one class is present.
    pub fn fit(scores: &[f64], labels: &[bool]) -> Result<PlattScaler> {
        if scores.len() != labels.len() {
            return Err(LearnError::InvalidArgument(
                "scores and labels must have equal length".into(),
            ));
        }
        if scores.is_empty() {
            return Err(LearnError::InvalidArgument("empty calibration set".into()));
        }
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return Err(LearnError::DegenerateTrainingSet(
                "calibration needs both true and false detections".into(),
            ));
        }

        // Platt's smoothed targets avoid saturating the sigmoid.
        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l { t_pos } else { t_neg })
            .collect();

        // Gradient descent on A, B. The problem is 2-D and convex; plain GD
        // with a modest step count is ample for calibration purposes.
        let mut a = -1.0; // negative slope: higher score → higher probability
        let mut b = 0.0;
        let n = scores.len() as f64;
        let lr = 0.5;
        for _ in 0..2000 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&s, &t) in scores.iter().zip(&targets) {
                let p = sigmoid(a * s + b);
                let diff = p - t; // derivative of CE w.r.t. the logit
                ga += diff * s;
                gb += diff;
            }
            a -= lr * ga / n;
            b -= lr * gb / n;
        }
        Ok(PlattScaler { a, b })
    }

    /// Builds a scaler from explicit parameters.
    pub fn from_parts(a: f64, b: f64) -> PlattScaler {
        PlattScaler { a, b }
    }

    /// Sigmoid slope parameter `A`.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Sigmoid offset parameter `B`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The detection probability for a raw `score`, in `(0, 1)`.
    pub fn probability(&self, score: f64) -> f64 {
        sigmoid(self.a * score + self.b)
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    // 1/(1+e^{A s + B}) in Platt's formulation equals σ(-(A s + B));
    // we fold the sign into the fitted parameters and use plain σ here.
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_score_when_fitted_on_increasing_data() {
        let scores: Vec<f64> = (0..20).map(|i| i as f64 / 2.0 - 5.0).collect();
        let labels: Vec<bool> = scores.iter().map(|&s| s > 0.0).collect();
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        for w in scores.windows(2) {
            assert!(scaler.probability(w[1]) >= scaler.probability(w[0]));
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let scaler = PlattScaler::from_parts(2.0, -1.0);
        for s in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let p = scaler.probability(s);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn separable_scores_calibrate_sharply() {
        let scores = vec![-3.0, -2.5, -2.0, 2.0, 2.5, 3.0];
        let labels = vec![false, false, false, true, true, true];
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        assert!(scaler.probability(3.0) > 0.8);
        assert!(scaler.probability(-3.0) < 0.2);
    }

    #[test]
    fn mixed_scores_stay_moderate() {
        // Labels independent of score → probability near the base rate.
        let scores = vec![1.0, 1.0, 1.0, 1.0];
        let labels = vec![true, false, true, false];
        let scaler = PlattScaler::fit(&scores, &labels).unwrap();
        let p = scaler.probability(1.0);
        assert!((0.3..0.7).contains(&p), "p={p}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(PlattScaler::fit(&[1.0], &[true, false]).is_err());
        assert!(PlattScaler::fit(&[], &[]).is_err());
        assert!(PlattScaler::fit(&[1.0, 2.0], &[true, true]).is_err());
    }
}
