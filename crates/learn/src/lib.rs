//! Machine-learning primitives for the EECS reproduction.
//!
//! The paper's detector stack relies on three classic learners, all
//! implemented here from scratch:
//!
//! * [`kmeans`] — k-means clustering, used to build the SURF bag-of-words
//!   vocabulary (Section V-A: 400 visual words from 12 training feeds),
//! * [`svm`] — a linear SVM trained with the Pegasos stochastic sub-gradient
//!   method, used by the HOG and LSVM detectors,
//! * [`boost`] — AdaBoost over decision stumps, used by the ACF detector
//!   (Dollár's aggregated channel features),
//! * [`calibrate`] — Platt scaling, converting raw detection scores into
//!   detection probabilities `P_ij` (footnote 5 of the paper),
//! * [`split`] — deterministic train/test splitting helpers mirroring the
//!   paper's "first 1000 frames train, rest test" protocol.

pub mod boost;
pub mod calibrate;
pub mod kmeans;
pub mod split;
pub mod svm;

pub use boost::{AdaBoost, Stump};
pub use calibrate::PlattScaler;
pub use kmeans::{KMeans, KMeansConfig};
pub use svm::{LinearSvm, SvmConfig};

use std::error::Error;
use std::fmt;

/// Errors produced by the learning algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LearnError {
    /// The training set was empty or degenerate (e.g. a single class).
    DegenerateTrainingSet(String),
    /// An argument was out of the valid domain.
    InvalidArgument(String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::DegenerateTrainingSet(msg) => {
                write!(f, "degenerate training set: {msg}")
            }
            LearnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LearnError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, LearnError>;

/// A labelled training example: a feature vector and a ±1 label.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Class label: `+1.0` (object) or `-1.0` (background).
    pub label: f64,
}

impl Example {
    /// Creates a positive (label `+1`) example.
    pub fn positive(features: Vec<f64>) -> Self {
        Example {
            features,
            label: 1.0,
        }
    }

    /// Creates a negative (label `-1`) example.
    pub fn negative(features: Vec<f64>) -> Self {
        Example {
            features,
            label: -1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_constructors() {
        let p = Example::positive(vec![1.0]);
        let n = Example::negative(vec![1.0]);
        assert_eq!(p.label, 1.0);
        assert_eq!(n.label, -1.0);
    }

    #[test]
    fn error_display() {
        let e = LearnError::DegenerateTrainingSet("only one class".into());
        assert!(e.to_string().contains("only one class"));
    }
}
