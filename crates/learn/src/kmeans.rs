//! K-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! Used to quantize 64-d keypoint descriptors into the bag-of-words
//! vocabulary described in Section V-A of the paper.

use crate::{LearnError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (visual words).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total centroid movement.
    pub tol: f64,
    /// RNG seed for k-means++ initialization (deterministic training).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-6,
            seed: 0,
        }
    }
}

/// A fitted k-means model: the cluster centroids.
///
/// # Example
///
/// ```
/// use eecs_learn::kmeans::{KMeans, KMeansConfig};
///
/// let points = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 9.9],
/// ];
/// let model = KMeans::fit(&points, &KMeansConfig { k: 2, ..Default::default() })?;
/// assert_ne!(model.assign(&[0.05, 0.0]), model.assign(&[10.0, 10.0]));
/// # Ok::<(), eecs_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits `k` clusters to `points`.
    ///
    /// # Errors
    ///
    /// * [`LearnError::InvalidArgument`] when `k == 0`, `points` is empty,
    ///   `k > points.len()`, or points have inconsistent dimensions.
    pub fn fit(points: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeans> {
        if config.k == 0 {
            return Err(LearnError::InvalidArgument("k must be positive".into()));
        }
        if points.is_empty() {
            return Err(LearnError::InvalidArgument("no points".into()));
        }
        if config.k > points.len() {
            return Err(LearnError::InvalidArgument(format!(
                "k={} exceeds number of points {}",
                config.k,
                points.len()
            )));
        }
        let dim = points[0].len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(LearnError::InvalidArgument(
                "points have inconsistent dimensions".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = kmeanspp_init(points, config.k, &mut rng);
        let mut assignment = vec![0usize; points.len()];
        let mut iterations = 0;

        for it in 0..config.max_iters {
            iterations = it + 1;
            // Assignment step.
            for (i, p) in points.iter().enumerate() {
                assignment[i] = nearest(p, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; config.k];
            let mut counts = vec![0usize; config.k];
            for (p, &a) in points.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, &x) in sums[a].iter_mut().zip(p) {
                    *s += x;
                }
            }
            let mut movement = 0.0;
            for c in 0..config.k {
                if counts[c] == 0 {
                    // Empty cluster: re-seed at the point farthest from its
                    // centroid to avoid dead centroids.
                    let far = points
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let da = nearest(a, &centroids).1;
                            let db = nearest(b, &centroids).1;
                            da.partial_cmp(&db).unwrap()
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroids[c] = points[far].clone();
                    continue;
                }
                let mut new_c = sums[c].clone();
                for x in &mut new_c {
                    *x /= counts[c] as f64;
                }
                movement += sq_dist(&new_c, &centroids[c]);
                centroids[c] = new_c;
            }
            if movement.sqrt() <= config.tol {
                break;
            }
        }

        let inertia = points.iter().map(|p| nearest(p, &centroids).1).sum::<f64>();
        Ok(KMeans {
            centroids,
            inertia,
            iterations,
        })
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Final within-cluster sum of squared distances.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Iterations run before convergence.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Index of the nearest centroid to `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has a different dimension than the centroids.
    pub fn assign(&self, point: &[f64]) -> usize {
        assert_eq!(
            point.len(),
            self.centroids[0].len(),
            "dimension mismatch in assign"
        );
        nearest(point, &self.centroids).0
    }

    /// Histogram of assignments: counts of `points` per cluster, the
    /// bag-of-words representation of Section V-A.
    pub fn histogram(&self, points: &[Vec<f64>]) -> Vec<f64> {
        let mut hist = vec![0.0; self.k()];
        for p in points {
            hist[self.assign(p)] += 1.0;
        }
        hist
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(p, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: pick centroids proportional to squared distance from
/// those already chosen.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let first = rng.random_range(0..points.len());
    let mut centroids = vec![points[first].clone()];
    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with existing centroids; pick any remaining.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in dists.iter().enumerate() {
                if target < d {
                    idx = i;
                    break;
                }
                target -= d;
                idx = i;
            }
            idx
        };
        centroids.push(points[chosen].clone());
        for (d, p) in dists.iter_mut().zip(points) {
            let nd = sq_dist(p, centroids.last().unwrap());
            if nd < *d {
                *d = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + jitter, 0.0]);
            pts.push(vec![10.0 + jitter, 10.0]);
            pts.push(vec![-10.0 + jitter, 10.0]);
        }
        pts
    }

    #[test]
    fn separates_three_blobs() {
        let pts = blobs();
        let model = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                seed: 42,
                ..Default::default()
            },
        )
        .unwrap();
        let a = model.assign(&[0.0, 0.0]);
        let b = model.assign(&[10.0, 10.0]);
        let c = model.assign(&[-10.0, 10.0]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = blobs();
        let i1 = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 1,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap()
        .inertia();
        let i3 = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap()
        .inertia();
        assert!(i3 < i1);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        };
        let m1 = KMeans::fit(&pts, &cfg).unwrap();
        let m2 = KMeans::fit(&pts, &cfg).unwrap();
        assert_eq!(m1.centroids(), m2.centroids());
    }

    #[test]
    fn histogram_counts_all_points() {
        let pts = blobs();
        let model = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let hist = model.histogram(&pts);
        let total: f64 = hist.iter().sum();
        assert_eq!(total as usize, pts.len());
        assert_eq!(hist.len(), 3);
    }

    #[test]
    fn rejects_invalid_arguments() {
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(&[], &KMeansConfig::default()).is_err());
        let bad = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(KMeans::fit(
            &bad,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 0.0]];
        let model = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(model.inertia() < 1e-9);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let model = KMeans::fit(
            &pts,
            &KMeansConfig {
                k: 3,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.k(), 3);
        assert!(model.inertia() < 1e-12);
    }
}
