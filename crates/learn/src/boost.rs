//! AdaBoost over decision stumps.
//!
//! The ACF detector (Dollár et al., "Fast feature pyramids for object
//! detection") classifies candidate windows with a boosted ensemble over
//! aggregated-channel lookups; this module provides that ensemble.

use crate::{Example, LearnError, Result};

/// A decision stump: threshold test on a single feature.
///
/// Predicts `polarity` when `x[feature] > threshold`, `-polarity` otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct Stump {
    /// Index of the feature tested.
    pub feature: usize,
    /// Decision threshold.
    pub threshold: f64,
    /// `+1.0` or `-1.0`.
    pub polarity: f64,
}

impl Stump {
    /// Evaluates the stump on a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `feature` is out of bounds for `x`.
    #[inline]
    pub fn predict(&self, x: &[f64]) -> f64 {
        if x[self.feature] > self.threshold {
            self.polarity
        } else {
            -self.polarity
        }
    }
}

/// A boosted ensemble of weighted stumps: `score(x) = Σ αᵢ hᵢ(x)`.
///
/// # Example
///
/// ```
/// use eecs_learn::{Example, boost::AdaBoost};
///
/// let data = vec![
///     Example::positive(vec![1.0]),
///     Example::positive(vec![0.9]),
///     Example::negative(vec![-1.0]),
///     Example::negative(vec![-0.8]),
/// ];
/// let model = AdaBoost::train(&data, 5)?;
/// assert!(model.score(&[0.95]) > 0.0);
/// # Ok::<(), eecs_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaBoost {
    stumps: Vec<(f64, Stump)>,
    dim: usize,
}

impl AdaBoost {
    /// Trains `rounds` boosting rounds on ±1-labelled examples.
    ///
    /// Each round fits the stump minimizing weighted error by scanning all
    /// features and all candidate thresholds (midpoints of sorted values).
    ///
    /// # Errors
    ///
    /// * [`LearnError::DegenerateTrainingSet`] if the set is empty or
    ///   single-class,
    /// * [`LearnError::InvalidArgument`] for zero rounds or inconsistent
    ///   dimensions.
    pub fn train(examples: &[Example], rounds: usize) -> Result<AdaBoost> {
        if examples.is_empty() {
            return Err(LearnError::DegenerateTrainingSet("no examples".into()));
        }
        if rounds == 0 {
            return Err(LearnError::InvalidArgument(
                "rounds must be positive".into(),
            ));
        }
        let dim = examples[0].features.len();
        if examples.iter().any(|e| e.features.len() != dim) {
            return Err(LearnError::InvalidArgument(
                "inconsistent feature dimensions".into(),
            ));
        }
        let has_pos = examples.iter().any(|e| e.label > 0.0);
        let has_neg = examples.iter().any(|e| e.label < 0.0);
        if !has_pos || !has_neg {
            return Err(LearnError::DegenerateTrainingSet(
                "need both classes".into(),
            ));
        }

        let n = examples.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut stumps = Vec::with_capacity(rounds);

        // Pre-sort example indices per feature once.
        let sorted_by_feature: Vec<Vec<usize>> = (0..dim)
            .map(|f| {
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| {
                    examples[a].features[f]
                        .partial_cmp(&examples[b].features[f])
                        .unwrap()
                });
                idx
            })
            .collect();

        for _ in 0..rounds {
            let (stump, err) = best_stump(examples, &weights, &sorted_by_feature);
            let err = err.clamp(1e-10, 1.0 - 1e-10);
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            if alpha <= 0.0 {
                break; // no stump better than chance remains
            }
            // Re-weight.
            let mut z = 0.0;
            for (w, e) in weights.iter_mut().zip(examples) {
                *w *= (-alpha * e.label * stump.predict(&e.features)).exp();
                z += *w;
            }
            for w in &mut weights {
                *w /= z;
            }
            stumps.push((alpha, stump));
            if err < 1e-9 {
                break; // perfect stump: done
            }
        }
        Ok(AdaBoost { stumps, dim })
    }

    /// Raw ensemble score `Σ αᵢ hᵢ(x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        self.stumps
            .iter()
            .map(|(alpha, s)| alpha * s.predict(x))
            .sum()
    }

    /// Predicted class (±1).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.score(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The weighted weak learners `(αᵢ, hᵢ)` in boosting order — exposed so
    /// detectors can re-index stumps into their own feature spaces (e.g.
    /// ACF's channel lookups) and build soft cascades.
    pub fn stumps(&self) -> &[(f64, Stump)] {
        &self.stumps
    }

    /// Number of weak learners kept.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// Whether the ensemble is empty.
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// Accuracy on a labelled set.
    pub fn accuracy(&self, examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|e| self.predict(&e.features) == e.label)
            .count();
        correct as f64 / examples.len() as f64
    }
}

/// Exhaustively finds the minimum-weighted-error stump.
fn best_stump(
    examples: &[Example],
    weights: &[f64],
    sorted_by_feature: &[Vec<usize>],
) -> (Stump, f64) {
    let mut best = (
        Stump {
            feature: 0,
            threshold: 0.0,
            polarity: 1.0,
        },
        f64::INFINITY,
    );
    for (f, order) in sorted_by_feature.iter().enumerate() {
        // Error of the stump "predict +1 when x > θ" as θ sweeps from -∞:
        // start with θ below every sample (everything predicted +1).
        let mut err_plus: f64 = examples
            .iter()
            .zip(weights)
            .filter(|(e, _)| e.label < 0.0)
            .map(|(_, w)| *w)
            .sum();
        // Consider θ = -∞ first.
        consider(&mut best, f, f64::NEG_INFINITY, err_plus);
        for (rank, &i) in order.iter().enumerate() {
            // Move sample i to the "≤ θ" side (predicted -1 by +polarity).
            let e = &examples[i];
            if e.label > 0.0 {
                err_plus += weights[i];
            } else {
                err_plus -= weights[i];
            }
            // Only valid thresholds are between distinct consecutive values.
            let x_i = e.features[f];
            let next = order.get(rank + 1).map(|&j| examples[j].features[f]);
            if next == Some(x_i) {
                continue;
            }
            let threshold = match next {
                Some(x_next) => 0.5 * (x_i + x_next),
                None => x_i + 1.0,
            };
            consider(&mut best, f, threshold, err_plus);
        }
    }
    best
}

fn consider(best: &mut (Stump, f64), feature: usize, threshold: f64, err_plus: f64) {
    // err_plus is the error of polarity +1; polarity -1 has 1 - err_plus.
    if err_plus < best.1 {
        *best = (
            Stump {
                feature,
                threshold,
                polarity: 1.0,
            },
            err_plus,
        );
    }
    let err_minus = 1.0 - err_plus;
    if err_minus < best.1 {
        *best = (
            Stump {
                feature,
                threshold,
                polarity: -1.0,
            },
            err_minus,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn single_feature_threshold_is_found() {
        let data = vec![
            Example::positive(vec![2.0]),
            Example::positive(vec![3.0]),
            Example::negative(vec![-2.0]),
            Example::negative(vec![-3.0]),
        ];
        let model = AdaBoost::train(&data, 3).unwrap();
        assert_eq!(model.accuracy(&data), 1.0);
    }

    #[test]
    fn interval_needs_multiple_stumps() {
        // Positive iff |x| < 1: a single threshold cannot represent an
        // interval, but a small boosted ensemble can.
        let mut data = Vec::new();
        for i in 0..20 {
            let d = i as f64 * 0.02;
            data.push(Example::positive(vec![-0.5 + d]));
            data.push(Example::negative(vec![1.2 + d]));
            data.push(Example::negative(vec![-1.2 - d]));
        }
        let one = AdaBoost::train(&data, 1).unwrap();
        let many = AdaBoost::train(&data, 50).unwrap();
        assert!(many.accuracy(&data) > one.accuracy(&data));
        assert!(many.accuracy(&data) >= 0.95, "acc={}", many.accuracy(&data));
    }

    #[test]
    fn noisy_gaussians() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.push(Example::positive(vec![
                1.5 + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]));
            data.push(Example::negative(vec![
                -1.5 + rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ]));
        }
        let model = AdaBoost::train(&data, 30).unwrap();
        assert!(model.accuracy(&data) > 0.95);
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(AdaBoost::train(&[], 5).is_err());
        let one_class = vec![Example::positive(vec![1.0])];
        assert!(AdaBoost::train(&one_class, 5).is_err());
        let ok = vec![Example::positive(vec![1.0]), Example::negative(vec![0.0])];
        assert!(AdaBoost::train(&ok, 0).is_err());
    }

    #[test]
    fn stump_predicts_by_polarity() {
        let s = Stump {
            feature: 1,
            threshold: 0.5,
            polarity: -1.0,
        };
        assert_eq!(s.predict(&[0.0, 1.0]), -1.0);
        assert_eq!(s.predict(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn score_magnitude_reflects_confidence() {
        let data = vec![
            Example::positive(vec![5.0]),
            Example::positive(vec![4.0]),
            Example::negative(vec![-4.0]),
            Example::negative(vec![-5.0]),
        ];
        let model = AdaBoost::train(&data, 10).unwrap();
        assert!(model.score(&[5.0]) > 0.0);
        assert!(model.score(&[-5.0]) < 0.0);
    }

    #[test]
    fn len_bounded_by_rounds() {
        let data = vec![Example::positive(vec![1.0]), Example::negative(vec![0.0])];
        let model = AdaBoost::train(&data, 20).unwrap();
        assert!(model.len() <= 20);
        assert!(!model.is_empty());
    }
}
