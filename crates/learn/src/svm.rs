//! Linear support vector machine trained with Pegasos.
//!
//! The HOG detector (Dalal–Triggs) and the root/part filters of the LSVM
//! detector are linear classifiers over gradient features; we train them with
//! the Pegasos primal stochastic sub-gradient solver, which converges quickly
//! and needs no quadratic programming machinery.

use crate::{Example, LearnError, Result};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration for [`LinearSvm::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
    /// RNG seed (deterministic training).
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-4,
            epochs: 30,
            seed: 0,
        }
    }
}

/// A trained linear SVM: `score(x) = w·x + b`.
///
/// # Example
///
/// ```
/// use eecs_learn::{Example, svm::{LinearSvm, SvmConfig}};
///
/// let data = vec![
///     Example::positive(vec![2.0, 2.0]),
///     Example::positive(vec![3.0, 2.5]),
///     Example::negative(vec![-2.0, -2.0]),
///     Example::negative(vec![-3.0, -1.5]),
/// ];
/// let svm = LinearSvm::train(&data, &SvmConfig::default())?;
/// assert!(svm.score(&[2.5, 2.0]) > 0.0);
/// assert!(svm.score(&[-2.5, -2.0]) < 0.0);
/// # Ok::<(), eecs_learn::LearnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains on ±1-labelled examples.
    ///
    /// # Errors
    ///
    /// * [`LearnError::DegenerateTrainingSet`] if `examples` is empty or
    ///   contains only one class,
    /// * [`LearnError::InvalidArgument`] for inconsistent feature dimensions
    ///   or non-positive `lambda`/`epochs`.
    pub fn train(examples: &[Example], config: &SvmConfig) -> Result<LinearSvm> {
        if examples.is_empty() {
            return Err(LearnError::DegenerateTrainingSet("no examples".into()));
        }
        let dim = examples[0].features.len();
        if examples.iter().any(|e| e.features.len() != dim) {
            return Err(LearnError::InvalidArgument(
                "inconsistent feature dimensions".into(),
            ));
        }
        let has_pos = examples.iter().any(|e| e.label > 0.0);
        let has_neg = examples.iter().any(|e| e.label < 0.0);
        if !has_pos || !has_neg {
            return Err(LearnError::DegenerateTrainingSet(
                "need both positive and negative examples".into(),
            ));
        }
        if config.lambda <= 0.0 || config.epochs == 0 {
            return Err(LearnError::InvalidArgument(
                "lambda and epochs must be positive".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = vec![0.0; dim];
        let mut b = 0.0;
        let n = examples.len();
        let mut t = 0usize;

        for _ in 0..config.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.random_range(0..n);
                let e = &examples[i];
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = e.label * (dot(&w, &e.features) + b);
                // Pegasos update: shrink, then (on margin violation) step
                // toward the violating example.
                let shrink = 1.0 - eta * config.lambda;
                for x in &mut w {
                    *x *= shrink;
                }
                if margin < 1.0 {
                    for (wi, &xi) in w.iter_mut().zip(&e.features) {
                        *wi += eta * e.label * xi;
                    }
                    b += eta * e.label;
                }
                // Pegasos optional projection onto the ball of radius
                // 1/√λ, which tightens the convergence guarantee.
                let norm_sq: f64 = w.iter().map(|x| x * x).sum();
                let radius_sq = 1.0 / config.lambda;
                if norm_sq > radius_sq {
                    let scale = (radius_sq / norm_sq).sqrt();
                    for x in &mut w {
                        *x *= scale;
                    }
                }
            }
        }
        Ok(LinearSvm {
            weights: w,
            bias: b,
        })
    }

    /// Builds an SVM directly from weights and bias (used by hand-tuned
    /// detector templates and tests).
    pub fn from_parts(weights: Vec<f64>, bias: f64) -> LinearSvm {
        LinearSvm { weights, bias }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Raw decision score `w·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn score(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature dimension mismatch");
        dot(&self.weights, x) + self.bias
    }

    /// Predicted class label (±1) for `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.score(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Accuracy on a labelled set.
    pub fn accuracy(&self, examples: &[Example]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|e| self.predict(&e.features) == e.label)
            .count();
        correct as f64 / examples.len() as f64
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn gaussian_blobs(n: usize, sep: f64, seed: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(Example::positive(vec![
                sep + rng.random_range(-1.0..1.0),
                sep + rng.random_range(-1.0..1.0),
            ]));
            out.push(Example::negative(vec![
                -sep + rng.random_range(-1.0..1.0),
                -sep + rng.random_range(-1.0..1.0),
            ]));
        }
        out
    }

    #[test]
    fn separable_data_is_learned() {
        let data = gaussian_blobs(100, 3.0, 1);
        let svm = LinearSvm::train(&data, &SvmConfig::default()).unwrap();
        assert!(
            svm.accuracy(&data) > 0.99,
            "accuracy {}",
            svm.accuracy(&data)
        );
    }

    #[test]
    fn noisy_data_still_mostly_correct() {
        let data = gaussian_blobs(200, 1.0, 2);
        let svm = LinearSvm::train(&data, &SvmConfig::default()).unwrap();
        assert!(
            svm.accuracy(&data) > 0.8,
            "accuracy {}",
            svm.accuracy(&data)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = gaussian_blobs(50, 2.0, 3);
        let cfg = SvmConfig {
            seed: 9,
            ..Default::default()
        };
        let a = LinearSvm::train(&data, &cfg).unwrap();
        let b = LinearSvm::train(&data, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_single_class() {
        let data = vec![Example::positive(vec![1.0]), Example::positive(vec![2.0])];
        assert!(matches!(
            LinearSvm::train(&data, &SvmConfig::default()),
            Err(LearnError::DegenerateTrainingSet(_))
        ));
    }

    #[test]
    fn rejects_empty_and_inconsistent() {
        assert!(LinearSvm::train(&[], &SvmConfig::default()).is_err());
        let bad = vec![
            Example::positive(vec![1.0]),
            Example::negative(vec![1.0, 2.0]),
        ];
        assert!(LinearSvm::train(&bad, &SvmConfig::default()).is_err());
    }

    #[test]
    fn rejects_bad_hyperparameters() {
        let data = gaussian_blobs(10, 2.0, 4);
        assert!(LinearSvm::train(
            &data,
            &SvmConfig {
                lambda: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(LinearSvm::train(
            &data,
            &SvmConfig {
                epochs: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn score_sign_matches_predict() {
        let svm = LinearSvm::from_parts(vec![1.0, -1.0], 0.5);
        assert_eq!(svm.predict(&[2.0, 0.0]), 1.0);
        assert_eq!(svm.predict(&[0.0, 2.0]), -1.0);
        assert!((svm.score(&[2.0, 0.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn margin_orders_confidence() {
        let data = gaussian_blobs(100, 3.0, 5);
        let svm = LinearSvm::train(&data, &SvmConfig::default()).unwrap();
        // A point deep in the positive region scores higher than one near
        // the boundary.
        assert!(svm.score(&[5.0, 5.0]) > svm.score(&[0.5, 0.5]));
    }
}
