//! EECS mission serving: a deterministic multi-tenant front end over
//! the simulation core.
//!
//! The ROADMAP's north star is a service that multiplexes many
//! detection missions over shared compute — the shape of edge-serving
//! systems like ECORE and LEAF, where a front end routes detection
//! requests across devices under energy budgets. This crate is that
//! first serving layer:
//!
//! * [`MissionRequest`] — what a tenant submits: per-mission knobs on a
//!   shared prepared base [`eecs_core::simulation::Simulation`], plus
//!   priority, deadline and declared cost ([`request`]);
//! * [`plan_schedule`] — admission control and priority/deadline
//!   scheduling on a seeded virtual clock, a pure function of
//!   `(seed, request list)` ([`schedule`]);
//! * [`MissionService`] — concurrent execution on `eecs_core::par`
//!   workers, CRC32 wire framing for every request/response, a
//!   kill/resume journal, and the byte-stable service trace
//!   ([`service`]);
//! * [`ServiceInvariants`] — the named-rule audit battery the soak
//!   tests run over whole batches ([`invariants`]).
//!
//! The contract mirrors the rest of the workspace: everything the
//! service *decides* is deterministic and replays bit-identically under
//! any worker count; only wall-clock time changes with parallelism.

pub mod invariants;
pub mod request;
pub mod schedule;
pub mod service;

pub use invariants::{ServiceContext, ServiceInvariants, ServiceRule};
pub use request::{MissionRequest, MissionSpec, Priority, Rejected};
pub use schedule::{
    arrival_tick, plan_schedule, MissionOutcome, MissionVerdict, Schedule, ServiceConfig,
    ServiceEvent,
};
pub use service::{
    BatchOptions, BatchOutcome, CompletedMission, MissionService, ServiceRun, TenantSummary,
    JOURNAL_SCHEMA, TRACE_SCHEMA,
};
