//! The mission service: planning, concurrent execution, journaling and
//! the byte-stable service trace.
//!
//! [`MissionService::run_batch`] splits a batch into two halves with
//! very different rules:
//!
//! * the **plan** ([`plan_schedule`]) — admissions, ordering,
//!   completions, rejections — is a pure function of `(seed, request
//!   list)` and never touches a thread pool;
//! * the **execution** fills in one [`SimulationReport`] per admitted
//!   mission on [`eecs_core::par`] workers, in any order, because a
//!   mission report is itself a pure function of its spec (every mission
//!   runs under a null telemetry handle, which existing golden tests
//!   prove leaves reports bit-identical).
//!
//! The two halves meet in the assembly step, which walks the planned
//! trace serially and attaches the reports — so the whole service run,
//! including its JSON trace bytes, replays identically under any worker
//! count, and a journaled batch can be killed mid-queue and resumed
//! without re-running finished missions.

use crate::request::MissionRequest;
use crate::schedule::{plan_schedule, MissionVerdict, Schedule, ServiceConfig, ServiceEvent};
use eecs_core::jsonio::{parse, Json};
use eecs_core::par::par_map_streamed;
use eecs_core::simulation::{Simulation, SimulationReport};
use eecs_core::telemetry::summary::report_to_json;
use eecs_core::telemetry::Telemetry;
use eecs_core::TraceEvent;
use eecs_net::checksum::crc32;
use eecs_net::message::{decode_frame, encode_frame, Message};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Schema tag of the batch journal's header line.
pub const JOURNAL_SCHEMA: &str = "eecs-serve-journal/1";
/// Schema tag of the service trace document.
pub const TRACE_SCHEMA: &str = "eecs-serve-trace/1";

/// Per-batch execution options.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// When set, completed missions are journaled here (JSONL) and a
    /// re-run against the same file skips them — the kill/resume path.
    pub journal_path: Option<PathBuf>,
    /// Stop the batch after this many *newly executed* missions (test
    /// hook simulating a mid-queue kill). The aborted batch returns no
    /// assembled run.
    pub stop_after: Option<usize>,
}

impl BatchOptions {
    /// Options journaling into `path`.
    pub fn journaled(path: PathBuf) -> BatchOptions {
        BatchOptions {
            journal_path: Some(path),
            ..BatchOptions::default()
        }
    }

    /// These options with a kill-after-N-executions hook.
    pub fn with_stop_after(mut self, n: usize) -> BatchOptions {
        self.stop_after = Some(n);
        self
    }
}

/// One admitted mission's completed record.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedMission {
    /// Mission index in the batch.
    pub mission: usize,
    /// The submitting tenant.
    pub tenant: String,
    /// Virtual tick the mission took a slot.
    pub started_tick: u64,
    /// Virtual tick the mission freed the slot.
    pub finished_tick: u64,
    /// Whether it met its declared deadline.
    pub deadline_met: bool,
    /// The report's canonical JSON bytes (the exact
    /// [`report_to_json`] encoding a direct run produces).
    pub report_json: String,
    /// CRC32 of `report_json`, as carried on the wire.
    pub report_crc: u32,
    /// `total_energy_j.to_bits()` — the bit-exact energy.
    pub energy_bits: u64,
    /// The in-memory report; `None` when this record was restored from
    /// a journal instead of executed in this process.
    pub report: Option<SimulationReport>,
}

/// Per-tenant admission accounting for one batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantSummary {
    /// Requests the tenant submitted.
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Missions completed (equals `admitted` in an assembled run).
    pub completed: u64,
    /// Completions that missed their declared deadline.
    pub deadline_missed: u64,
}

/// A fully assembled service run: the planned trace plus every report.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRun {
    /// The planned (and executed) schedule.
    pub schedule: Schedule,
    /// Completed missions in batch order.
    pub completed: Vec<CompletedMission>,
    /// Per-tenant accounting, keyed by tenant name.
    pub tenants: BTreeMap<String, TenantSummary>,
}

impl ServiceRun {
    /// The completed record for `mission`, if it was admitted.
    pub fn completion(&self, mission: usize) -> Option<&CompletedMission> {
        self.completed.iter().find(|c| c.mission == mission)
    }

    /// The byte-stable service trace document. Two runs of the same
    /// `(seed, request list)` — at any worker count, killed and resumed
    /// or not — produce identical bytes.
    pub fn trace_json(&self) -> Json {
        let n = |v: usize| Json::Num(v as f64);
        let events = self
            .schedule
            .events
            .iter()
            .map(|e| match *e {
                ServiceEvent::Started { tick, mission } => Json::Obj(vec![
                    ("event".into(), Json::Str("mission_start".into())),
                    ("tick".into(), n(tick as usize)),
                    ("mission".into(), n(mission)),
                ]),
                ServiceEvent::Finished {
                    tick,
                    mission,
                    deadline_met,
                } => Json::Obj(vec![
                    ("event".into(), Json::Str("mission_end".into())),
                    ("tick".into(), n(tick as usize)),
                    ("mission".into(), n(mission)),
                    ("deadline_met".into(), Json::Bool(deadline_met)),
                ]),
                ServiceEvent::Rejected { tick, mission } => Json::Obj(vec![
                    ("event".into(), Json::Str("mission_rejected".into())),
                    ("tick".into(), n(tick as usize)),
                    ("mission".into(), n(mission)),
                ]),
            })
            .collect();
        let completions = self
            .completed
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("mission".into(), n(c.mission)),
                    ("tenant".into(), Json::Str(c.tenant.clone())),
                    ("start".into(), n(c.started_tick as usize)),
                    ("finish".into(), n(c.finished_tick as usize)),
                    ("deadline_met".into(), Json::Bool(c.deadline_met)),
                    ("report_crc".into(), n(c.report_crc as usize)),
                    (
                        "energy_bits".into(),
                        Json::Str(format!("{:016x}", c.energy_bits)),
                    ),
                ])
            })
            .collect();
        let rejections = self
            .schedule
            .rejections()
            .iter()
            .map(|(m, r)| {
                Json::Obj(vec![
                    ("mission".into(), n(*m)),
                    ("kind".into(), Json::Str(r.kind().into())),
                    ("code".into(), n(r.verdict_code() as usize)),
                ])
            })
            .collect();
        let tenants = self
            .tenants
            .iter()
            .map(|(name, t)| {
                Json::Obj(vec![
                    ("tenant".into(), Json::Str(name.clone())),
                    ("submitted".into(), n(t.submitted as usize)),
                    ("admitted".into(), n(t.admitted as usize)),
                    ("rejected".into(), n(t.rejected as usize)),
                    ("completed".into(), n(t.completed as usize)),
                    ("deadline_missed".into(), n(t.deadline_missed as usize)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(TRACE_SCHEMA.into())),
            ("events".into(), Json::Arr(events)),
            ("completions".into(), Json::Arr(completions)),
            ("rejections".into(), Json::Arr(rejections)),
            ("tenants".into(), Json::Arr(tenants)),
            ("max_queue_depth".into(), n(self.schedule.max_queue_depth)),
        ])
    }

    /// [`ServiceRun::trace_json`] rendered to its canonical bytes.
    pub fn trace_bytes(&self) -> String {
        self.trace_json()
            .write()
            .expect("trace document always serializes")
    }
}

/// What one `run_batch` call did.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The assembled run; `None` when `stop_after` aborted the batch
    /// mid-queue (resume against the same journal to finish).
    pub run: Option<ServiceRun>,
    /// Missions newly executed by this call.
    pub executed: usize,
    /// Admitted missions skipped because the journal already held them.
    pub skipped: usize,
}

/// The multi-tenant mission service.
///
/// Holds one prepared base [`Simulation`] — the shared artifact every
/// mission reuses (dataset, training, matching) — plus the static
/// [`ServiceConfig`]. The base is behind an `Arc`: execution workers
/// share it read-only, exactly like the sweep engine shares its
/// prepared simulation.
#[derive(Debug, Clone)]
pub struct MissionService {
    base: Arc<Simulation>,
    config: ServiceConfig,
    telemetry: Telemetry,
}

impl MissionService {
    /// A service over `base` with `config`, publishing nothing.
    pub fn new(base: Simulation, config: ServiceConfig) -> MissionService {
        MissionService {
            base: Arc::new(base),
            config,
            telemetry: Telemetry::null(),
        }
    }

    /// This service publishing service-level metrics and trace events
    /// into `telemetry`. Mission executions themselves always run under
    /// a null handle — reports are telemetry-independent, and a shared
    /// recorder would otherwise interleave nondeterministically.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> MissionService {
        self.telemetry = telemetry;
        self
    }

    /// The service's static configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The planned trace for `requests` — admission control without
    /// executing anything.
    pub fn plan(&self, requests: &[MissionRequest]) -> Schedule {
        plan_schedule(&self.config, requests)
    }

    /// Plans, executes and assembles one batch.
    ///
    /// Every request/response crosses the canonical CRC32 wire framing
    /// (submit, verdict, report digest) — an encode/decode round-trip
    /// per message, so a framing regression fails the service itself,
    /// not just the net tests.
    ///
    /// # Errors
    ///
    /// Returns the first mission execution error, a journal that does
    /// not belong to this `(config, batch)`, or an I/O failure on the
    /// journal file.
    pub fn run_batch(
        &self,
        requests: &[MissionRequest],
        options: &BatchOptions,
    ) -> Result<BatchOutcome, String> {
        for (i, req) in requests.iter().enumerate() {
            roundtrip(&Message::MissionSubmit {
                mission: i,
                payload_crc: u64::from(req.spec.fingerprint()),
            })?;
        }
        let schedule = self.plan(requests);
        for outcome in &schedule.outcomes {
            roundtrip(&Message::MissionVerdict {
                mission: outcome.mission,
                verdict: outcome.verdict.verdict_code(),
            })?;
        }
        let admitted = schedule.admitted();

        // Journal: restore completed missions, then open for appends.
        let fingerprint = batch_fingerprint(&self.config, requests);
        let mut restored: BTreeMap<usize, (String, u32, u64)> = BTreeMap::new();
        let mut journal = None;
        if let Some(path) = &options.journal_path {
            if path.exists() {
                restored = load_journal(path, fingerprint)?;
            } else {
                let header = Json::Obj(vec![
                    ("schema".into(), Json::Str(JOURNAL_SCHEMA.into())),
                    (
                        "seed".into(),
                        Json::Str(format!("{:016x}", self.config.seed)),
                    ),
                    ("requests".into(), Json::Num(requests.len() as f64)),
                    ("fingerprint".into(), Json::Num(f64::from(fingerprint))),
                ]);
                std::fs::write(path, header.write()? + "\n")
                    .map_err(|e| format!("journal create {}: {e}", path.display()))?;
            }
            let file = std::fs::OpenOptions::new()
                .append(true)
                .open(path)
                .map_err(|e| format!("journal open {}: {e}", path.display()))?;
            journal = Some(file);
        }
        for m in restored.keys() {
            if !admitted.contains(m) {
                return Err(format!(
                    "journal holds mission {m}, which this plan rejects"
                ));
            }
        }

        let todo: Vec<usize> = admitted
            .iter()
            .copied()
            .filter(|m| !restored.contains_key(m))
            .collect();
        let skipped = admitted.len() - todo.len();

        // Fan the pending missions out; the sink journals each result
        // serially on this thread, in completion order.
        let base = Arc::clone(&self.base);
        let reqs = requests;
        let execute = |i: usize| -> Result<(usize, SimulationReport, String), String> {
            let mission = todo[i];
            let sim = reqs[mission]
                .spec
                .apply(&base)?
                .with_telemetry(Telemetry::null());
            let report = sim.run().map_err(|e| format!("mission {mission}: {e}"))?;
            let json = report_to_json(&report).write()?;
            Ok((mission, report, json))
        };
        let mut fresh: BTreeMap<usize, (SimulationReport, String)> = BTreeMap::new();
        let mut first_error = None;
        let mut executed = 0usize;
        let mut aborted = false;
        par_map_streamed(
            todo.len(),
            self.config.workers,
            execute,
            |_, result| match result {
                Ok((mission, report, json)) => {
                    if let Some(file) = journal.as_mut() {
                        if let Err(e) = append_journal(file, mission, &report, &json) {
                            first_error = Some(e);
                            aborted = true;
                            return false;
                        }
                    }
                    self.telemetry
                        .counter_add(&format!("serve.runs.{mission}"), 1);
                    fresh.insert(mission, (report, json));
                    executed += 1;
                    if options.stop_after.is_some_and(|n| executed >= n) && executed < todo.len() {
                        aborted = true;
                        return false;
                    }
                    true
                }
                Err(e) => {
                    first_error = Some(e);
                    aborted = true;
                    false
                }
            },
        );
        self.telemetry
            .counter_add("serve.executed", executed as u64);
        self.telemetry.counter_add("serve.skipped", skipped as u64);
        if let Some(e) = first_error {
            return Err(e);
        }
        if aborted {
            return Ok(BatchOutcome {
                run: None,
                executed,
                skipped,
            });
        }

        // Assembly: walk the planned trace serially, attach reports,
        // publish service telemetry in deterministic order.
        let mut completed = Vec::with_capacity(admitted.len());
        for outcome in &schedule.outcomes {
            let MissionVerdict::Admitted {
                start_tick,
                finish_tick,
                deadline_met,
            } = outcome.verdict
            else {
                continue;
            };
            let m = outcome.mission;
            let (report, report_json, report_crc, energy_bits) = match fresh.remove(&m) {
                Some((report, json)) => {
                    let crc = crc32(json.as_bytes());
                    let bits = report.total_energy_j.to_bits();
                    (Some(report), json, crc, bits)
                }
                None => {
                    let (json, crc, bits) = restored
                        .remove(&m)
                        .ok_or_else(|| format!("mission {m} neither executed nor restored"))?;
                    (None, json, crc, bits)
                }
            };
            roundtrip(&Message::MissionReport {
                mission: m,
                report_crc: u64::from(report_crc),
            })?;
            completed.push(CompletedMission {
                mission: m,
                tenant: outcome.tenant.clone(),
                started_tick: start_tick,
                finished_tick: finish_tick,
                deadline_met,
                report_json,
                report_crc,
                energy_bits,
                report,
            });
        }

        let mut tenants: BTreeMap<String, TenantSummary> = BTreeMap::new();
        for outcome in &schedule.outcomes {
            let t = tenants.entry(outcome.tenant.clone()).or_default();
            t.submitted += 1;
            match &outcome.verdict {
                MissionVerdict::Admitted { deadline_met, .. } => {
                    t.admitted += 1;
                    t.completed += 1;
                    if !deadline_met {
                        t.deadline_missed += 1;
                    }
                }
                MissionVerdict::Rejected(_) => t.rejected += 1,
            }
        }

        self.publish(&schedule, &tenants);
        Ok(BatchOutcome {
            run: Some(ServiceRun {
                schedule,
                completed,
                tenants,
            }),
            executed,
            skipped,
        })
    }

    /// Emits the service-level trace events and counters for an
    /// assembled run, in virtual-clock order.
    fn publish(&self, schedule: &Schedule, tenants: &BTreeMap<String, TenantSummary>) {
        if !self.telemetry.enabled() {
            return;
        }
        for event in &schedule.events {
            match *event {
                ServiceEvent::Started { tick, mission } => {
                    self.telemetry.event(|| TraceEvent::MissionStart {
                        round: tick as usize,
                        mission,
                    });
                }
                ServiceEvent::Finished {
                    tick,
                    mission,
                    deadline_met,
                } => {
                    self.telemetry.event(|| TraceEvent::MissionEnd {
                        round: tick as usize,
                        mission,
                        deadline_met,
                    });
                }
                ServiceEvent::Rejected { tick, mission } => {
                    self.telemetry.event(|| TraceEvent::MissionRejected {
                        round: tick as usize,
                        mission,
                    });
                }
            }
        }
        for (name, t) in tenants {
            self.telemetry.counter_add("serve.admitted", t.admitted);
            self.telemetry.counter_add("serve.rejected", t.rejected);
            self.telemetry.counter_add("serve.completed", t.completed);
            self.telemetry
                .counter_add("serve.deadline_missed", t.deadline_missed);
            self.telemetry
                .counter_add(&format!("serve.admitted.{name}"), t.admitted);
            self.telemetry
                .counter_add(&format!("serve.rejected.{name}"), t.rejected);
            self.telemetry
                .counter_add(&format!("serve.completed.{name}"), t.completed);
            self.telemetry
                .counter_add(&format!("serve.deadline_missed.{name}"), t.deadline_missed);
        }
        self.telemetry
            .gauge_set("serve.queue_depth", schedule.max_queue_depth as f64);
    }
}

/// Encode→decode one control frame, failing loudly on any mismatch.
fn roundtrip(message: &Message) -> Result<(), String> {
    let frame = encode_frame(message);
    let decoded = decode_frame(&frame).map_err(|e| format!("frame decode: {e}"))?;
    if decoded != *message {
        return Err(format!("frame round-trip mutated {message:?}"));
    }
    Ok(())
}

/// CRC32 identity of `(config, batch)` — what makes a journal file
/// belong to exactly one planned schedule.
fn batch_fingerprint(config: &ServiceConfig, requests: &[MissionRequest]) -> u32 {
    let mut canon = format!(
        "serve-batch/1|seed={:016x}|slots={}|queue={}|tenant_cap={}",
        config.seed, config.slots, config.queue_capacity, config.tenant_inflight_cap
    );
    for (i, r) in requests.iter().enumerate() {
        canon.push_str(&format!(
            "|{i}:{}:{}:{:?}:{}:{:08x}",
            r.tenant,
            r.priority.label(),
            r.deadline_ticks,
            r.cost_ticks(),
            r.spec.fingerprint(),
        ));
    }
    crc32(canon.as_bytes())
}

/// Appends one completed mission to the journal, embedding the report's
/// canonical JSON tree so a resume can reproduce the exact bytes.
fn append_journal(
    file: &mut std::fs::File,
    mission: usize,
    report: &SimulationReport,
    report_json: &str,
) -> Result<(), String> {
    let line = Json::Obj(vec![
        ("mission".into(), Json::Num(mission as f64)),
        ("report".into(), report_to_json(report)),
        (
            "energy_bits".into(),
            Json::Str(format!("{:016x}", report.total_energy_j.to_bits())),
        ),
        (
            "report_crc".into(),
            Json::Num(f64::from(crc32(report_json.as_bytes()))),
        ),
    ]);
    writeln!(file, "{}", line.write()?).map_err(|e| format!("journal append: {e}"))
}

/// Loads a journal, returning `mission -> (report_json, crc, energy
/// bits)` after verifying the header belongs to this batch and every
/// line's CRC matches its embedded report.
fn load_journal(
    path: &std::path::Path,
    fingerprint: u32,
) -> Result<BTreeMap<usize, (String, u32, u64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("journal read {}: {e}", path.display()))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = parse(lines.next().ok_or("journal is empty")?)?;
    if header.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
        return Err("journal has a foreign schema".into());
    }
    let stored = header
        .get("fingerprint")
        .and_then(Json::as_num)
        .ok_or("journal header lacks a fingerprint")?;
    if stored != f64::from(fingerprint) {
        return Err(format!(
            "journal belongs to another batch (fingerprint {stored} != {fingerprint})"
        ));
    }
    let mut restored = BTreeMap::new();
    for line in lines {
        let entry = parse(line)?;
        let mission = entry
            .get("mission")
            .and_then(Json::as_num)
            .ok_or("journal line lacks a mission index")? as usize;
        let report_json = entry
            .get("report")
            .ok_or("journal line lacks a report")?
            .write()?;
        let crc = entry
            .get("report_crc")
            .and_then(Json::as_num)
            .ok_or("journal line lacks a report CRC")? as u32;
        if crc32(report_json.as_bytes()) != crc {
            return Err(format!("journal line for mission {mission} fails its CRC"));
        }
        let bits_hex = entry
            .get("energy_bits")
            .and_then(Json::as_str)
            .ok_or("journal line lacks energy bits")?;
        let energy_bits = u64::from_str_radix(bits_hex, 16)
            .map_err(|e| format!("journal energy bits for mission {mission}: {e}"))?;
        restored.insert(mission, (report_json, crc, energy_bits));
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Rejected;

    #[test]
    fn batch_fingerprint_tracks_config_and_requests() {
        let config = ServiceConfig::new(1);
        let batch = vec![MissionRequest::new("a"), MissionRequest::new("b")];
        let same = batch_fingerprint(&config, &batch);
        assert_eq!(same, batch_fingerprint(&config, &batch));
        assert_ne!(same, batch_fingerprint(&ServiceConfig::new(2), &batch));
        let reordered = vec![MissionRequest::new("b"), MissionRequest::new("a")];
        assert_ne!(same, batch_fingerprint(&config, &reordered));
    }

    #[test]
    fn wire_roundtrip_accepts_all_mission_frames() {
        roundtrip(&Message::MissionSubmit {
            mission: 3,
            payload_crc: 0xFFFF_FFFF,
        })
        .unwrap();
        roundtrip(&Message::MissionVerdict {
            mission: 3,
            verdict: Rejected::QueueFull { depth: 2 }.verdict_code(),
        })
        .unwrap();
        roundtrip(&Message::MissionReport {
            mission: 3,
            report_crc: 0,
        })
        .unwrap();
    }

    #[test]
    fn foreign_journals_are_refused() {
        let dir = std::env::temp_dir().join("eecs-serve-test-journal");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("foreign.jsonl");
        std::fs::write(
            &path,
            "{\"schema\":\"eecs-serve-journal/1\",\"seed\":\"00\",\"requests\":1,\"fingerprint\":12345}\n",
        )
        .unwrap();
        let err = load_journal(&path, 999).unwrap_err();
        assert!(err.contains("another batch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
