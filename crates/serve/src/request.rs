//! Mission requests and admission verdicts.
//!
//! A [`MissionRequest`] is everything a tenant submits: a spec (the
//! knobs to turn on a shared prepared base [`Simulation`]), a priority,
//! a relative deadline and a declared virtual cost. Specs never carry a
//! full config — missions on one service share the base's dataset,
//! training and matching, which is what lets N missions on one profile
//! pay one training pass.

use eecs_core::simulation::{OperatingMode, Simulation};
use eecs_net::checksum::crc32;
use eecs_net::fault::{ChurnPlan, ControllerFaultPlan, FaultPlan};
use eecs_scene::sensor_fault::SensorFaultPlan;

/// Scheduling priority of a mission. Higher dispatches first from the
/// admission queue; ties break by submission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Background work: dispatched only when nothing above it waits.
    Low,
    /// The default service class.
    Normal,
    /// Latency-sensitive work: jumps the queue ahead of both others.
    High,
}

impl Priority {
    /// A stable lowercase label for traces and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// The per-mission knobs applied to the service's shared prepared base.
///
/// Every field is optional; [`MissionSpec::default`] runs the base
/// unchanged. Fault and churn plans are per-mission — two tenants can
/// run the same profile under different chaos schedules concurrently.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MissionSpec {
    /// Per-frame energy budget override (J); `None` keeps the base's.
    pub budget_j_per_frame: Option<f64>,
    /// Operating-mode override; `None` keeps the base's.
    pub mode: Option<OperatingMode>,
    /// Network fault plan; `None` keeps the base's.
    pub fault_plan: Option<FaultPlan>,
    /// Sensor fault plan; `None` keeps the base's.
    pub sensor_plan: Option<SensorFaultPlan>,
    /// Controller crash plan; `None` keeps the base's.
    pub controller_plan: Option<ControllerFaultPlan>,
    /// Fleet churn plan; `None` keeps the base's.
    pub churn: Option<ChurnPlan>,
}

impl MissionSpec {
    /// Checks the spec without touching a simulation, so admission can
    /// reject bad configs before any slot or queue capacity is spent.
    ///
    /// # Errors
    ///
    /// Returns the reason the spec cannot run: a negative or non-finite
    /// budget override.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(budget) = self.budget_j_per_frame {
            if !budget.is_finite() || budget < 0.0 {
                return Err(format!(
                    "budget override must be finite and >= 0, got {budget}"
                ));
            }
        }
        Ok(())
    }

    /// The base simulation with this spec's overrides applied, in a
    /// fixed order (mode, budget, faults, churn) so equal specs always
    /// build equal simulations.
    ///
    /// # Errors
    ///
    /// Returns the builder error message when an override is rejected
    /// (e.g. a negative budget).
    pub fn apply(&self, base: &Simulation) -> Result<Simulation, String> {
        self.validate()?;
        let mut sim = match self.mode {
            Some(mode) => base.with_mode(mode),
            None => base.clone(),
        };
        if let Some(budget) = self.budget_j_per_frame {
            sim = sim.with_budget(budget).map_err(|e| e.to_string())?;
        }
        if self.fault_plan.is_some() || self.sensor_plan.is_some() || self.controller_plan.is_some()
        {
            sim = sim.with_faults(
                self.fault_plan.clone().unwrap_or_else(FaultPlan::ideal),
                self.sensor_plan
                    .clone()
                    .unwrap_or_else(SensorFaultPlan::ideal),
                self.controller_plan
                    .clone()
                    .unwrap_or_else(ControllerFaultPlan::none),
            );
        }
        if let Some(churn) = self.churn.clone() {
            sim = sim.with_churn(churn);
        }
        Ok(sim)
    }

    /// A CRC32 fingerprint of the spec's canonical header string,
    /// carried in [`eecs_net::message::Message::MissionSubmit`] frames.
    /// The spec body stays modeled-by-size, like bulk payloads on the
    /// camera wire; the fingerprint is what lets the service detect a
    /// spec that mutated between client and queue.
    pub fn fingerprint(&self) -> u32 {
        let budget = match self.budget_j_per_frame {
            Some(b) => format!("{:016x}", b.to_bits()),
            None => "none".to_string(),
        };
        let header = format!(
            "mission-spec/1|budget={budget}|mode={:?}|fault={:?}|sensor={:?}|controller={:?}|churn={:?}",
            self.mode, self.fault_plan, self.sensor_plan, self.controller_plan, self.churn,
        );
        crc32(header.as_bytes())
    }
}

/// One tenant's request for one mission run.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionRequest {
    /// The submitting tenant's name (per-tenant caps and telemetry key).
    pub tenant: String,
    /// Queue priority.
    pub priority: Priority,
    /// Completion deadline in virtual-clock ticks, relative to arrival;
    /// `None` means best-effort.
    pub deadline_ticks: Option<u64>,
    /// Declared virtual cost in ticks (clamped to at least 1). The
    /// virtual clock bills this, not wall time, so schedules replay
    /// bit-identically under any worker count.
    pub work_ticks: u64,
    /// The knobs to apply to the shared base simulation.
    pub spec: MissionSpec,
}

impl MissionRequest {
    /// A best-effort, normal-priority, unit-cost request for `tenant`
    /// running the base unchanged.
    pub fn new(tenant: &str) -> MissionRequest {
        MissionRequest {
            tenant: tenant.to_string(),
            priority: Priority::Normal,
            deadline_ticks: None,
            work_ticks: 1,
            spec: MissionSpec::default(),
        }
    }

    /// This request with a different priority.
    pub fn with_priority(mut self, priority: Priority) -> MissionRequest {
        self.priority = priority;
        self
    }

    /// This request with a relative deadline in virtual ticks.
    pub fn with_deadline(mut self, ticks: u64) -> MissionRequest {
        self.deadline_ticks = Some(ticks);
        self
    }

    /// This request with a declared virtual cost in ticks.
    pub fn with_work(mut self, ticks: u64) -> MissionRequest {
        self.work_ticks = ticks;
        self
    }

    /// This request with a different mission spec.
    pub fn with_spec(mut self, spec: MissionSpec) -> MissionRequest {
        self.spec = spec;
        self
    }

    /// The declared cost with the minimum-one-tick clamp applied.
    pub fn cost_ticks(&self) -> u64 {
        self.work_ticks.max(1)
    }
}

/// Why the service refused a mission at admission.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// No free slot, and the wait queue (or the tenant's in-flight cap)
    /// is exhausted.
    QueueFull {
        /// Queue depth observed at the rejection.
        depth: usize,
    },
    /// The declared cost alone already exceeds the deadline — the
    /// mission could never finish in time even starting instantly.
    DeadlineInfeasible {
        /// The relative deadline the request declared.
        deadline: u64,
        /// The ticks the mission needs at minimum.
        needed: u64,
    },
    /// The spec failed validation before any capacity was considered.
    InvalidConfig {
        /// The validation error.
        reason: String,
    },
}

impl Rejected {
    /// A stable kind label for traces and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::DeadlineInfeasible { .. } => "deadline_infeasible",
            Rejected::InvalidConfig { .. } => "invalid_config",
        }
    }

    /// The nonzero wire verdict code carried in
    /// [`eecs_net::message::Message::MissionVerdict`] frames (0 means
    /// accepted).
    pub fn verdict_code(&self) -> u64 {
        match self {
            Rejected::QueueFull { .. } => 1,
            Rejected::DeadlineInfeasible { .. } => 2,
            Rejected::InvalidConfig { .. } => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_normal_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::High.label(), "high");
    }

    #[test]
    fn default_spec_validates_and_bad_budgets_do_not() {
        assert!(MissionSpec::default().validate().is_ok());
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let spec = MissionSpec {
                budget_j_per_frame: Some(bad),
                ..MissionSpec::default()
            };
            assert!(spec.validate().is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn fingerprint_separates_distinct_specs() {
        let base = MissionSpec::default();
        let budgeted = MissionSpec {
            budget_j_per_frame: Some(7.5),
            ..MissionSpec::default()
        };
        let chaotic = MissionSpec {
            fault_plan: Some(FaultPlan::seeded(3)),
            ..MissionSpec::default()
        };
        assert_ne!(base.fingerprint(), budgeted.fingerprint());
        assert_ne!(base.fingerprint(), chaotic.fingerprint());
        assert_eq!(base.fingerprint(), MissionSpec::default().fingerprint());
    }

    #[test]
    fn request_builders_and_cost_clamp() {
        let r = MissionRequest::new("acme")
            .with_priority(Priority::High)
            .with_deadline(9)
            .with_work(0);
        assert_eq!(r.tenant, "acme");
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.deadline_ticks, Some(9));
        assert_eq!(r.cost_ticks(), 1);
    }

    #[test]
    fn rejection_codes_are_stable() {
        assert_eq!(Rejected::QueueFull { depth: 4 }.verdict_code(), 1);
        assert_eq!(
            Rejected::DeadlineInfeasible {
                deadline: 1,
                needed: 2
            }
            .verdict_code(),
            2
        );
        let invalid = Rejected::InvalidConfig {
            reason: "bad".into(),
        };
        assert_eq!(invalid.verdict_code(), 3);
        assert_eq!(invalid.kind(), "invalid_config");
    }
}
