//! Service-level invariant rules, mirroring
//! [`eecs_core::testkit::InvariantChecker`]'s named-rule shape over the
//! service domain.
//!
//! The core checker's rules are higher-ranked over a simulation-report
//! context, so the service grows its own context and rule set instead
//! of forcing both domains through one type. Soak tests run both: this
//! checker over the batch, and the core checker over each mission's
//! fresh report.

use crate::request::MissionRequest;
use crate::schedule::{MissionVerdict, ServiceConfig};
use crate::service::ServiceRun;
use eecs_core::telemetry::Telemetry;

/// Everything a service rule may inspect.
pub struct ServiceContext<'a> {
    /// The service's static configuration.
    pub config: &'a ServiceConfig,
    /// The submitted batch, in order.
    pub requests: &'a [MissionRequest],
    /// The assembled run under audit.
    pub run: &'a ServiceRun,
    /// The service's telemetry handle (rules skip counter checks when
    /// it is a null handle).
    pub telemetry: &'a Telemetry,
}

/// One named service rule: returns a violation message per failure,
/// empty when clean.
pub type ServiceRule = Box<dyn Fn(&ServiceContext<'_>) -> Vec<String>>;

/// A named collection of service rules.
pub struct ServiceInvariants {
    rules: Vec<(String, ServiceRule)>,
}

impl Default for ServiceInvariants {
    fn default() -> Self {
        ServiceInvariants::with_defaults()
    }
}

impl ServiceInvariants {
    /// An empty rule set.
    pub fn new() -> ServiceInvariants {
        ServiceInvariants { rules: Vec::new() }
    }

    /// The default battery: admission conservation, queue bounds,
    /// same-tenant priority order, counter/event agreement, deadline
    /// accounting.
    pub fn with_defaults() -> ServiceInvariants {
        let mut inv = ServiceInvariants::new();
        inv.add_rule("admission-conservation", admission_conservation);
        inv.add_rule("queue-bounds", queue_bounds);
        inv.add_rule("priority-order", priority_order);
        inv.add_rule("counter-event-agreement", counter_event_agreement);
        inv.add_rule("deadline-accounting", deadline_accounting);
        inv
    }

    /// Registers a rule under `name`.
    pub fn add_rule(
        &mut self,
        name: &str,
        rule: impl Fn(&ServiceContext<'_>) -> Vec<String> + 'static,
    ) {
        self.rules.push((name.to_string(), Box::new(rule)));
    }

    /// The registered rule names, in registration order.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Runs every rule, returning `"rule: violation"` lines.
    pub fn check(&self, ctx: &ServiceContext<'_>) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, rule) in &self.rules {
            for v in rule(ctx) {
                violations.push(format!("{name}: {v}"));
            }
        }
        violations
    }

    /// Panics with every violation when any rule fails.
    ///
    /// # Panics
    ///
    /// Panics when any rule reports a violation.
    pub fn assert_clean(&self, ctx: &ServiceContext<'_>) {
        let violations = self.check(ctx);
        assert!(
            violations.is_empty(),
            "service invariants violated:\n  {}",
            violations.join("\n  ")
        );
    }
}

/// admitted + rejected == submitted, and every admitted mission has
/// exactly one completion record.
fn admission_conservation(ctx: &ServiceContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let run = ctx.run;
    let admitted = run.schedule.admitted();
    let rejected = run.schedule.rejections().len();
    if admitted.len() + rejected != ctx.requests.len() {
        v.push(format!(
            "{} admitted + {} rejected != {} submitted",
            admitted.len(),
            rejected,
            ctx.requests.len()
        ));
    }
    if run.completed.len() != admitted.len() {
        v.push(format!(
            "{} completions for {} admissions",
            run.completed.len(),
            admitted.len()
        ));
    }
    for m in &admitted {
        if run.completion(*m).is_none() {
            v.push(format!("admitted mission {m} has no completion record"));
        }
    }
    for (name, t) in &run.tenants {
        if t.admitted + t.rejected != t.submitted {
            v.push(format!("tenant {name}: admitted + rejected != submitted"));
        }
    }
    v
}

/// The queue never exceeded its capacity, and no tenant ever held more
/// in-flight (running + queued) missions than its cap.
fn queue_bounds(ctx: &ServiceContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let run = ctx.run;
    if run.schedule.max_queue_depth > ctx.config.queue_capacity {
        v.push(format!(
            "queue depth {} exceeded capacity {}",
            run.schedule.max_queue_depth, ctx.config.queue_capacity
        ));
    }
    // An admitted mission is in flight over [arrival, finish); audit
    // each tenant's overlap count at every one of its arrival ticks.
    let cap = ctx.config.tenant_inflight_cap.max(1);
    for probe in &run.schedule.outcomes {
        let MissionVerdict::Admitted { .. } = probe.verdict else {
            continue;
        };
        let t = probe.arrival_tick;
        let inflight = run
            .schedule
            .outcomes
            .iter()
            .filter(|o| o.tenant == probe.tenant)
            .filter(|o| match o.verdict {
                MissionVerdict::Admitted { finish_tick, .. } => {
                    o.arrival_tick <= t && t < finish_tick
                }
                MissionVerdict::Rejected(_) => false,
            })
            .count();
        if inflight > cap {
            v.push(format!(
                "tenant {} held {inflight} in-flight missions at tick {t} (cap {cap})",
                probe.tenant
            ));
        }
    }
    v
}

/// No same-tenant priority inversion: a higher-priority mission that
/// arrived before a lower-priority one started must start no later.
fn priority_order(ctx: &ServiceContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let outcomes = &ctx.run.schedule.outcomes;
    for hi in outcomes {
        let MissionVerdict::Admitted {
            start_tick: hi_start,
            ..
        } = hi.verdict
        else {
            continue;
        };
        for lo in outcomes {
            if hi.mission == lo.mission || hi.tenant != lo.tenant {
                continue;
            }
            let MissionVerdict::Admitted {
                start_tick: lo_start,
                ..
            } = lo.verdict
            else {
                continue;
            };
            let hi_req = &ctx.requests[hi.mission];
            let lo_req = &ctx.requests[lo.mission];
            if hi_req.priority > lo_req.priority
                && hi.arrival_tick < lo_start
                && hi_start > lo_start
            {
                v.push(format!(
                    "mission {} ({}) started at {} before waiting higher-priority {} (started {})",
                    lo.mission,
                    lo_req.priority.label(),
                    lo_start,
                    hi.mission,
                    hi_start
                ));
            }
        }
    }
    v
}

/// The service counters agree with the run's own accounting. Skipped
/// entirely under a null telemetry handle.
fn counter_event_agreement(ctx: &ServiceContext<'_>) -> Vec<String> {
    if !ctx.telemetry.enabled() {
        return Vec::new();
    }
    let metrics = ctx.telemetry.metrics();
    let run = ctx.run;
    let mut v = Vec::new();
    let admitted = run.schedule.admitted().len() as u64;
    let rejected = run.schedule.rejections().len() as u64;
    let missed = run.completed.iter().filter(|c| !c.deadline_met).count() as u64;
    for (name, want) in [
        ("serve.admitted", admitted),
        ("serve.rejected", rejected),
        ("serve.completed", run.completed.len() as u64),
        ("serve.deadline_missed", missed),
    ] {
        let got = metrics.counter(name);
        if got != want {
            v.push(format!("counter {name} = {got}, run says {want}"));
        }
    }
    for (tenant, t) in &run.tenants {
        let got = metrics.counter(&format!("serve.admitted.{tenant}"));
        if got != t.admitted {
            v.push(format!(
                "counter serve.admitted.{tenant} = {got}, run says {}",
                t.admitted
            ));
        }
    }
    v
}

/// `deadline_met` in every record matches the virtual-clock arithmetic,
/// and tenant summaries count the misses correctly.
fn deadline_accounting(ctx: &ServiceContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    for c in &ctx.run.completed {
        let req = &ctx.requests[c.mission];
        let arrival = ctx.run.schedule.outcomes[c.mission].arrival_tick;
        let want = match req.deadline_ticks {
            Some(d) => c.finished_tick - arrival <= d,
            None => true,
        };
        if c.deadline_met != want {
            v.push(format!(
                "mission {} deadline_met = {}, clock says {want}",
                c.mission, c.deadline_met
            ));
        }
    }
    let missed: u64 = ctx.run.tenants.values().map(|t| t.deadline_missed).sum();
    let actual = ctx.run.completed.iter().filter(|c| !c.deadline_met).count() as u64;
    if missed != actual {
        v.push(format!(
            "tenant summaries count {missed} deadline misses, completions show {actual}"
        ));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_are_registered_in_order() {
        let inv = ServiceInvariants::with_defaults();
        assert_eq!(
            inv.rule_names(),
            vec![
                "admission-conservation",
                "queue-bounds",
                "priority-order",
                "counter-event-agreement",
                "deadline-accounting",
            ]
        );
    }
}
