//! The admission controller and virtual-clock scheduler.
//!
//! [`plan_schedule`] is a *pure function* of `(config, request list)`:
//! it runs a discrete-event simulation on a seeded virtual clock —
//! request arrivals, slot dispatches, completions — and returns the
//! complete service trace before a single mission executes. Execution
//! then only fills in the reports; nothing about admission, ordering,
//! rejection or deadline accounting depends on wall time or worker
//! count, which is what makes a whole service run replay bit-identically.
//!
//! The clock bills each mission its *declared* cost
//! ([`MissionRequest::cost_ticks`]), not its wall time, for the same
//! reason the energy model bills modeled Joules instead of measured
//! ones: determinism first, fidelity second.

use crate::request::{MissionRequest, Priority, Rejected};
use std::collections::BTreeMap;

/// Static service parameters. The seed drives arrival spacing — the
/// only randomized part of the virtual clock — so one `(seed, request
/// list)` pair fixes the entire trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Seed of the virtual clock's arrival-gap stream.
    pub seed: u64,
    /// Concurrent execution slots (minimum 1).
    pub slots: usize,
    /// Wait-queue capacity; an arrival past this is rejected.
    pub queue_capacity: usize,
    /// Per-tenant cap on in-flight (running + queued) missions.
    pub tenant_inflight_cap: usize,
    /// Worker threads for report execution (`0` = auto). Affects wall
    /// time only, never the trace.
    pub workers: usize,
}

impl ServiceConfig {
    /// A small default service: 2 slots, a 4-deep queue, 4 in-flight
    /// missions per tenant, serial execution.
    pub fn new(seed: u64) -> ServiceConfig {
        ServiceConfig {
            seed,
            slots: 2,
            queue_capacity: 4,
            tenant_inflight_cap: 4,
            workers: 1,
        }
    }

    /// This config with a different slot count.
    pub fn with_slots(mut self, slots: usize) -> ServiceConfig {
        self.slots = slots;
        self
    }

    /// This config with a different queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServiceConfig {
        self.queue_capacity = capacity;
        self
    }

    /// This config with a different per-tenant in-flight cap.
    pub fn with_tenant_cap(mut self, cap: usize) -> ServiceConfig {
        self.tenant_inflight_cap = cap;
        self
    }

    /// This config with a different execution worker count.
    pub fn with_workers(mut self, workers: usize) -> ServiceConfig {
        self.workers = workers;
        self
    }
}

/// One moment of the service trace, in virtual-clock order.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// A mission was admitted and occupied a slot.
    Started {
        /// Virtual tick the slot was taken at.
        tick: u64,
        /// Mission index in the batch.
        mission: usize,
    },
    /// A running mission completed and freed its slot.
    Finished {
        /// Virtual tick the slot was freed at.
        tick: u64,
        /// Mission index in the batch.
        mission: usize,
        /// Whether it finished within its declared deadline.
        deadline_met: bool,
    },
    /// A mission was refused at admission.
    Rejected {
        /// Virtual tick the request arrived at.
        tick: u64,
        /// Mission index in the batch.
        mission: usize,
    },
}

/// A mission's fate in the planned schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum MissionVerdict {
    /// Admitted, with its slot occupancy on the virtual clock.
    Admitted {
        /// Tick the mission took a slot.
        start_tick: u64,
        /// Tick the mission freed the slot.
        finish_tick: u64,
        /// Whether `finish - arrival` met the declared deadline.
        deadline_met: bool,
    },
    /// Refused at admission.
    Rejected(Rejected),
}

impl MissionVerdict {
    /// The wire verdict code: 0 accepted, else the rejection's code.
    pub fn verdict_code(&self) -> u64 {
        match self {
            MissionVerdict::Admitted { .. } => 0,
            MissionVerdict::Rejected(r) => r.verdict_code(),
        }
    }
}

/// One mission's planned outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionOutcome {
    /// Mission index in the batch.
    pub mission: usize,
    /// The submitting tenant.
    pub tenant: String,
    /// Virtual tick the request arrived at.
    pub arrival_tick: u64,
    /// Admitted or rejected, with the details.
    pub verdict: MissionVerdict,
}

/// The complete planned service trace for one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-mission outcomes, indexed by batch position.
    pub outcomes: Vec<MissionOutcome>,
    /// Every start/finish/rejection in virtual-clock order.
    pub events: Vec<ServiceEvent>,
    /// The deepest the wait queue ever got.
    pub max_queue_depth: usize,
}

impl Schedule {
    /// Batch indices of admitted missions, in batch order.
    pub fn admitted(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.verdict, MissionVerdict::Admitted { .. }))
            .map(|o| o.mission)
            .collect()
    }

    /// Batch indices and reasons of rejected missions, in batch order.
    pub fn rejections(&self) -> Vec<(usize, &Rejected)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.verdict {
                MissionVerdict::Rejected(r) => Some((o.mission, r)),
                MissionVerdict::Admitted { .. } => None,
            })
            .collect()
    }
}

/// SplitMix64 finalizer keyed by `(seed, tag, i)` — the same
/// no-shared-stream discipline every seeded plan in the workspace uses,
/// so arrival spacing can never be perturbed by drawing order.
fn mix(seed: u64, tag: u64, i: u64) -> u64 {
    let mut z =
        seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const GAP_TAG: u64 = 0x5E21;

/// The virtual tick request `i` arrives at: cumulative seeded gaps of
/// 1–3 ticks, so arrivals are strictly ordered by batch index.
pub fn arrival_tick(seed: u64, i: usize) -> u64 {
    (0..=i).map(|k| 1 + mix(seed, GAP_TAG, k as u64) % 3).sum()
}

struct Running {
    finish: u64,
    seq: u64,
    mission: usize,
}

struct Queued {
    priority: Priority,
    seq: u64,
    mission: usize,
}

/// The discrete-event state of the virtual clock.
struct Clock<'a> {
    requests: &'a [MissionRequest],
    arrivals: &'a [u64],
    slots: usize,
    running: Vec<Running>,
    queue: Vec<Queued>,
    inflight: BTreeMap<String, usize>,
    events: Vec<ServiceEvent>,
    spans: Vec<Option<(u64, u64)>>,
    max_queue_depth: usize,
}

impl Clock<'_> {
    fn deadline_met(&self, mission: usize, finish: u64) -> bool {
        match self.requests[mission].deadline_ticks {
            Some(d) => finish - self.arrivals[mission] <= d,
            None => true,
        }
    }

    fn start(&mut self, mission: usize, tick: u64, seq: u64) {
        let finish = tick + self.requests[mission].cost_ticks();
        self.spans[mission] = Some((tick, finish));
        self.events.push(ServiceEvent::Started { tick, mission });
        self.running.push(Running {
            finish,
            seq,
            mission,
        });
    }

    /// Processes every completion due at or before `now`, dispatching
    /// from the queue as slots free. Completions at an arrival's own
    /// tick land *before* the arrival — a freed slot is visible to the
    /// request arriving that same tick.
    fn advance_to(&mut self, now: u64) {
        while let Some(idx) = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.finish <= now)
            .min_by_key(|(_, r)| (r.finish, r.seq))
            .map(|(i, _)| i)
        {
            let done = self.running.swap_remove(idx);
            let deadline_met = self.deadline_met(done.mission, done.finish);
            self.events.push(ServiceEvent::Finished {
                tick: done.finish,
                mission: done.mission,
                deadline_met,
            });
            let tenant = &self.requests[done.mission].tenant;
            *self.inflight.entry(tenant.clone()).or_insert(1) -= 1;
            // Work-conserving dispatch: the freed slot immediately takes
            // the highest-priority (then oldest) queued mission.
            let Some(best) = self
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(_, q)| (q.priority, std::cmp::Reverse(q.seq)))
                .map(|(i, _)| i)
            else {
                continue;
            };
            let next = self.queue.remove(best);
            self.start(next.mission, done.finish, next.seq);
        }
    }
}

/// Plans the complete service trace for `requests` under `config`.
///
/// Admission per arriving request, in order: spec validation
/// ([`Rejected::InvalidConfig`]), then deadline feasibility against the
/// declared cost ([`Rejected::DeadlineInfeasible`]), then the tenant
/// in-flight cap and queue capacity ([`Rejected::QueueFull`]). A free
/// slot starts the mission at its arrival tick; otherwise it waits in
/// the bounded queue and dispatches by (priority, arrival order) as
/// slots free — so a higher-priority request of the same tenant can
/// never be overtaken by a lower-priority one that was waiting with it.
pub fn plan_schedule(config: &ServiceConfig, requests: &[MissionRequest]) -> Schedule {
    let slots = config.slots.max(1);
    let tenant_cap = config.tenant_inflight_cap.max(1);
    let arrivals: Vec<u64> = (0..requests.len())
        .map(|i| arrival_tick(config.seed, i))
        .collect();
    let mut clock = Clock {
        requests,
        arrivals: &arrivals,
        slots,
        running: Vec::new(),
        queue: Vec::new(),
        inflight: BTreeMap::new(),
        events: Vec::new(),
        spans: vec![None; requests.len()],
        max_queue_depth: 0,
    };
    let mut rejections: Vec<Option<Rejected>> = vec![None; requests.len()];

    for (i, req) in requests.iter().enumerate() {
        let now = arrivals[i];
        clock.advance_to(now);
        let seq = i as u64;
        let verdict = if let Err(reason) = req.spec.validate() {
            Some(Rejected::InvalidConfig { reason })
        } else if req.deadline_ticks.is_some_and(|d| d < req.cost_ticks()) {
            Some(Rejected::DeadlineInfeasible {
                deadline: req.deadline_ticks.unwrap_or(0),
                needed: req.cost_ticks(),
            })
        } else if clock.inflight.get(&req.tenant).copied().unwrap_or(0) >= tenant_cap {
            Some(Rejected::QueueFull {
                depth: clock.queue.len(),
            })
        } else if clock.running.len() < clock.slots {
            *clock.inflight.entry(req.tenant.clone()).or_insert(0) += 1;
            clock.start(i, now, seq);
            None
        } else if clock.queue.len() < config.queue_capacity {
            *clock.inflight.entry(req.tenant.clone()).or_insert(0) += 1;
            clock.queue.push(Queued {
                priority: req.priority,
                seq,
                mission: i,
            });
            clock.max_queue_depth = clock.max_queue_depth.max(clock.queue.len());
            None
        } else {
            Some(Rejected::QueueFull {
                depth: clock.queue.len(),
            })
        };
        if let Some(rejected) = verdict {
            clock.events.push(ServiceEvent::Rejected {
                tick: now,
                mission: i,
            });
            rejections[i] = Some(rejected);
        }
    }
    clock.advance_to(u64::MAX);

    let outcomes = requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            let verdict = match rejections[i].take() {
                Some(r) => MissionVerdict::Rejected(r),
                None => {
                    let (start_tick, finish_tick) =
                        clock.spans[i].expect("admitted missions always run to completion");
                    MissionVerdict::Admitted {
                        start_tick,
                        finish_tick,
                        deadline_met: clock.deadline_met(i, finish_tick),
                    }
                }
            };
            MissionOutcome {
                mission: i,
                tenant: req.tenant.clone(),
                arrival_tick: arrivals[i],
                verdict,
            }
        })
        .collect();

    Schedule {
        outcomes,
        events: clock.events,
        max_queue_depth: clock.max_queue_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MissionSpec;

    fn batch(n: usize) -> Vec<MissionRequest> {
        (0..n).map(|_| MissionRequest::new("t")).collect()
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        for seed in [0, 1, 99] {
            for i in 1..20 {
                assert!(arrival_tick(seed, i) > arrival_tick(seed, i - 1));
            }
        }
    }

    #[test]
    fn everything_admits_when_capacity_is_ample() {
        let config = ServiceConfig::new(1).with_slots(4).with_queue_capacity(8);
        let s = plan_schedule(&config, &batch(6));
        assert_eq!(s.admitted().len(), 6);
        assert!(s.rejections().is_empty());
    }

    #[test]
    fn queue_overflow_rejects_with_depth() {
        // One slot, zero queue: the second concurrent arrival bounces.
        let config = ServiceConfig::new(1)
            .with_slots(1)
            .with_queue_capacity(0)
            .with_tenant_cap(10);
        let requests: Vec<MissionRequest> = (0..4)
            .map(|_| MissionRequest::new("t").with_work(50))
            .collect();
        let s = plan_schedule(&config, &requests);
        assert!(!s.rejections().is_empty());
        for (_, r) in s.rejections() {
            assert!(matches!(r, Rejected::QueueFull { .. }));
        }
    }

    #[test]
    fn infeasible_deadlines_reject_before_capacity() {
        let config = ServiceConfig::new(1);
        let requests = vec![MissionRequest::new("t").with_work(10).with_deadline(3)];
        let s = plan_schedule(&config, &requests);
        assert_eq!(
            s.rejections()[0].1,
            &Rejected::DeadlineInfeasible {
                deadline: 3,
                needed: 10
            }
        );
    }

    #[test]
    fn invalid_specs_reject_without_consuming_capacity() {
        let config = ServiceConfig::new(1).with_slots(1).with_queue_capacity(0);
        let bad = MissionRequest::new("t").with_spec(MissionSpec {
            budget_j_per_frame: Some(-1.0),
            ..MissionSpec::default()
        });
        let requests = vec![bad, MissionRequest::new("t")];
        let s = plan_schedule(&config, &requests);
        assert!(matches!(
            s.outcomes[0].verdict,
            MissionVerdict::Rejected(Rejected::InvalidConfig { .. })
        ));
        // The invalid request held nothing: the next one still admits.
        assert_eq!(s.admitted(), vec![1]);
    }

    #[test]
    fn tenant_cap_binds_per_tenant_not_globally() {
        let config = ServiceConfig::new(1)
            .with_slots(1)
            .with_queue_capacity(8)
            .with_tenant_cap(1);
        let requests = vec![
            MissionRequest::new("a").with_work(100),
            MissionRequest::new("a").with_work(100),
            MissionRequest::new("b").with_work(100),
        ];
        let s = plan_schedule(&config, &requests);
        assert!(matches!(
            s.outcomes[1].verdict,
            MissionVerdict::Rejected(Rejected::QueueFull { .. })
        ));
        assert!(matches!(
            s.outcomes[2].verdict,
            MissionVerdict::Admitted { .. }
        ));
    }

    #[test]
    fn priority_dispatches_before_arrival_order() {
        // One busy slot; a low- then a high-priority request queue up.
        // The freed slot must take the high one first.
        let config = ServiceConfig::new(1).with_slots(1).with_queue_capacity(4);
        let requests = vec![
            MissionRequest::new("t").with_work(20),
            MissionRequest::new("t")
                .with_priority(Priority::Low)
                .with_work(5),
            MissionRequest::new("t")
                .with_priority(Priority::High)
                .with_work(5),
        ];
        let s = plan_schedule(&config, &requests);
        let start = |m: usize| match s.outcomes[m].verdict {
            MissionVerdict::Admitted { start_tick, .. } => start_tick,
            _ => panic!("mission {m} rejected"),
        };
        assert!(start(2) < start(1), "high priority must dispatch first");
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_requests() {
        let config = ServiceConfig::new(42).with_slots(2).with_queue_capacity(2);
        let requests: Vec<MissionRequest> = (0..10)
            .map(|i| {
                MissionRequest::new(if i % 2 == 0 { "a" } else { "b" })
                    .with_work(1 + (i as u64 % 4))
                    .with_priority(if i % 3 == 0 {
                        Priority::High
                    } else {
                        Priority::Normal
                    })
            })
            .collect();
        assert_eq!(
            plan_schedule(&config, &requests),
            plan_schedule(&config, &requests)
        );
        let reseeded = ServiceConfig::new(43).with_slots(2).with_queue_capacity(2);
        assert_ne!(
            plan_schedule(&config, &requests).outcomes,
            plan_schedule(&reseeded, &requests).outcomes,
        );
    }

    #[test]
    fn finished_events_count_matches_admissions() {
        let config = ServiceConfig::new(7).with_slots(2).with_queue_capacity(1);
        let requests: Vec<MissionRequest> = (0..8)
            .map(|i| MissionRequest::new("t").with_work(1 + i as u64 % 3))
            .collect();
        let s = plan_schedule(&config, &requests);
        let finished = s
            .events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::Finished { .. }))
            .count();
        let rejected = s
            .events
            .iter()
            .filter(|e| matches!(e, ServiceEvent::Rejected { .. }))
            .count();
        assert_eq!(finished, s.admitted().len());
        assert_eq!(finished + rejected, requests.len());
    }
}
