//! Global detection accuracy (Section IV-C).
//!
//! Accuracy is characterized by two measurable quantities: the number of
//! distinct objects jointly detected (after re-identification) and the mean
//! combined detection probability of those objects, where each object's
//! probability fuses its per-camera probabilities by Eq. 6:
//!
//! ```text
//! P_i = 1 − Π_j (1 − P_ij)
//! ```

use crate::reid::FusedObject;

/// Eq. 6: the combined true-positive probability of per-camera
/// probabilities `p_ij`.
///
/// # Panics
///
/// Panics (debug) if any probability is outside `[0, 1]`.
pub fn combined_probability(per_camera: &[f64]) -> f64 {
    let mut miss = 1.0;
    for &p in per_camera {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        miss *= 1.0 - p.clamp(0.0, 1.0);
    }
    1.0 - miss
}

/// Greedy matching of fused objects against ground-truth ground positions:
/// each fused object claims the nearest unclaimed truth within `gate_m`
/// meters. Returns the number of correctly detected people.
pub fn count_correct(
    fused: &[FusedObject],
    gt_positions: &[eecs_geometry::point::Point2],
    gate_m: f64,
) -> usize {
    let mut claimed = vec![false; gt_positions.len()];
    let mut correct = 0;
    for obj in fused {
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in gt_positions.iter().enumerate() {
            if claimed[i] {
                continue;
            }
            let d = obj.ground.distance(p);
            if d <= gate_m && best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((i, d));
            }
        }
        if let Some((i, _)) = best {
            claimed[i] = true;
            correct += 1;
        }
    }
    correct
}

/// A measured global accuracy: `(N, P̄)`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GlobalAccuracy {
    /// Number of distinct detected objects `N` (summed over assessed
    /// frames).
    pub objects: usize,
    /// Mean combined detection probability `P̄` over those objects
    /// (0 when none).
    pub mean_probability: f64,
}

impl GlobalAccuracy {
    /// Aggregates fused objects from one or more frames.
    pub fn from_objects(objects: &[FusedObject]) -> GlobalAccuracy {
        if objects.is_empty() {
            return GlobalAccuracy::default();
        }
        let total: f64 = objects.iter().map(|o| o.probability).sum();
        GlobalAccuracy {
            objects: objects.len(),
            mean_probability: total / objects.len() as f64,
        }
    }
}

/// The desired accuracy `D = [D_n, D_p]`, derived from a baseline
/// (`N*`, `P*`) and the `γ` knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesiredAccuracy {
    /// Required object count `D_n ≥ γ_n · N*`.
    pub min_objects: f64,
    /// Required mean probability `D_p ≥ γ_p · P*`.
    pub min_probability: f64,
}

impl DesiredAccuracy {
    /// Builds `D` from the all-best baseline and the γ knobs
    /// (Section IV-C / VI-E).
    pub fn from_baseline(baseline: &GlobalAccuracy, gamma_n: f64, gamma_p: f64) -> DesiredAccuracy {
        DesiredAccuracy {
            min_objects: gamma_n * baseline.objects as f64,
            min_probability: gamma_p * baseline.mean_probability,
        }
    }

    /// Whether a measured accuracy meets the requirement.
    pub fn met_by(&self, measured: &GlobalAccuracy) -> bool {
        measured.objects as f64 >= self.min_objects - 1e-9
            && measured.mean_probability >= self.min_probability - 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reid::FusedObject;
    use eecs_geometry::point::Point2;

    fn obj(p: f64) -> FusedObject {
        FusedObject {
            ground: Point2::new(0.0, 0.0),
            cameras: vec![0],
            probability: p,
        }
    }

    #[test]
    fn eq6_single_camera_identity() {
        assert!((combined_probability(&[0.7]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn eq6_two_cameras() {
        // 1 − 0.3·0.4 = 0.88.
        assert!((combined_probability(&[0.7, 0.6]) - 0.88).abs() < 1e-12);
    }

    #[test]
    fn eq6_monotone_in_cameras() {
        let one = combined_probability(&[0.5]);
        let two = combined_probability(&[0.5, 0.5]);
        let three = combined_probability(&[0.5, 0.5, 0.5]);
        assert!(one < two && two < three);
        assert!(three <= 1.0);
    }

    #[test]
    fn eq6_empty_is_zero() {
        assert_eq!(combined_probability(&[]), 0.0);
    }

    #[test]
    fn eq6_certain_camera_dominates() {
        assert!((combined_probability(&[1.0, 0.1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_accuracy_aggregates() {
        let acc = GlobalAccuracy::from_objects(&[obj(0.8), obj(0.6)]);
        assert_eq!(acc.objects, 2);
        assert!((acc.mean_probability - 0.7).abs() < 1e-12);
        assert_eq!(GlobalAccuracy::from_objects(&[]), GlobalAccuracy::default());
    }

    #[test]
    fn count_correct_greedy_matching() {
        use eecs_geometry::point::Point2;
        let fused = vec![obj(0.9), obj(0.8)];
        // Both fused objects sit at the origin; two truths, one nearby.
        let gts = vec![Point2::new(0.1, 0.0), Point2::new(5.0, 5.0)];
        assert_eq!(count_correct(&fused, &gts, 1.0), 1);
        assert_eq!(count_correct(&fused, &gts, 10.0), 2);
        assert_eq!(count_correct(&[], &gts, 1.0), 0);
        assert_eq!(count_correct(&fused, &[], 1.0), 0);
    }

    #[test]
    fn desired_accuracy_gate() {
        let baseline = GlobalAccuracy {
            objects: 100,
            mean_probability: 0.9,
        };
        let d = DesiredAccuracy::from_baseline(&baseline, 0.85, 0.8);
        assert!((d.min_objects - 85.0).abs() < 1e-12);
        assert!((d.min_probability - 0.72).abs() < 1e-12);
        assert!(d.met_by(&GlobalAccuracy {
            objects: 85,
            mean_probability: 0.72
        }));
        assert!(!d.met_by(&GlobalAccuracy {
            objects: 84,
            mean_probability: 0.9
        }));
        assert!(!d.met_by(&GlobalAccuracy {
            objects: 100,
            mean_probability: 0.71
        }));
    }
}
