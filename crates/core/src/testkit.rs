//! Post-run invariant auditing for simulation tests.
//!
//! Every scenario in the test suite — ideal, network chaos, sensor
//! chaos, partitions, integrity faults, fleet churn — must obey the same
//! conservation laws no matter what the fault plans did: energy drained
//! never exceeds a battery's capacity, plans never name a camera that is
//! not a fleet member, and the report's summary counters agree with the
//! trace events that were recorded while it ran. [`InvariantChecker`]
//! bundles those laws as named, pluggable rules so `tests/invariants.rs`
//! can sweep one auditor across every scenario (serial and parallel)
//! instead of re-deriving ad-hoc assertions per test.
//!
//! The checker is deliberately post-hoc: it reads a finished
//! [`SimulationReport`] plus the run's trace events, so it cannot
//! perturb the run it audits — an audited run stays bit-identical to an
//! unaudited one.

use crate::simulation::{Simulation, SimulationReport};
use crate::telemetry::TraceEvent;

/// Everything a rule may inspect about one finished run.
pub struct InvariantContext<'a> {
    /// The finished report under audit.
    pub report: &'a SimulationReport,
    /// The run's recorded trace events. Pass an empty slice when the
    /// run used the null telemetry sink — event-based rules then skip
    /// rather than report phantom mismatches. Callers must ensure the
    /// flight recorder did not evict (capacity ≥ event count), or the
    /// counter-agreement rule will flag the truncation.
    pub events: &'a [TraceEvent],
    /// Per-camera battery capacities in Joules (from the fleet's
    /// [`eecs_energy::profile::DeviceProfile`]s). An empty slice skips
    /// the capacity bound but keeps the other energy laws.
    pub capacities: &'a [f64],
}

type Rule = Box<dyn Fn(&InvariantContext<'_>) -> Vec<String>>;

/// A named, pluggable post-run auditor.
pub struct InvariantChecker {
    rules: Vec<(String, Rule)>,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        InvariantChecker::with_defaults()
    }
}

impl InvariantChecker {
    /// An auditor with no rules; add them with [`Self::add_rule`].
    pub fn new() -> InvariantChecker {
        InvariantChecker { rules: Vec::new() }
    }

    /// The standard conservation laws: energy accounting, membership of
    /// every planned camera, counter/event agreement, and quarantine
    /// strikes never referencing departed cameras.
    pub fn with_defaults() -> InvariantChecker {
        let mut checker = InvariantChecker::new();
        checker.add_rule("energy-conservation", rule_energy_conservation);
        checker.add_rule("assignment-membership", rule_assignment_membership);
        checker.add_rule("counter-event-agreement", rule_counter_event_agreement);
        checker.add_rule("quarantine-membership", rule_quarantine_membership);
        checker
    }

    /// Registers one more rule under `name`. A rule returns one message
    /// per violation it finds, or an empty vector when satisfied.
    pub fn add_rule<F>(&mut self, name: &str, rule: F)
    where
        F: Fn(&InvariantContext<'_>) -> Vec<String> + 'static,
    {
        self.rules.push((name.to_string(), Box::new(rule)));
    }

    /// The registered rule names, in evaluation order.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Runs every rule and collects all violations (never short-circuits
    /// — a failing audit should show the full damage at once).
    pub fn check(&self, ctx: &InvariantContext<'_>) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, rule) in &self.rules {
            for v in rule(ctx) {
                violations.push(format!("{name}: {v}"));
            }
        }
        violations
    }

    /// Panics with every violation when the audit is not clean.
    ///
    /// # Panics
    ///
    /// Panics if any rule reports a violation, listing all of them.
    pub fn assert_clean(&self, ctx: &InvariantContext<'_>) {
        let violations = self.check(ctx);
        assert!(
            violations.is_empty(),
            "invariant violations:\n  {}",
            violations.join("\n  ")
        );
    }
}

/// Fleet membership per round, derived from the recorded join/leave
/// events: `timeline[r][j]` says whether camera `j` was a member during
/// round `r`. Every camera starts as a member (the runtime emits a
/// round-0 `CameraLeave` for cameras absent from the start), and the
/// timeline reflects what the runtime *actually did* — including
/// deferred departures of seat-holding cameras — not the raw plan.
pub fn membership_timeline(events: &[TraceEvent], cams: usize, rounds: usize) -> Vec<Vec<bool>> {
    let mut member = vec![true; cams];
    let mut timeline = Vec::with_capacity(rounds);
    for r in 0..rounds {
        for e in events {
            match *e {
                TraceEvent::CameraJoin { round, camera } if round == r && camera < cams => {
                    member[camera] = true;
                }
                TraceEvent::CameraLeave { round, camera } if round == r && camera < cams => {
                    member[camera] = false;
                }
                _ => {}
            }
        }
        timeline.push(member.clone());
    }
    timeline
}

/// Runs the simulation twice and demands bit-identical reports — the
/// replay half of the audit. Returns the report for further checking.
///
/// # Errors
///
/// Returns a description of the first divergence (or the run error).
pub fn verify_replay(sim: &Simulation) -> Result<SimulationReport, String> {
    let first = sim.run().map_err(|e| format!("first run failed: {e}"))?;
    let second = sim.run().map_err(|e| format!("second run failed: {e}"))?;
    if first != second {
        return Err(format!(
            "replay diverged: total {} J vs {} J, {} vs {} rounds",
            first.total_energy_j,
            second.total_energy_j,
            first.rounds.len(),
            second.rounds.len()
        ));
    }
    Ok(first)
}

/// Relative tolerance for energy sums re-added in a different grouping.
const ENERGY_REL_EPS: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= ENERGY_REL_EPS * a.abs().max(b.abs()).max(1.0)
}

fn rule_energy_conservation(ctx: &InvariantContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let r = ctx.report;
    let mut sum = 0.0;
    for (j, &e) in r.per_camera_energy.iter().enumerate() {
        if !e.is_finite() || e < 0.0 {
            v.push(format!("camera {j} drained a non-physical {e} J"));
            continue;
        }
        if let Some(&cap) = ctx.capacities.get(j) {
            if e > cap {
                v.push(format!("camera {j} drained {e} J from a {cap} J battery"));
            }
        }
        sum += e;
    }
    if !close(sum, r.total_energy_j) {
        v.push(format!(
            "per-camera energies sum to {sum} J but the report totals {} J",
            r.total_energy_j
        ));
    }
    let mut round_sum = 0.0;
    for (i, round) in r.rounds.iter().enumerate() {
        if !round.energy_j.is_finite() || round.energy_j < -1e-12 {
            v.push(format!(
                "round {i} recorded a non-monotone energy delta {} J",
                round.energy_j
            ));
        }
        round_sum += round.energy_j;
    }
    // Rounds cover everything but the one-time feature uploads.
    if round_sum > r.total_energy_j + ENERGY_REL_EPS * r.total_energy_j.abs().max(1.0) {
        v.push(format!(
            "rounds sum to {round_sum} J, more than the run total {} J",
            r.total_energy_j
        ));
    }
    v
}

fn rule_assignment_membership(ctx: &InvariantContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let r = ctx.report;
    let cams = r.per_camera_energy.len();
    let timeline = membership_timeline(ctx.events, cams, r.rounds.len());
    for (i, round) in r.rounds.iter().enumerate() {
        let members = &timeline[i];
        for (&j, alg) in &round.assignment {
            if j >= cams {
                v.push(format!("round {i} assigns {alg} to unknown camera {j}"));
            } else if !members[j] {
                v.push(format!("round {i} assigns {alg} to departed camera {j}"));
            }
        }
        for &j in &round.active {
            if j >= cams {
                v.push(format!("round {i} activates unknown camera {j}"));
            } else if !members[j] {
                v.push(format!("round {i} activates departed camera {j}"));
            }
        }
    }
    v
}

fn rule_counter_event_agreement(ctx: &InvariantContext<'_>) -> Vec<String> {
    if ctx.events.is_empty() {
        // Null telemetry: nothing recorded, nothing to cross-check.
        return Vec::new();
    }
    let mut v = Vec::new();
    let r = ctx.report;
    let count = |pred: fn(&TraceEvent) -> bool| ctx.events.iter().filter(|e| pred(e)).count();
    let checks: [(&str, usize, usize); 8] = [
        (
            "quarantine_strikes",
            r.quarantine_strikes,
            count(|e| matches!(e, TraceEvent::QuarantineStrike { .. })),
        ),
        (
            "failovers",
            r.failovers.len(),
            count(|e| matches!(e, TraceEvent::Failover { .. })),
        ),
        (
            "elections",
            r.elections,
            count(|e| matches!(e, TraceEvent::Election { .. })),
        ),
        (
            "reconciliations",
            r.reconciliations,
            count(|e| matches!(e, TraceEvent::Reconcile { .. })),
        ),
        (
            "partitions",
            r.partitions,
            count(|e| matches!(e, TraceEvent::PartitionStart { .. })),
        ),
        (
            "camera_joins",
            r.camera_joins,
            count(|e| matches!(e, TraceEvent::CameraJoin { .. })),
        ),
        (
            "camera_leaves",
            r.camera_leaves,
            count(|e| matches!(e, TraceEvent::CameraLeave { .. })),
        ),
        (
            "rounds",
            r.rounds.len(),
            count(|e| matches!(e, TraceEvent::RoundStart { .. })),
        ),
    ];
    for (name, counter, events) in checks {
        if counter != events {
            v.push(format!(
                "report counts {counter} {name} but the trace recorded {events}"
            ));
        }
    }
    let rolled: u64 = ctx
        .events
        .iter()
        .map(|e| match *e {
            TraceEvent::CheckpointRollback { rolled_back, .. } => rolled_back,
            _ => 0,
        })
        .sum();
    if rolled != r.checkpoint_rollbacks {
        v.push(format!(
            "report counts {} checkpoint rollbacks but the trace recorded {rolled}",
            r.checkpoint_rollbacks
        ));
    }
    v
}

fn rule_quarantine_membership(ctx: &InvariantContext<'_>) -> Vec<String> {
    let mut v = Vec::new();
    let r = ctx.report;
    let cams = r.per_camera_energy.len();
    let timeline = membership_timeline(ctx.events, cams, r.rounds.len());
    for e in ctx.events {
        if let TraceEvent::QuarantineStrike {
            round,
            camera,
            algorithm,
            ..
        } = *e
        {
            let member = timeline
                .get(round)
                .and_then(|m| m.get(camera).copied())
                .unwrap_or(false);
            if !member {
                v.push(format!(
                    "round {round} struck {algorithm} on departed camera {camera}"
                ));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::{OperatingMode, RoundRecord};
    use eecs_detect::detection::AlgorithmId;
    use eecs_net::transport::TransportStats;
    use std::collections::BTreeMap;

    fn report() -> SimulationReport {
        let mut assignment = BTreeMap::new();
        assignment.insert(0, AlgorithmId::Acf);
        SimulationReport {
            mode: OperatingMode::FullEecs,
            rounds: vec![RoundRecord {
                first_frame: 40,
                last_frame: 65,
                active: vec![0],
                assignment,
                energy_j: 10.0,
                correct: 3,
                gt: 4,
            }],
            total_energy_j: 12.0,
            correctly_detected: 3,
            gt_objects: 4,
            per_camera_energy: vec![7.0, 5.0],
            transport: vec![TransportStats::default(); 2],
            downlink: TransportStats::default(),
            failovers: Vec::new(),
            degraded_frames: 0,
            dropped_frames: 0,
            quarantine_strikes: 0,
            partitions: 0,
            elections: 0,
            reconciliations: 0,
            split_brain_rounds: 0,
            corrupted_frames: 0,
            checkpoint_rollbacks: 0,
            camera_joins: 0,
            camera_leaves: 0,
        }
    }

    fn events() -> Vec<TraceEvent> {
        vec![TraceEvent::RoundStart {
            round: 0,
            first_frame: 40,
        }]
    }

    #[test]
    fn clean_report_passes_all_default_rules() {
        let r = report();
        let e = events();
        let ctx = InvariantContext {
            report: &r,
            events: &e,
            capacities: &[1e12, 1e12],
        };
        InvariantChecker::with_defaults().assert_clean(&ctx);
        assert_eq!(
            InvariantChecker::with_defaults().rule_names(),
            vec![
                "energy-conservation",
                "assignment-membership",
                "counter-event-agreement",
                "quarantine-membership",
            ]
        );
    }

    #[test]
    fn overdrawn_battery_is_flagged() {
        let r = report();
        let e = events();
        let ctx = InvariantContext {
            report: &r,
            events: &e,
            capacities: &[6.0, 1e12],
        };
        let violations = InvariantChecker::with_defaults().check(&ctx);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].starts_with("energy-conservation:"));
        assert!(violations[0].contains("camera 0 drained 7 J"));
    }

    #[test]
    fn total_mismatch_and_negative_round_are_flagged() {
        let mut r = report();
        r.total_energy_j = 99.0;
        r.rounds[0].energy_j = -1.0;
        let ctx = InvariantContext {
            report: &r,
            events: &[],
            capacities: &[],
        };
        let violations = InvariantChecker::with_defaults().check(&ctx);
        assert!(violations.iter().any(|v| v.contains("sum to 12 J")));
        assert!(violations.iter().any(|v| v.contains("non-monotone")));
    }

    #[test]
    fn departed_camera_in_plan_is_flagged() {
        let mut r = report();
        r.camera_leaves = 1;
        let e = vec![
            TraceEvent::CameraLeave {
                round: 0,
                camera: 0,
            },
            TraceEvent::RoundStart {
                round: 0,
                first_frame: 40,
            },
            TraceEvent::QuarantineStrike {
                round: 0,
                camera: 0,
                algorithm: AlgorithmId::Acf,
                strikes: 1,
            },
        ];
        r.quarantine_strikes = 1;
        let ctx = InvariantContext {
            report: &r,
            events: &e,
            capacities: &[],
        };
        let violations = InvariantChecker::with_defaults().check(&ctx);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("assigns ACF to departed camera 0")),
            "{violations:?}"
        );
        assert!(violations.iter().any(|v| v.contains("activates departed")));
        assert!(
            violations
                .iter()
                .any(|v| v.starts_with("quarantine-membership:")),
            "{violations:?}"
        );
    }

    #[test]
    fn counter_event_disagreement_is_flagged() {
        let mut r = report();
        r.quarantine_strikes = 3;
        let e = events();
        let ctx = InvariantContext {
            report: &r,
            events: &e,
            capacities: &[],
        };
        let violations = InvariantChecker::with_defaults().check(&ctx);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("counts 3 quarantine_strikes but the trace recorded 0")),
            "{violations:?}"
        );
        // With no events recorded the rule skips instead of guessing.
        let ctx = InvariantContext {
            report: &r,
            events: &[],
            capacities: &[],
        };
        assert!(InvariantChecker::with_defaults().check(&ctx).is_empty());
    }

    #[test]
    fn custom_rules_plug_in() {
        let mut checker = InvariantChecker::new();
        checker.add_rule("no-partitions", |ctx| {
            if ctx.report.partitions > 0 {
                vec!["partition observed".into()]
            } else {
                Vec::new()
            }
        });
        let mut r = report();
        let ctx = InvariantContext {
            report: &r,
            events: &[],
            capacities: &[],
        };
        assert!(checker.check(&ctx).is_empty());
        r.partitions = 1;
        let ctx = InvariantContext {
            report: &r,
            events: &[],
            capacities: &[],
        };
        assert_eq!(
            checker.check(&ctx),
            vec!["no-partitions: partition observed"]
        );
    }

    #[test]
    fn membership_timeline_tracks_leave_and_rejoin() {
        let e = vec![
            TraceEvent::CameraLeave {
                round: 1,
                camera: 1,
            },
            TraceEvent::CameraJoin {
                round: 3,
                camera: 1,
            },
        ];
        let t = membership_timeline(&e, 2, 4);
        assert_eq!(t[0], vec![true, true]);
        assert_eq!(t[1], vec![true, false]);
        assert_eq!(t[2], vec![true, false]);
        assert_eq!(t[3], vec![true, true]);
    }
}
