//! The closed-loop testbed simulation (Section VI-E).
//!
//! Drives a dataset's four feeds through rounds of
//! assessment → selection → operation, with every Joule of processing and
//! communication charged to the camera batteries. The three operating
//! modes are the three bars of Figs. 5–6:
//!
//! * [`OperatingMode::AllBest`] — every camera always runs its best
//!   budget-feasible algorithm (the paper's baseline),
//! * [`OperatingMode::CameraSubset`] — EECS chooses a sufficient camera
//!   subset but keeps best algorithms,
//! * [`OperatingMode::FullEecs`] — subset choice plus algorithm
//!   downgrades (the complete framework).
//!
//! As in the paper, only ground-truth-annotated frames are processed
//! ("we only process frames that have ground truth information",
//! Section VI-E), so a 100-frame assessment period spans 4 annotated
//! frames on datasets #1/#3 and 10 on dataset #2.

use crate::camera_node::CameraNode;
use crate::checkpoint::{CheckpointFaultPlan, CheckpointStore, SimulationCheckpoint};
use crate::config::{ConfigError, EecsConfig};
use crate::controller::{AssessmentCache, CameraAssessment, Controller, QuarantineLedger};
use crate::features::FeatureExtractor;
use crate::metadata::CameraReport;
use crate::profile::TrainingRecord;
use crate::reconcile::{reconcile, SeatSnapshot};
use crate::reid::ReidConfig;
use crate::selection::AssessmentData;
use crate::telemetry::{Telemetry, TraceEvent};
use crate::training::train_record;
use crate::{EecsError, Result};
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::AlgorithmId;
use eecs_detect::health::DetectorHealth;
use eecs_energy::budget::{BatteryState, EnergyBudget};
use eecs_energy::comm::JPEG_BYTES_PER_PIXEL;
use eecs_energy::meter::PowerMeter;
use eecs_energy::profile::DeviceProfile;
use eecs_net::fault::{ChurnPlan, ControllerFaultPlan, Endpoint, FaultPlan, PartitionPlan};
use eecs_net::message::Message;
use eecs_net::reliable::Delivery;
use eecs_net::transport::{Network, TransportStats};
use eecs_scene::dataset::DatasetProfile;
use eecs_scene::rig::{rig_calibrations, FleetView};
use eecs_scene::sensor_fault::{FrameImpairment, SensorFaultPlan};
use eecs_scene::sequence::{FrameData, VideoFeed};
use std::collections::BTreeMap;

/// Ground-distance tolerance when scoring fused objects against ground
/// truth (meters).
const GT_MATCH_GATE_M: f64 = 1.2;

/// Telemetry histogram buckets for per-detection object counts.
const DETECT_OBJECTS_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0];

/// Telemetry histogram buckets for per-round energy (J).
const ROUND_ENERGY_BOUNDS: &[f64] = &[5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

/// Host-side execution settings: how the simulator schedules the pure
/// detection work of a round. These knobs change wall-clock time only —
/// detections, op counters, and every Joule of modeled energy are
/// bit-identical across all settings (the stateful battery/network
/// effects always replay serially in the original order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads for the per-round detection fan-out. `0` means
    /// auto (the host's available parallelism); `1` runs inline.
    pub workers: usize,
    /// Share per-frame features (pyramid levels, channel stacks) across
    /// the algorithms assessed on the same frame. Host speedup only: the
    /// modeled cameras run each algorithm in isolation, so per-algorithm
    /// `ops` counters and `processing_energy` charges are not reduced.
    pub feature_cache: bool,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism {
            workers: 0,
            feature_cache: true,
        }
    }
}

impl Parallelism {
    /// Fully serial reference settings: one worker, no feature sharing.
    pub fn serial() -> Parallelism {
        Parallelism {
            workers: 1,
            feature_cache: false,
        }
    }
}

/// Which coordination strategy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatingMode {
    /// All cameras, best algorithms (baseline of Figs. 5–6).
    AllBest,
    /// EECS camera subset, best algorithms.
    CameraSubset,
    /// Full EECS: subset + algorithm downgrades.
    FullEecs,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The dataset to run.
    pub profile: DatasetProfile,
    /// Number of cameras to use (≤ 4; the paper uses all 4).
    pub cameras: usize,
    /// First test frame (inclusive; the paper starts at frame 1000).
    pub start_frame: usize,
    /// Last test frame (exclusive).
    pub end_frame: usize,
    /// Per-frame energy budget `B_j` (Joules) — the knob of Fig. 5a vs 5b.
    pub budget_j_per_frame: f64,
    /// Coordination strategy.
    pub mode: OperatingMode,
    /// Framework configuration.
    pub eecs: EecsConfig,
    /// Visual-word vocabulary size for the feature extractor.
    pub feature_words: usize,
    /// Cap on annotated training frames per camera used for offline
    /// training (controls preparation cost; the paper used the full
    /// 1000-frame segment).
    pub max_training_frames: usize,
    /// Section VII extension: every `boost_every`-th recalibration round
    /// runs with the all-cameras/best-algorithms configuration to catch
    /// objects missed during energy-saving rounds ("EECS would then
    /// periodically enforce higher accuracy requirements in other
    /// rounds"). `0` disables boosting.
    pub boost_every: usize,
    /// Deterministic network-fault schedule. [`FaultPlan::ideal`] (no
    /// faults) reproduces the idealized pre-chaos energy numbers exactly.
    pub fault_plan: FaultPlan,
    /// Deterministic sensor-fault schedule: per-camera frame corruption
    /// (noise, blur, occlusion, exposure drift, stuck rows, dropped
    /// frames). [`SensorFaultPlan::ideal`] leaves every pixel untouched
    /// and reproduces the clean-sensor reports exactly.
    pub sensor_plan: SensorFaultPlan,
    /// Deterministic controller-crash schedule. While a crash window is
    /// open the hub is dark; the surviving cameras elect a replacement
    /// from their own ranks and restore its state from the last
    /// checkpoint. [`ControllerFaultPlan::none`] keeps the mains-powered
    /// controller immortal and the run bit-identical to pre-chaos.
    pub controller_plan: ControllerFaultPlan,
    /// Host-side execution settings (worker pool, feature cache). Affects
    /// wall-clock only; reports are bit-identical across settings.
    pub parallel: Parallelism,
}

impl SimulationConfig {
    /// Structural validation, before any feed is opened or detector run.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`]: no cameras, more cameras than
    /// the 4-camera rigs support, an empty frame range, or a NaN/infinite/
    /// negative per-frame budget.
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        if self.cameras == 0 {
            return Err(ConfigError::NoCameras);
        }
        if self.cameras > 4 {
            return Err(ConfigError::TooManyCameras {
                requested: self.cameras,
                max: 4,
            });
        }
        if self.start_frame >= self.end_frame {
            return Err(ConfigError::EmptyFrameRange {
                start: self.start_frame,
                end: self.end_frame,
            });
        }
        if !self.budget_j_per_frame.is_finite() {
            return Err(ConfigError::NonFiniteBudget(self.budget_j_per_frame));
        }
        if self.budget_j_per_frame < 0.0 {
            return Err(ConfigError::NegativeBudget(self.budget_j_per_frame));
        }
        Ok(())
    }
}

/// One controller failover, as it happened during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    /// Round whose start the controller crashed at.
    pub round: usize,
    /// Camera elected as the replacement controller (highest remaining
    /// battery among survivors; ties break to the lowest index).
    pub elected: usize,
    /// Round of the checkpoint the new controller restored from.
    pub checkpoint_round: usize,
    /// Peers that acknowledged the handover announcement.
    pub announced: usize,
}

/// One recalibration round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// First annotated frame index of the round.
    pub first_frame: usize,
    /// Last annotated frame index of the round.
    pub last_frame: usize,
    /// Active cameras.
    pub active: Vec<usize>,
    /// Algorithm per active camera.
    pub assignment: BTreeMap<usize, AlgorithmId>,
    /// Energy spent in the round (J, all cameras).
    pub energy_j: f64,
    /// Correctly detected humans (fused objects matched to ground truth).
    pub correct: usize,
    /// Ground-truth humans present (visible to some camera).
    pub gt: usize,
}

/// Full-run results — the numbers behind one bar of Figs. 5–6.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Strategy that produced this report.
    pub mode: OperatingMode,
    /// Per-round details.
    pub rounds: Vec<RoundRecord>,
    /// Total energy over the run (J).
    pub total_energy_j: f64,
    /// Total correctly detected humans.
    pub correctly_detected: usize,
    /// Total ground-truth humans.
    pub gt_objects: usize,
    /// Energy per camera (J).
    pub per_camera_energy: Vec<f64>,
    /// Per-camera uplink transport statistics (attempts, drops, retries,
    /// timeouts, duplicates, …).
    pub transport: Vec<TransportStats>,
    /// Controller-side downlink statistics.
    pub downlink: TransportStats,
    /// Controller failovers, in order of occurrence. Empty unless a
    /// [`ControllerFaultPlan`] crash window opened during the run.
    pub failovers: Vec<FailoverEvent>,
    /// Frames the sensor-fault plan visibly corrupted (noise, blur,
    /// occlusion, exposure shift or stuck rows — drops counted
    /// separately).
    pub degraded_frames: usize,
    /// Frames the sensor-fault plan dropped entirely.
    pub dropped_frames: usize,
    /// Detector-health strikes the controller recorded (each one
    /// quarantined or extended the quarantine of a (camera, algorithm)
    /// pair).
    pub quarantine_strikes: usize,
    /// Network partitions that opened during the run (a contiguous span
    /// of partitioned rounds counts once). Zero without a
    /// [`PartitionPlan`].
    pub partitions: usize,
    /// Acting controllers elected by orphaned islands (epoch-fenced;
    /// does not count [`Self::failovers`] from controller crashes).
    pub elections: usize,
    /// Deterministic seat merges performed when islands healed.
    pub reconciliations: usize,
    /// Rounds that planned with more than one controller seat alive.
    pub split_brain_rounds: usize,
    /// Reliable-send attempts whose frame arrived bit-corrupted and was
    /// rejected by the receiver's checksum (uplink + downlink + peer).
    /// Zero without a [`eecs_net::CorruptionPlan`].
    pub corrupted_frames: u64,
    /// Checkpoint generations skipped by failover/election restores
    /// because they failed verification. Zero without a
    /// [`CheckpointFaultPlan`].
    pub checkpoint_rollbacks: u64,
    /// Cameras admitted (or re-admitted) to the fleet mid-run. Zero
    /// without a [`ChurnPlan`].
    pub camera_joins: usize,
    /// Cameras that left the fleet mid-run (absence windows, permanent
    /// departures, or random churn). Zero without a [`ChurnPlan`].
    pub camera_leaves: usize,
}

impl SimulationReport {
    /// Aggregate uplink statistics across all cameras.
    pub fn total_transport(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for s in &self.transport {
            total.merge(s);
        }
        total
    }
}

/// A prepared simulation: trained records, matched feeds, calibrated rig.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimulationConfig,
    bank: DetectorBank,
    feeds: Vec<VideoFeed>,
    controller: Controller,
    /// Matched training-record index per camera.
    matched: Vec<usize>,
    budgets: Vec<EnergyBudget>,
    /// Storage faults injected into the checkpoint store at commit time.
    checkpoint_faults: CheckpointFaultPlan,
    /// Per-camera device profiles. A uniform fleet (the default) is
    /// bit-identical to the legacy homogeneous simulation.
    fleet: Vec<DeviceProfile>,
    /// Deterministic join/leave/rejoin schedule. [`ChurnPlan::ideal`]
    /// keeps every camera present every round.
    churn: ChurnPlan,
}

impl Simulation {
    /// Prepares a simulation: opens the feeds, calibrates the rig, runs
    /// offline training on each camera's training segment, and matches
    /// each camera's segment to the training library (Section IV-B.2).
    ///
    /// # Errors
    ///
    /// Propagates training/feature failures and invalid configurations.
    pub fn prepare(bank: DetectorBank, config: SimulationConfig) -> Result<Simulation> {
        config.eecs.validate()?;
        config.validate()?;
        let feeds: Vec<VideoFeed> = (0..config.cameras)
            .map(|j| VideoFeed::open(config.profile.clone(), j))
            .collect();
        let rig = eecs_scene::rig::camera_rig(&config.profile);
        let calibrations = rig_calibrations(&config.profile, &rig);

        // Training segments (the first `train_frames` of each feed).
        let train_end = config.profile.train_frames.min(config.start_frame);
        let train_frames: Vec<Vec<FrameData>> = feeds
            .iter()
            .map(|f| {
                let mut frames =
                    f.annotated_frames(0, train_end.max(config.profile.gt_interval + 1));
                frames.truncate(config.max_training_frames.max(2));
                frames
            })
            .collect();
        if train_frames.iter().any(|f| f.len() < 2) {
            return Err(EecsError::InvalidArgument(
                "training segment too short for this ground-truth cadence".into(),
            ));
        }

        // The feature extractor's vocabulary comes from training frames of
        // all cameras (the paper: 400 words from the 12 training feeds).
        let vocab_frames: Vec<_> = train_frames
            .iter()
            .flat_map(|f| f.iter().take(3).map(|fd| fd.image.clone()))
            .collect();
        let extractor = FeatureExtractor::build(&vocab_frames, config.feature_words, 17)?;

        let mut records = Vec::new();
        for (j, frames) in train_frames.iter().enumerate() {
            let name = format!("T_{}.{}", config.profile.id.number(), j + 1);
            records.push(train_record(
                &name,
                frames,
                frames,
                &extractor,
                &bank,
                &config.eecs,
            )?);
        }
        let controller = Controller::new(records, calibrations, config.eecs.clone())?;

        // Match each camera's (test-segment) feed to the library.
        let mut matched = Vec::new();
        for (j, feed) in feeds.iter().enumerate() {
            let sample = feed.annotated_frames(
                config.start_frame,
                (config.start_frame + 5 * config.profile.gt_interval + 1).min(config.end_frame),
            );
            let images: Vec<_> = sample.iter().map(|f| f.image.clone()).collect();
            if images.len() >= 2 {
                let item = extractor.extract_video(format!("V_cam{j}"), &images)?;
                let (m, _) = controller.match_feed(&item)?;
                matched.push(m.best_index);
            } else {
                matched.push(j);
            }
        }

        let budgets = vec![
            EnergyBudget::per_frame(config.budget_j_per_frame)
                .map_err(EecsError::from)?;
            config.cameras
        ];
        let fleet = vec![DeviceProfile::uniform(config.eecs.device); config.cameras];
        Ok(Simulation {
            config,
            bank,
            feeds,
            controller,
            matched,
            budgets,
            checkpoint_faults: CheckpointFaultPlan::none(),
            fleet,
            churn: ChurnPlan::ideal(),
        })
    }

    /// The controller (for inspection).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// A copy of this prepared simulation running a different strategy —
    /// offline training and matching are mode-independent, so comparing the
    /// three bars of Figs. 5–6 needs only one `prepare`.
    pub fn with_mode(&self, mode: OperatingMode) -> Simulation {
        let mut sim = self.clone();
        sim.config.mode = mode;
        sim
    }

    /// A copy of this prepared simulation under a different per-frame
    /// budget (Fig. 5a vs 5b explore exactly this knob).
    ///
    /// # Errors
    ///
    /// Returns an error for a negative budget.
    pub fn with_budget(&self, budget_j_per_frame: f64) -> Result<Simulation> {
        let mut sim = self.clone();
        sim.config.budget_j_per_frame = budget_j_per_frame;
        sim.budgets = scaled_budgets(budget_j_per_frame, &sim.fleet, &sim.config.eecs.device)?;
        Ok(sim)
    }

    /// A copy of this prepared simulation under different host-side
    /// execution settings (worker pool size, feature cache). Reports are
    /// unaffected; only wall-clock time changes.
    pub fn with_parallelism(&self, parallel: Parallelism) -> Simulation {
        let mut sim = self.clone();
        sim.config.parallel = parallel;
        sim
    }

    /// A copy of this prepared simulation under different fault schedules
    /// (network, sensor, controller). Training and matching see only
    /// clean data, so one `prepare` serves a whole fault matrix.
    pub fn with_faults(
        &self,
        fault_plan: FaultPlan,
        sensor_plan: SensorFaultPlan,
        controller_plan: ControllerFaultPlan,
    ) -> Simulation {
        let mut sim = self.clone();
        sim.config.fault_plan = fault_plan;
        sim.config.sensor_plan = sensor_plan;
        sim.config.controller_plan = controller_plan;
        sim
    }

    /// A copy of this prepared simulation whose checkpoint store injects
    /// the given storage faults (torn writes, bit rot) at commit time.
    /// Restores then roll back to the newest generation that verifies
    /// instead of deserializing damaged state.
    pub fn with_checkpoint_faults(&self, plan: CheckpointFaultPlan) -> Simulation {
        let mut sim = self.clone();
        sim.checkpoint_faults = plan;
        sim
    }

    /// A copy of this prepared simulation over a heterogeneous fleet:
    /// one [`DeviceProfile`] per camera, each with its own energy
    /// constants, battery capacity, and resolution cap. Per-frame
    /// budgets are rescaled by each profile's
    /// [`DeviceProfile::cost_scale`] against the run's reference device
    /// so selection compares algorithms under each camera's *own* cost
    /// model. A fleet of [`DeviceProfile::uniform`] profiles leaves the
    /// budgets — and the whole run — bit-identical to the homogeneous
    /// default.
    ///
    /// # Errors
    ///
    /// Returns an error when the profile count does not match the camera
    /// count, a profile fails validation, or a profile's sensor cannot
    /// capture the dataset's resolution.
    pub fn with_fleet(&self, fleet: Vec<DeviceProfile>) -> Result<Simulation> {
        if fleet.len() != self.config.cameras {
            return Err(EecsError::InvalidArgument(format!(
                "fleet has {} profiles for {} cameras",
                fleet.len(),
                self.config.cameras
            )));
        }
        for (j, p) in fleet.iter().enumerate() {
            p.validate()
                .map_err(|e| EecsError::InvalidArgument(format!("fleet profile {j}: {e}")))?;
            let (w, h) = (self.config.profile.width, self.config.profile.height);
            if !p.supports_resolution(w, h) {
                return Err(EecsError::InvalidArgument(format!(
                    "fleet profile {j} ({}) caps at {}x{}, dataset needs {w}x{h}",
                    p.name, p.max_width, p.max_height
                )));
            }
        }
        let mut sim = self.clone();
        sim.budgets = scaled_budgets(
            self.config.budget_j_per_frame,
            &fleet,
            &self.config.eecs.device,
        )?;
        sim.fleet = fleet;
        Ok(sim)
    }

    /// A copy of this prepared simulation under a deterministic camera
    /// churn schedule: joins, absence windows, permanent departures and
    /// seeded random absences, all evaluated at round boundaries.
    /// [`ChurnPlan::ideal`] keeps the full fleet present every round and
    /// the run bit-identical to pre-churn builds.
    pub fn with_churn(&self, churn: ChurnPlan) -> Simulation {
        let mut sim = self.clone();
        sim.churn = churn;
        sim
    }

    /// The per-camera device profiles this simulation runs with.
    pub fn fleet(&self) -> &[DeviceProfile] {
        &self.fleet
    }

    /// The churn plan this simulation runs under.
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// A copy of this prepared simulation publishing into `telemetry`.
    /// The simulation loop and the controller's config copy share the
    /// handle, so one stream sees the whole run. Attach a *fresh* handle
    /// per run when comparing executions — clones share recorded state.
    pub fn with_telemetry(&self, telemetry: Telemetry) -> Simulation {
        let mut sim = self.clone();
        sim.config.eecs.telemetry = telemetry.clone();
        sim.controller.set_telemetry(telemetry);
        sim
    }

    /// The trained per-camera records, in matched order (record `matched[j]`
    /// serves camera `j`).
    pub fn record_for_camera(&self, camera: usize) -> &TrainingRecord {
        self.record_for(camera)
    }

    /// The matched training-record index per camera.
    pub fn matched_records(&self) -> &[usize] {
        &self.matched
    }

    /// Runs the configured strategy over the test range.
    ///
    /// # Errors
    ///
    /// Propagates selection failures (e.g. infeasible budgets).
    pub fn run(&self) -> Result<SimulationReport> {
        let cams = self.config.cameras;
        let profile = &self.config.profile;
        let mut frames: Vec<Vec<FrameData>> = self
            .feeds
            .iter()
            .map(|f| f.annotated_frames(self.config.start_frame, self.config.end_frame))
            .collect();
        let n = frames[0].len();
        if n == 0 {
            return Err(EecsError::InvalidArgument(
                "no annotated frames in the requested range".into(),
            ));
        }

        // Sensor faults corrupt the captured frames before anything reads
        // them — every consumer downstream (assessment, operation,
        // feature caches, parallel workers) sees the same degraded pixels,
        // so worker count cannot change what was "seen". With the ideal
        // plan no pixel is touched.
        let sensor_chaos = self.config.sensor_plan.enabled();
        let impairments: Vec<Vec<FrameImpairment>> = frames
            .iter_mut()
            .enumerate()
            .map(|(j, cam_frames)| {
                cam_frames
                    .iter_mut()
                    .map(|fd| {
                        if sensor_chaos {
                            self.config.sensor_plan.corrupt(j, fd.frame, &mut fd.image)
                        } else {
                            FrameImpairment::clean()
                        }
                    })
                    .collect()
            })
            .collect();
        let frames = frames;
        let degraded_frames = impairments
            .iter()
            .flatten()
            .filter(|i| i.degraded() && !i.dropped)
            .count();
        let dropped_frames = impairments.iter().flatten().filter(|i| i.dropped).count();

        // Every publish below goes through this handle; with the default
        // null sink each call is one branch and nothing else, keeping the
        // run bit-identical to a build without the telemetry layer. All
        // emission sites sit on the serial effect-replay path, so the
        // stream is also bit-identical across `Parallelism` settings.
        let tel = &self.config.eecs.telemetry;
        tel.counter_add("sensor.degraded_frames", degraded_frames as u64);
        tel.counter_add("sensor.dropped_frames", dropped_frames as u64);

        let per_round = (self.config.eecs.recalibration_interval / profile.gt_interval).max(1);
        let assess_len =
            (self.config.eecs.assessment_period / profile.gt_interval).clamp(1, per_round);

        let mut nodes: Vec<CameraNode> = (0..cams)
            .map(|j| {
                CameraNode::new(
                    j,
                    self.bank.clone(),
                    BatteryState::new(self.fleet[j].battery_capacity_j).expect("positive capacity"),
                    self.budgets[j],
                )
            })
            .collect();

        // The transport every flow now goes through. With the ideal plan
        // every reliable send costs exactly one idealized attempt, so the
        // energy accounting matches the raw byte math it replaces. Each
        // endpoint radios at its own profile's rates (all identical under
        // a uniform fleet).
        let chaos = self.config.fault_plan.enabled();
        let mut net = Network::with_nodes(
            (0..cams)
                .map(|j| (self.config.eecs.link, self.fleet[j].device))
                .collect(),
        )
        .with_fault_plan(self.config.fault_plan.clone())
        .with_retry_policy(self.config.eecs.retry);
        // Self-healing state. Each controller seat owns a quarantine
        // ledger (tracking (camera, algorithm) pairs whose detector
        // output failed the health checks) and an assessment cache;
        // `seats[0]` is the official seat — the mains hub, or its
        // crash-failover replacement. Partitions can temporarily grow the
        // vector with acting island controllers; `route[j]` names the
        // seat camera `j` currently reports to, and `fenced[j]` the
        // highest handover epoch it has accepted. Everything stays inert
        // — and the run bit-identical to pre-chaos — under ideal plans.
        let controller_chaos = self.config.controller_plan.enabled();
        let partition_chaos = self.config.fault_plan.partition().enabled();
        let election_timeout = self.config.eecs.partition.election_timeout_rounds;
        let max_epoch_skew = self.config.eecs.partition.max_epoch_skew;
        let mut quarantine_strikes = 0usize;
        let mut seats: Vec<SeatState> = vec![SeatState::hub(cams)];
        let mut route: Vec<usize> = vec![0; cams];
        let mut fenced: Vec<u64> = vec![0; cams];
        let mut orphan_age: Vec<usize> = vec![0; cams];
        let mut was_partitioned = false;
        let mut prev_islands = 1usize;
        let mut partitions = 0usize;
        let mut elections = 0usize;
        let mut reconciliations = 0usize;
        let mut split_brain_rounds = 0usize;
        let mut failovers: Vec<FailoverEvent> = Vec::new();
        // Generation-chained, checksummed checkpoint storage. Generation 1
        // is the empty initial state, so a crash before the first
        // round-end snapshot still has something verified to restore.
        let mut checkpoint_store = CheckpointStore::new(self.checkpoint_faults);
        checkpoint_store.commit(&SimulationCheckpoint::initial(cams).to_json());
        let mut checkpoint_rollbacks = 0u64;

        // Fleet churn bookkeeping. Membership is a pure function of
        // `(plan, camera, round)` — no shared RNG state — so an ideal
        // plan consumes zero rolls and every branch below is dead,
        // keeping the run bit-identical to pre-churn builds. `members`
        // mirrors the plan one round at a time so each transition fires
        // its join/leave work exactly once.
        let churn_enabled = self.churn.enabled();
        let mut members = vec![true; cams];
        let mut uploaded = vec![false; cams];
        let mut fleet_view = FleetView::new(cams);
        let mut camera_joins = 0usize;
        let mut camera_leaves = 0usize;

        // One-time feature upload (Section IV-B.1). Cameras absent at
        // round 0 upload later, when they first join.
        let extractor_dim = self.controller.records()[0].video.feature_dim();
        for (j, node) in nodes.iter_mut().enumerate() {
            if churn_enabled && !self.churn.is_member(j, 0) {
                continue;
            }
            let msg = Message::FeatureUpload {
                frames: self.config.eecs.key_frames,
                feature_dim: extractor_dim,
            };
            let (battery, meter) = node.radio_mut();
            let d = net
                .send_reliable(j, msg, battery, meter)
                .map_err(EecsError::from)?;
            tel.observe_delivery(0, j, &d);
            uploaded[j] = true;
        }

        let mut rounds = Vec::new();
        let mut total_correct = 0usize;
        let mut total_gt = 0usize;

        let mut start = 0usize;
        let mut round_index = 0usize;
        let mut reid = self.controller.reid_config(None);
        while start < n {
            let end = (start + per_round).min(n);
            let boost_round = self.config.boost_every > 0
                && self.config.mode != OperatingMode::AllBest
                && (round_index + 1).is_multiple_of(self.config.boost_every);
            let energy_before: f64 = nodes.iter().map(|c| c.meter().total()).sum();
            let mut round_correct = 0usize;
            let mut round_gt = 0usize;
            tel.event(|| TraceEvent::RoundStart {
                round: round_index,
                first_frame: frames[0][start].frame,
            });

            // ---- fleet churn ----
            // Diff the plan's membership against last round's at the
            // round boundary. Departures drain every index-keyed route to
            // the camera (quarantine entries, sticky assignments, the
            // radio endpoint); joins admit the newcomer through an
            // incremental probe instead of a full fleet reassessment.
            if churn_enabled {
                let mut joined_now: Vec<usize> = Vec::new();
                for j in 0..cams {
                    let mut present = self.churn.is_member(j, round_index);
                    // Deferred leave: an acting controller cannot vanish
                    // without a handover, so a seat-holding camera stays
                    // until the seat moves off it (or the plan readmits
                    // it).
                    if !present && members[j] && seats.iter().any(|st| st.location == Some(j)) {
                        present = true;
                    }
                    if present == members[j] {
                        continue;
                    }
                    if present {
                        members[j] = true;
                        camera_joins += 1;
                        tel.counter_add("churn.joins", 1);
                        tel.event(|| TraceEvent::CameraJoin {
                            round: round_index,
                            camera: j,
                        });
                        net.set_attached(j, true).map_err(EecsError::from)?;
                        // A rejoin restores identity, not stale state:
                        // cached assessments past the staleness bound are
                        // evicted so planning never trusts a scene the
                        // camera stopped watching.
                        for st in seats.iter_mut() {
                            if st.cache.evict_stale(
                                j,
                                round_index,
                                self.config.eecs.staleness_limit_rounds,
                            ) {
                                tel.counter_add("churn.cache_evictions", 1);
                            }
                        }
                        fleet_view.spawn(j);
                        joined_now.push(j);
                    } else {
                        members[j] = false;
                        camera_leaves += 1;
                        tel.counter_add("churn.leaves", 1);
                        tel.event(|| TraceEvent::CameraLeave {
                            round: round_index,
                            camera: j,
                        });
                        net.set_attached(j, false).map_err(EecsError::from)?;
                        for st in seats.iter_mut() {
                            let purged = st.quarantine.purge_camera(j);
                            if purged > 0 {
                                tel.counter_add("churn.quarantine_purged", purged as u64);
                            }
                            st.last_plan.0.remove(&j);
                            st.last_plan.1.retain(|&x| x != j);
                        }
                        nodes[j].set_assignment(None);
                        fleet_view.despawn(j);
                    }
                }
                tel.gauge_set("fleet.size", fleet_view.active_count() as f64);
                // A newcomer introduces itself: the one-time feature
                // upload (first join only), then one incremental
                // assessment probe — the controller learns about the
                // newcomer without re-probing the standing fleet.
                for &j in &joined_now {
                    if !uploaded[j] {
                        uploaded[j] = true;
                        let msg = Message::FeatureUpload {
                            frames: self.config.eecs.key_frames,
                            feature_dim: extractor_dim,
                        };
                        let seat = seats[route[j]].location;
                        let (battery, meter) = nodes[j].radio_mut();
                        let d = uplink(&mut net, seat, j, msg, battery, meter)
                            .map_err(EecsError::from)?;
                        tel.observe_delivery(round_index, j, &d);
                    }
                    let seat = seats[route[j]].location;
                    let (battery, meter) = nodes[j].radio_mut();
                    let d = uplink(&mut net, seat, j, Message::EnergyReport, battery, meter)
                        .map_err(EecsError::from)?;
                    let heard = d.delivered && d.delayed_rounds == 0;
                    tel.observe_delivery(round_index, j, &d);
                    tel.event(|| TraceEvent::Probe {
                        round: round_index,
                        camera: j,
                        delivered: heard,
                    });
                    if heard {
                        seats[route[j]].cache.mark_heard(j, round_index);
                    }
                }
            }

            // ---- assessment + selection ----
            let (assignment, active): (BTreeMap<usize, AlgorithmId>, Vec<usize>) = match self
                .config
                .mode
            {
                OperatingMode::AllBest => {
                    let mut a = BTreeMap::new();
                    for j in 0..cams {
                        if let Some(p) = self.record_for(j).best_within_budget(&self.budgets[j]) {
                            a.insert(j, p.algorithm);
                        }
                    }
                    if a.is_empty() {
                        return Err(EecsError::Infeasible(
                            "no budget-feasible algorithm on any camera".into(),
                        ));
                    }
                    if churn_enabled {
                        a.retain(|j, _| members[*j]);
                    }
                    // The baseline has no controller loop: assignments are
                    // applied by fiat, not over the network.
                    for (j, node) in nodes.iter_mut().enumerate() {
                        node.set_assignment(a.get(&j).copied());
                    }
                    let active = a.keys().copied().collect();
                    (a, active)
                }
                OperatingMode::CameraSubset | OperatingMode::FullEecs => {
                    let assess_end = (start + assess_len).min(end);

                    // ---- partition control plane ----
                    // Pure function of the round number: island layout,
                    // heal-time reconciliation, camera → seat routing and
                    // orphan elections. Skipped entirely (and `route`
                    // stays all-zero) without a partition plan.
                    if partition_chaos {
                        let partition = self.config.fault_plan.partition();
                        let island = partition_islands(partition, cams, round_index);
                        let n_islands = {
                            let mut ids = island.clone();
                            ids.sort_unstable();
                            ids.dedup();
                            ids.len()
                        };
                        let now_partitioned = partition.is_partitioned(round_index);
                        if now_partitioned && !was_partitioned {
                            partitions += 1;
                            tel.counter_add("partition.starts", 1);
                            tel.event(|| TraceEvent::PartitionStart {
                                round: round_index,
                                islands: n_islands,
                            });
                        } else if !now_partitioned && was_partitioned {
                            tel.counter_add("partition.heals", 1);
                            tel.event(|| TraceEvent::PartitionHeal {
                                round: round_index,
                                islands: prev_islands,
                            });
                        }
                        was_partitioned = now_partitioned;
                        prev_islands = n_islands;
                        tel.gauge_set("partition.islands", n_islands as f64);

                        // Heal: seats that can see each other again merge
                        // into one via the commutative/associative
                        // reconcile join — the merged state is the same
                        // whichever side heals first.
                        let isl_of = |loc: Option<usize>| island[loc.map_or(cams, |s| s)];
                        if seats.len() > 1 {
                            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                            for (k, st) in seats.iter().enumerate() {
                                groups.entry(isl_of(st.location)).or_default().push(k);
                            }
                            if groups.values().any(|g| g.len() > 1) {
                                let mut old: Vec<Option<SeatState>> =
                                    seats.drain(..).map(Some).collect();
                                let mut groups: Vec<Vec<usize>> = groups.into_values().collect();
                                groups.sort_by_key(|g| g[0]);
                                for g in groups {
                                    if g.len() == 1 {
                                        seats.push(old[g[0]].take().expect("seat taken once"));
                                        continue;
                                    }
                                    let states: Vec<SeatState> = g
                                        .iter()
                                        .map(|&k| old[k].take().expect("seat taken once"))
                                        .collect();
                                    let mut snap = states[0].snapshot(cams, &members);
                                    for st in &states[1..] {
                                        snap = reconcile(&snap, &st.snapshot(cams, &members));
                                    }
                                    reconciliations += 1;
                                    tel.counter_add("reconcile.count", 1);
                                    let (epoch, demoted) = (snap.epoch, g.len() - 1);
                                    tel.event(|| TraceEvent::Reconcile {
                                        round: round_index,
                                        epoch,
                                        demoted,
                                    });
                                    seats.push(SeatState::from_snapshot(&snap, cams));
                                }
                            }
                        }

                        // Route every camera to the seat sharing its
                        // island; cameras on seatless islands fall back to
                        // the official seat (their sends die at the radio,
                        // which is exactly the probe-burn that starts an
                        // election clock).
                        for j in 0..cams {
                            route[j] = seats
                                .iter()
                                .position(|st| isl_of(st.location) == island[j])
                                .unwrap_or(0);
                        }

                        // Orphan elections: an island that has lost sight
                        // of every seat for `election_timeout` rounds
                        // elects its least-drained member as an acting
                        // controller at a fenced, strictly higher epoch.
                        let mut orphans: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
                        for j in 0..cams {
                            if seats.iter().any(|st| isl_of(st.location) == island[j]) {
                                orphan_age[j] = 0;
                            } else {
                                orphan_age[j] += 1;
                                orphans.entry(island[j]).or_default().push(j);
                            }
                        }
                        for members in orphans.into_values() {
                            let ripe = members.iter().map(|&j| orphan_age[j]).max().unwrap_or(0)
                                >= election_timeout;
                            if !ripe {
                                continue;
                            }
                            let mut elected: Option<(usize, f64)> = None;
                            for &j in &members {
                                if net.is_camera_down(j) {
                                    continue;
                                }
                                let used = nodes[j].meter().total();
                                if elected.is_none_or(|(_, best)| used < best) {
                                    elected = Some((j, used));
                                }
                            }
                            let Some((new_seat, _)) = elected else {
                                continue;
                            };
                            let restored = checkpoint_store.restore().map_err(|e| {
                                EecsError::Subsystem(format!("checkpoint restore: {e}"))
                            })?;
                            if restored.rolled_back > 0 {
                                checkpoint_rollbacks += restored.rolled_back;
                                tel.counter_add("checkpoint.rollbacks", restored.rolled_back);
                                tel.event(|| TraceEvent::CheckpointRollback {
                                    round: round_index,
                                    generation: restored.generation,
                                    rolled_back: restored.rolled_back,
                                });
                            }
                            let ckpt = SimulationCheckpoint::from_json(&restored.payload).map_err(
                                |m| EecsError::Subsystem(format!("checkpoint restore: {m}")),
                            )?;
                            let epoch = members
                                .iter()
                                .map(|&j| fenced[j])
                                .max()
                                .unwrap_or(0)
                                .max(ckpt.epoch)
                                + 1;
                            let st = SeatState::from_snapshot(
                                &SeatSnapshot {
                                    epoch,
                                    seat: Some(new_seat),
                                    plan_round: ckpt.round,
                                    assignment: ckpt.assignment.clone(),
                                    active: ckpt.active.clone(),
                                    cache: ckpt.cache.clone(),
                                    quarantine: ckpt.quarantine.clone(),
                                    members: ckpt.members.clone(),
                                },
                                cams,
                            );
                            let mut announced = 0usize;
                            for &peer in &members {
                                if peer == new_seat || net.is_camera_down(peer) {
                                    continue;
                                }
                                let msg = Message::ControllerHandover {
                                    controller: new_seat,
                                    epoch,
                                };
                                let (battery, meter) = nodes[new_seat].radio_mut();
                                let d = net
                                    .send_peer(new_seat, peer, msg, battery, meter)
                                    .map_err(EecsError::from)?;
                                tel.observe_delivery(round_index, new_seat, &d);
                                // Epoch fencing: a peer accepts only a
                                // strictly newer seat, and never one
                                // implausibly far ahead of what it has
                                // witnessed.
                                if d.delivered
                                    && epoch > fenced[peer]
                                    && epoch <= fenced[peer] + max_epoch_skew
                                {
                                    fenced[peer] = epoch;
                                    announced += 1;
                                }
                            }
                            fenced[new_seat] = fenced[new_seat].max(epoch);
                            elections += 1;
                            tel.counter_add("election.count", 1);
                            tel.event(|| TraceEvent::Election {
                                round: round_index,
                                elected: new_seat,
                                epoch,
                                announced,
                            });
                            let k = seats.len();
                            seats.push(st);
                            for &j in &members {
                                route[j] = k;
                                orphan_age[j] = 0;
                            }
                        }
                    }

                    // Controller crash: the hub (or the camera currently
                    // holding the seat) goes dark at the start of this
                    // round. Every survivor burns one failed probe
                    // discovering the silence, then the highest-battery
                    // survivor takes the seat and restores the last
                    // checkpoint — within this same round it is planning
                    // again.
                    if controller_chaos && self.config.controller_plan.crash_starts(round_index) {
                        net.set_controller_down(true);
                        let failed_seat = seats[0].location;
                        seats[0].location = None;
                        for (j, node) in nodes.iter_mut().enumerate() {
                            if net.is_camera_down(j) || failed_seat == Some(j) {
                                continue;
                            }
                            let (battery, meter) = node.radio_mut();
                            let d = net
                                .send_reliable(j, Message::EnergyReport, battery, meter)
                                .map_err(EecsError::from)?;
                            tel.observe_delivery(round_index, j, &d);
                        }
                        let mut elected: Option<(usize, f64)> = None;
                        for (j, node) in nodes.iter().enumerate() {
                            if net.is_camera_down(j) || failed_seat == Some(j) {
                                continue;
                            }
                            let used = node.meter().total();
                            if elected.is_none_or(|(_, best)| used < best) {
                                elected = Some((j, used));
                            }
                        }
                        // With no survivor the hub stays dark: every send
                        // from here on times out and the run degrades
                        // gracefully instead of aborting.
                        if let Some((new_seat, _)) = elected {
                            net.set_controller_down(false);
                            let restored = checkpoint_store.restore().map_err(|e| {
                                EecsError::Subsystem(format!("checkpoint restore: {e}"))
                            })?;
                            if restored.rolled_back > 0 {
                                checkpoint_rollbacks += restored.rolled_back;
                                tel.counter_add("checkpoint.rollbacks", restored.rolled_back);
                                tel.event(|| TraceEvent::CheckpointRollback {
                                    round: round_index,
                                    generation: restored.generation,
                                    rolled_back: restored.rolled_back,
                                });
                            }
                            let ckpt = SimulationCheckpoint::from_json(&restored.payload).map_err(
                                |m| EecsError::Subsystem(format!("checkpoint restore: {m}")),
                            )?;
                            // The replacement restores the checkpoint and
                            // announces the next fencing epoch; peers
                            // accept it only if it is strictly newer than
                            // anything they have already acknowledged.
                            let epoch = ckpt.epoch + 1;
                            seats[0] = SeatState::from_snapshot(
                                &SeatSnapshot {
                                    epoch,
                                    seat: Some(new_seat),
                                    plan_round: ckpt.round,
                                    assignment: ckpt.assignment.clone(),
                                    active: ckpt.active.clone(),
                                    cache: ckpt.cache.clone(),
                                    quarantine: ckpt.quarantine.clone(),
                                    members: ckpt.members.clone(),
                                },
                                cams,
                            );
                            let mut announced = 0usize;
                            for (peer, fence) in fenced.iter_mut().enumerate() {
                                if peer == new_seat || net.is_camera_down(peer) {
                                    continue;
                                }
                                let msg = Message::ControllerHandover {
                                    controller: new_seat,
                                    epoch,
                                };
                                let (battery, meter) = nodes[new_seat].radio_mut();
                                let d = net
                                    .send_peer(new_seat, peer, msg, battery, meter)
                                    .map_err(EecsError::from)?;
                                tel.observe_delivery(round_index, new_seat, &d);
                                if d.delivered && epoch > *fence && epoch <= *fence + max_epoch_skew
                                {
                                    *fence = epoch;
                                    announced += 1;
                                }
                            }
                            fenced[new_seat] = fenced[new_seat].max(epoch);
                            let checkpoint_round = ckpt.round;
                            failovers.push(FailoverEvent {
                                round: round_index,
                                elected: new_seat,
                                checkpoint_round,
                                announced,
                            });
                            tel.counter_add("failover.count", 1);
                            tel.event(|| TraceEvent::Failover {
                                round: round_index,
                                elected: new_seat,
                                checkpoint_round,
                                announced,
                            });
                        }
                    }

                    // Liveness probe: lets the controller tell a silent-
                    // but-alive camera from a dead one. On an ideal
                    // network silence is impossible, so the probe (and
                    // its energy) is elided and the idealized accounting
                    // is unchanged.
                    if chaos
                        || net.controller_down()
                        || seats.len() > 1
                        || seats[0].location.is_some()
                    {
                        for (j, node) in nodes.iter_mut().enumerate() {
                            // A departed camera is not silent — it is
                            // gone: no probe, no phantom Probe event.
                            if churn_enabled && !members[j] {
                                continue;
                            }
                            let seat = seats[route[j]].location;
                            let (battery, meter) = node.radio_mut();
                            let d =
                                uplink(&mut net, seat, j, Message::EnergyReport, battery, meter)
                                    .map_err(EecsError::from)?;
                            let heard = d.delivered && d.delayed_rounds == 0;
                            tel.observe_delivery(round_index, j, &d);
                            tel.event(|| TraceEvent::Probe {
                                round: round_index,
                                camera: j,
                                delivered: heard,
                            });
                            if heard {
                                seats[route[j]].cache.mark_heard(j, round_index);
                            }
                        }
                    }

                    // A quarantine re-probe that comes due in a round its
                    // camera is unreachable would burn silently: the
                    // backoff window closes, no detector gets to prove
                    // itself, and the next health failure escalates as if
                    // a real probe had failed. Defer those re-probes to
                    // the next round instead of letting them lapse.
                    if chaos {
                        let plan = &self.config.fault_plan;
                        for j in 0..cams {
                            if churn_enabled && !members[j] {
                                continue;
                            }
                            let target = match seats[route[j]].location {
                                Some(s) if s == j => continue,
                                Some(s) => Endpoint::Camera(s),
                                None => Endpoint::Hub,
                            };
                            let unreachable = net.is_camera_down(j)
                                || plan.is_outage(j, round_index)
                                || !plan.partition().can_reach(
                                    Endpoint::Camera(j),
                                    target,
                                    round_index,
                                );
                            if unreachable {
                                let deferred =
                                    seats[route[j]].quarantine.defer_probes(j, round_index);
                                if deferred > 0 {
                                    tel.counter_add("quarantine.deferred", deferred as u64);
                                }
                            }
                        }
                    }

                    // Fresh assessment: every feasible algorithm on every
                    // reachable camera, each report uploaded through the
                    // transport. Only what actually arrives this round
                    // reaches the controller; a lost upload leaves an
                    // empty placeholder (the header timestamps tell the
                    // controller a frame happened, not what it held).
                    //
                    // The detection work is pure (camera state is only
                    // touched by ingestion and the sends), and both the
                    // crash schedule and the feasible sets are constant
                    // within a round, so the per-(camera, frame) tasks are
                    // enumerated up front, fanned over the worker pool,
                    // and consumed serially below in exactly the order the
                    // serial loop ran them — keeping battery drains, op
                    // counters and transport interactions bit-identical.
                    let assess_count = assess_end - start;
                    let feasible_by_cam: Vec<Vec<AlgorithmId>> = (0..cams)
                        .map(|j| {
                            if net.is_camera_down(j) {
                                return Vec::new();
                            }
                            self.record_for(j)
                                .feasible_ranked(&self.budgets[j])
                                .iter()
                                .map(|p| p.algorithm)
                                // Quarantined detectors sit out their
                                // backoff; `allows` turns true again at
                                // the re-probe round.
                                .filter(|&alg| {
                                    seats[route[j]].quarantine.allows(j, alg, round_index)
                                })
                                .collect()
                        })
                        .collect();
                    // Frame offsets each camera's sensor actually produced
                    // — dropped frames run no detector at all.
                    let kept: Vec<Vec<usize>> = (0..cams)
                        .map(|j| {
                            (0..assess_count)
                                .filter(|&fi| !impairments[j][start + fi].dropped)
                                .collect()
                        })
                        .collect();
                    let mut task_of: Vec<(usize, usize)> = Vec::new();
                    let mut cam_task_start = vec![usize::MAX; cams];
                    for (j, feasible) in feasible_by_cam.iter().enumerate() {
                        if feasible.is_empty() {
                            continue;
                        }
                        cam_task_start[j] = task_of.len();
                        task_of.extend(kept[j].iter().map(|&fi| (j, fi)));
                    }
                    let bank = &self.bank;
                    let par = self.config.parallel;
                    // Each task runs all of one camera's feasible
                    // algorithms on one frame, sharing that frame's
                    // feature cache across them when enabled.
                    let outputs = crate::par::par_map_indexed(task_of.len(), par.workers, |t| {
                        let (j, fi) = task_of[t];
                        bank.run_algorithms(
                            &feasible_by_cam[j],
                            &frames[j][start + fi].image,
                            par.feature_cache,
                        )
                    });

                    let mut fresh: Vec<CameraAssessment> = vec![BTreeMap::new(); cams];
                    let mut attempted = vec![false; cams];
                    let mut delivered_any = vec![false; cams];
                    for j in 0..cams {
                        if feasible_by_cam[j].is_empty() {
                            continue;
                        }
                        // Dropped frames: the sensor produced nothing, so
                        // the camera reports the gap with a tiny
                        // DegradedFrame message instead of detections.
                        for fi in 0..assess_count {
                            if !impairments[j][start + fi].dropped {
                                continue;
                            }
                            attempted[j] = true;
                            let seat = seats[route[j]].location;
                            let (battery, meter) = nodes[j].radio_mut();
                            let d =
                                uplink(&mut net, seat, j, Message::DegradedFrame, battery, meter)
                                    .map_err(EecsError::from)?;
                            tel.observe_delivery(round_index, j, &d);
                            tel.counter_add("sensor.gap_reports", 1);
                            if d.delivered && d.delayed_rounds == 0 {
                                seats[route[j]].cache.mark_heard(j, round_index);
                            }
                        }
                        let mut pos_of = vec![usize::MAX; assess_count];
                        for (pos, &fi) in kept[j].iter().enumerate() {
                            pos_of[fi] = pos;
                        }
                        let record = self.record_for(j);
                        for (ai, &alg) in feasible_by_cam[j].iter().enumerate() {
                            let profile_a = record.profile(alg).expect("feasible ⇒ profiled");
                            let mut series = Vec::new();
                            for (fi, fd) in frames[j][start..assess_end].iter().enumerate() {
                                if impairments[j][start + fi].dropped {
                                    series.push(CameraReport {
                                        objects: Vec::new(),
                                    });
                                    continue;
                                }
                                let output = outputs[cam_task_start[j] + pos_of[fi]][ai].clone();
                                let ops = output.ops;
                                let health =
                                    DetectorHealth::check(alg, &output, &self.config.eecs.health);
                                let healthy = health.is_healthy();
                                let mut report = nodes[j].ingest_detection(
                                    &fd.image,
                                    output,
                                    profile_a,
                                    &self.fleet[j].device,
                                )?;
                                if !healthy {
                                    // A detector spewing NaNs or absurd
                                    // counts must not poison fusion: the
                                    // energy is already spent, the output
                                    // is discarded.
                                    report = CameraReport {
                                        objects: Vec::new(),
                                    };
                                }
                                publish_detection(
                                    tel,
                                    round_index,
                                    j,
                                    fd.frame,
                                    &health,
                                    ops,
                                    report.len(),
                                );
                                let msg = Message::DetectionMetadata {
                                    objects: report.len(),
                                };
                                attempted[j] = true;
                                let seat = seats[route[j]].location;
                                let (battery, meter) = nodes[j].radio_mut();
                                let d = uplink(&mut net, seat, j, msg, battery, meter)
                                    .map_err(EecsError::from)?;
                                tel.observe_delivery(round_index, j, &d);
                                if d.delivered && d.delayed_rounds == 0 {
                                    delivered_any[j] = true;
                                    let st = &mut seats[route[j]];
                                    st.cache.mark_heard(j, round_index);
                                    if healthy {
                                        st.quarantine.report_healthy(j, alg);
                                    } else {
                                        st.quarantine.report_unhealthy(
                                            j,
                                            alg,
                                            round_index,
                                            &self.config.eecs.quarantine,
                                        );
                                        quarantine_strikes += 1;
                                        tel.counter_add("quarantine.strikes", 1);
                                        let strikes = st.quarantine.strikes(j, alg);
                                        tel.event(|| TraceEvent::QuarantineStrike {
                                            round: round_index,
                                            camera: j,
                                            algorithm: alg,
                                            strikes,
                                        });
                                    }
                                    series.push(report);
                                } else {
                                    series.push(CameraReport {
                                        objects: Vec::new(),
                                    });
                                }
                            }
                            fresh[j].insert(alg, series);
                        }
                    }

                    // Graceful degradation: fresh data where it arrived,
                    // cached data (within the staleness cap) for cameras
                    // that are alive but unheard, exclusion for the rest.
                    let mut data = AssessmentData {
                        reports: vec![BTreeMap::new(); cams],
                    };
                    let mut live = vec![false; cams];
                    for j in 0..cams {
                        // A departed camera contributes nothing to
                        // planning — not even the "no feasible algorithm"
                        // liveness fallback below.
                        if churn_enabled && !members[j] {
                            continue;
                        }
                        if delivered_any[j] {
                            // `fresh[j]` is recorded into the assessment
                            // cache by move after the scoring loop below —
                            // one clone here instead of two.
                            data.reports[j] = fresh[j].clone();
                            live[j] = true;
                        } else if net.is_camera_down(j) || attempted[j] {
                            // Silent this round: crashed, or every upload
                            // was lost. Reuse the last-known assessment if
                            // the camera is still heard and the data is
                            // not too stale; otherwise exclude it.
                            let cache = &seats[route[j]].cache;
                            if cache.heard_in(j, round_index) {
                                if let Some(cached) = cache.usable(
                                    j,
                                    round_index,
                                    self.config.eecs.staleness_limit_rounds,
                                ) {
                                    data.reports[j] = cached.clone();
                                    live[j] = true;
                                }
                            }
                        } else {
                            // Nothing feasible to send — a budget
                            // condition, not a network one: keep the
                            // camera's real budget in play so selection
                            // treats it exactly as the idealized model
                            // did.
                            live[j] = true;
                        }
                    }

                    let mut split_plan: Option<(BTreeMap<usize, AlgorithmId>, Vec<usize>)> = None;
                    let plan = if seats.len() > 1 {
                        // Split brain: every island seat plans locally
                        // against the cameras it can see, under those
                        // cameras' real budgets; the per-island plans are
                        // disjoint (routing partitions the cameras), so
                        // their union is the round's assignment. Boost
                        // rounds are skipped mid-partition — no seat can
                        // see the whole network anyway.
                        split_brain_rounds += 1;
                        tel.counter_add("partition.split_brain_rounds", 1);
                        let mut merged = BTreeMap::new();
                        let mut merged_active: Vec<usize> = Vec::new();
                        for (k, seat) in seats.iter_mut().enumerate() {
                            let members: Vec<usize> =
                                (0..cams).filter(|&j| route[j] == k).collect();
                            let mut live_k = vec![false; cams];
                            let mut data_k = AssessmentData {
                                reports: vec![BTreeMap::new(); cams],
                            };
                            for &j in &members {
                                live_k[j] = live[j];
                                data_k.reports[j] = data.reports[j].clone();
                            }
                            let plan_k = if live_k.iter().any(|&l| l) {
                                let metric = self.controller.fit_color_metric(&data_k);
                                let reid_k = self.controller.reid_config(metric);
                                let sel = self.controller.select_live(
                                    &data_k,
                                    &self.matched,
                                    &self.budgets,
                                    &reid_k,
                                    self.config.mode == OperatingMode::FullEecs,
                                    &live_k,
                                );
                                if k == 0 {
                                    reid = reid_k;
                                }
                                match sel {
                                    Ok(outcome) => Some((outcome.assignment, outcome.active)),
                                    // An island too small to meet the
                                    // accuracy target keeps its standing
                                    // plan instead of killing the run.
                                    Err(EecsError::Infeasible(_)) => None,
                                    Err(e) => return Err(e),
                                }
                            } else {
                                None
                            };
                            let (a_k, act_k) = match plan_k {
                                Some(p) => {
                                    seat.plan_round = round_index;
                                    p
                                }
                                None => {
                                    let (la, lact) = &seat.last_plan;
                                    (
                                        la.iter()
                                            .filter(|(j, _)| members.contains(j))
                                            .map(|(&j, &alg)| (j, alg))
                                            .collect(),
                                        lact.iter()
                                            .copied()
                                            .filter(|j| members.contains(j))
                                            .collect(),
                                    )
                                }
                            };
                            seat.last_plan = (a_k.clone(), act_k.clone());
                            merged.extend(a_k);
                            merged_active.extend(act_k);
                        }
                        merged_active.sort_unstable();
                        merged_active.dedup();
                        split_plan = Some((merged, merged_active));
                        None
                    } else if live.iter().any(|&l| l) {
                        let metric = self.controller.fit_color_metric(&data);
                        reid = self.controller.reid_config(metric);
                        let outcome = self.controller.select_live(
                            &data,
                            &self.matched,
                            &self.budgets,
                            &reid,
                            self.config.mode == OperatingMode::FullEecs,
                            &live,
                        )?;
                        Some(outcome)
                    } else {
                        // Every camera silent: nothing to plan with. Keep
                        // the previous round's assignment (the cameras
                        // keep whatever they last heard anyway).
                        None
                    };

                    // Score the assessment frames with the baseline
                    // (all-best) reports that actually arrived.
                    let mut best_assign = BTreeMap::new();
                    for j in 0..cams {
                        if let Some(p) = self.record_for(j).best_within_budget(&self.budgets[j]) {
                            best_assign.insert(j, p.algorithm);
                        }
                    }
                    for (fi, f) in (start..assess_end).enumerate() {
                        let reports: Vec<CameraReport> = best_assign
                            .iter()
                            .filter_map(|(&j, alg)| {
                                fresh[j].get(alg).and_then(|v| v.get(fi)).cloned()
                            })
                            .collect();
                        let (c, g) = self.score_frame(&reports, &frames, f, &reid);
                        round_correct += c;
                        round_gt += g;
                    }

                    // Record the delivered assessments by move (deferred
                    // from the delivery loop so scoring could still read
                    // them). Safe to defer: `record` (delivered cameras)
                    // and `usable` (silent cameras) touch disjoint camera
                    // sets within a round, and `mark_heard` already fired
                    // during the uploads.
                    for (j, fresh_j) in fresh.into_iter().enumerate() {
                        if delivered_any[j] {
                            let st = &mut seats[route[j]];
                            st.cache.record(j, round_index, fresh_j);
                            st.slot_epoch[j] = st.epoch;
                        }
                    }

                    let (mut assignment, mut active) = match (plan, split_plan) {
                        (_, Some(p)) => p,
                        (Some(outcome), None) if boost_round => {
                            // Section VII: override the energy-saving
                            // choice with the full-accuracy configuration
                            // this round.
                            let _ = outcome;
                            seats[0].plan_round = round_index;
                            let active = best_assign.keys().copied().collect();
                            (best_assign, active)
                        }
                        (Some(outcome), None) => {
                            seats[0].plan_round = round_index;
                            (outcome.assignment, outcome.active)
                        }
                        (None, None) => seats[0].last_plan.clone(),
                    };
                    // Whatever produced the plan — a fresh selection, a
                    // split-brain union, the boost override, or the
                    // sticky fallback — it must never name a departed
                    // camera. Sticky plans and index-keyed caches outlive
                    // membership, so the resolved plan is filtered
                    // against the member set before anything acts on it.
                    if churn_enabled {
                        assignment.retain(|j, _| members[*j]);
                        active.retain(|j| members[*j]);
                    }

                    // Downlink: the new plan must actually reach each
                    // camera. A camera that misses its assignment keeps
                    // the previous one (sticky); one that misses a
                    // deactivation keeps burning energy — unreliability
                    // has a price on both ends.
                    for j in 0..cams {
                        if churn_enabled && !members[j] {
                            continue;
                        }
                        let intended = assignment.get(&j).copied();
                        let msg = if intended.is_some() {
                            Message::AlgorithmAssignment
                        } else {
                            Message::ActivationCommand
                        };
                        // A camera-held seat pays for its own downlinks:
                        // peer radio sends charged to the seat's battery,
                        // a free loopback to itself. The mains hub sends
                        // for free, as before.
                        let d = match seats[route[j]].location {
                            Some(s) if s == j => Delivery::loopback(),
                            Some(s) => {
                                let (battery, meter) = nodes[s].radio_mut();
                                net.send_peer(s, j, msg, battery, meter)
                                    .map_err(EecsError::from)?
                            }
                            None => net.send_downlink(j, msg).map_err(EecsError::from)?,
                        };
                        tel.event(|| TraceEvent::Assignment {
                            round: round_index,
                            camera: j,
                            algorithm: intended,
                            delivered: d.delivered,
                        });
                        if d.delivered {
                            nodes[j].set_assignment(intended);
                        }
                    }
                    (assignment, active)
                }
            };

            // ---- operation ----
            let op_start = match self.config.mode {
                OperatingMode::AllBest => start,
                _ => (start + assess_len).min(end),
            };
            // Assignments and the crash schedule are fixed for the whole
            // operation span (the controller only re-plans at round
            // boundaries), so the per-(frame, camera) detection tasks are
            // known up front: precompute them on the pool, then replay
            // the identical loop serially for the stateful effects. One
            // algorithm runs per camera here, so there is nothing for a
            // feature cache to share.
            let op_tasks: Vec<(usize, usize, AlgorithmId)> = (op_start..end)
                .flat_map(|f| {
                    let net = &net;
                    let nodes = &nodes;
                    let impairments = &impairments;
                    (0..cams).filter_map(move |j| {
                        if net.is_camera_down(j) || impairments[j][f].dropped {
                            return None;
                        }
                        nodes[j].assigned().map(|alg| (f, j, alg))
                    })
                })
                .collect();
            let bank = &self.bank;
            let op_outputs =
                crate::par::par_map_indexed(op_tasks.len(), self.config.parallel.workers, |t| {
                    let (f, j, alg) = op_tasks[t];
                    bank.detector(alg).detect(&frames[j][f].image)
                });
            let mut op_cursor = 0usize;
            for f in op_start..end {
                let mut reports = Vec::new();
                for j in 0..cams {
                    if net.is_camera_down(j) {
                        continue;
                    }
                    // The camera runs what it last heard from the
                    // controller — which under chaos may lag the plan the
                    // controller just computed.
                    let Some(alg) = nodes[j].assigned() else {
                        continue;
                    };
                    if impairments[j][f].dropped {
                        // Sensor gap: no detection ran; report the gap.
                        let seat = seats[route[j]].location;
                        let (battery, meter) = nodes[j].radio_mut();
                        let d = uplink(&mut net, seat, j, Message::DegradedFrame, battery, meter)
                            .map_err(EecsError::from)?;
                        tel.observe_delivery(round_index, j, &d);
                        tel.counter_add("sensor.gap_reports", 1);
                        continue;
                    }
                    let profile_a = self
                        .record_for(j)
                        .profile(alg)
                        .expect("assigned ⇒ profiled");
                    debug_assert_eq!(op_tasks[op_cursor], (f, j, alg));
                    let output = op_outputs[op_cursor].clone();
                    op_cursor += 1;
                    let ops = output.ops;
                    let health = DetectorHealth::check(alg, &output, &self.config.eecs.health);
                    let healthy = health.is_healthy();
                    let mut report = nodes[j].ingest_detection(
                        &frames[j][f].image,
                        output,
                        profile_a,
                        &self.fleet[j].device,
                    )?;
                    if !healthy {
                        report = CameraReport {
                            objects: Vec::new(),
                        };
                    }
                    publish_detection(
                        tel,
                        round_index,
                        j,
                        frames[j][f].frame,
                        &health,
                        ops,
                        report.len(),
                    );
                    // Metadata + cropped object images (Section VI).
                    let crop_bytes: u64 = report
                        .objects
                        .iter()
                        .map(|o| (o.bbox.area().max(0.0) * JPEG_BYTES_PER_PIXEL) as u64 + 100)
                        .sum();
                    let msg = Message::ObjectDelivery {
                        objects: report.len(),
                        crop_bytes,
                    };
                    let seat = seats[route[j]].location;
                    let (battery, meter) = nodes[j].radio_mut();
                    let d =
                        uplink(&mut net, seat, j, msg, battery, meter).map_err(EecsError::from)?;
                    tel.observe_delivery(round_index, j, &d);
                    if d.delivered && d.delayed_rounds == 0 {
                        if !healthy {
                            let st = &mut seats[route[j]];
                            st.quarantine.report_unhealthy(
                                j,
                                alg,
                                round_index,
                                &self.config.eecs.quarantine,
                            );
                            quarantine_strikes += 1;
                            tel.counter_add("quarantine.strikes", 1);
                            let strikes = st.quarantine.strikes(j, alg);
                            tel.event(|| TraceEvent::QuarantineStrike {
                                round: round_index,
                                camera: j,
                                algorithm: alg,
                                strikes,
                            });
                        }
                        reports.push(report);
                    }
                }
                let (c, g) = self.score_frame(&reports, &frames, f, &reid);
                round_correct += c;
                round_gt += g;
            }

            let energy_after: f64 = nodes.iter().map(|c| c.meter().total()).sum();
            let round_energy = energy_after - energy_before;
            // Sticky fallback for silent rounds. Split-brain rounds set
            // each seat's own plan inside the planning loop instead — the
            // union below is no single seat's view.
            if seats.len() == 1 {
                seats[0].last_plan = (assignment.clone(), active.clone());
            }
            rounds.push(RoundRecord {
                first_frame: frames[0][start].frame,
                last_frame: frames[0][end - 1].frame,
                active,
                assignment,
                energy_j: round_energy,
                correct: round_correct,
                gt: round_gt,
            });
            total_correct += round_correct;
            total_gt += round_gt;
            tel.counter_add("rounds.completed", 1);
            tel.histogram_record("round.energy_j", ROUND_ENERGY_BOUNDS, round_energy);
            tel.event(|| TraceEvent::RoundEnd {
                round: round_index,
                energy_j: round_energy,
                correct: round_correct,
                gt: round_gt,
            });

            // Checkpoint the controller's volatile state so the next
            // failover loses at most `checkpoint_every` rounds of it.
            // Serialize/parse through real JSON every time: the restored
            // state is exactly what a crash would recover.
            if (controller_chaos || partition_chaos)
                && !net.controller_down()
                && round_index.is_multiple_of(self.config.eecs.checkpoint_every)
            {
                let st = &seats[0];
                let mut slots = SimulationCheckpoint::capture_cache(&st.cache, cams);
                for (slot, &e) in slots.iter_mut().zip(&st.slot_epoch) {
                    slot.epoch = e;
                }
                checkpoint_store.commit(
                    &SimulationCheckpoint {
                        round: round_index,
                        epoch: st.epoch,
                        assignment: st.last_plan.0.clone(),
                        active: st.last_plan.1.clone(),
                        battery_used_j: nodes.iter().map(|c| c.meter().total()).collect(),
                        cache: slots,
                        quarantine: st.quarantine.export(),
                        members: (0..cams).filter(|&j| members[j]).collect(),
                        profiles: self.fleet.iter().map(|p| p.name.clone()).collect(),
                    }
                    .to_json(),
                );
                tel.counter_add("checkpoint.taken", 1);
                tel.event(|| TraceEvent::Checkpoint { round: round_index });
            }

            start = end;
            round_index += 1;
            net.advance_round();
            let _ = net.drain_inbox();
        }

        // Final scrape: per-camera energy meters and the transport
        // statistics, as gauges/counters. Guarded so the null sink never
        // pays for the metric-name formatting.
        if tel.enabled() {
            for (j, node) in nodes.iter().enumerate() {
                tel.observe_meter(&format!("camera.{j}"), node.meter());
            }
            for j in 0..cams {
                if let Ok(stats) = net.stats(j) {
                    tel.observe_transport(&format!("transport.cam{j}"), &stats);
                }
            }
            tel.observe_transport("transport.downlink", &net.downlink_stats());
            tel.gauge_set(
                "run.total_energy_j",
                nodes.iter().map(|c| c.meter().total()).sum(),
            );
            tel.counter_add("run.correct", total_correct as u64);
            tel.counter_add("run.gt_objects", total_gt as u64);
        }

        let transport: Vec<TransportStats> = (0..cams)
            .map(|j| net.stats(j).expect("node exists"))
            .collect();
        let downlink = net.downlink_stats();
        let corrupted_frames =
            transport.iter().map(|s| s.corrupted).sum::<u64>() + downlink.corrupted;
        Ok(SimulationReport {
            mode: self.config.mode,
            total_energy_j: nodes.iter().map(|c| c.meter().total()).sum(),
            correctly_detected: total_correct,
            gt_objects: total_gt,
            per_camera_energy: nodes.iter().map(|c| c.meter().total()).collect(),
            transport,
            downlink,
            failovers,
            degraded_frames,
            dropped_frames,
            quarantine_strikes,
            partitions,
            elections,
            reconciliations,
            split_brain_rounds,
            corrupted_frames,
            checkpoint_rollbacks,
            camera_joins,
            camera_leaves,
            rounds,
        })
    }

    fn record_for(&self, camera: usize) -> &TrainingRecord {
        &self.controller.records()[self.matched[camera]]
    }

    /// Fuses one frame's reports and scores against ground truth. Returns
    /// `(correct, gt_count)`.
    fn score_frame(
        &self,
        reports: &[CameraReport],
        frames: &[Vec<FrameData>],
        f: usize,
        reid: &ReidConfig,
    ) -> (usize, usize) {
        let fused = self.controller.fuse(reports, reid);
        // Ground truth: every person visible (≥ visibility floor) in at
        // least one camera, counted once.
        let mut gt_positions: BTreeMap<usize, eecs_geometry::point::Point2> = BTreeMap::new();
        for cam_frames in frames {
            for g in &cam_frames[f].gt {
                if g.visibility >= self.config.eecs.eval.min_visibility {
                    gt_positions.entry(g.human_id).or_insert(g.ground);
                }
            }
        }
        let positions: Vec<_> = gt_positions.values().copied().collect();
        let correct = crate::accuracy::count_correct(&fused, &positions, GT_MATCH_GATE_M);
        (correct, positions.len())
    }
}

/// Publishes one detector execution: the structured trace event, the
/// per-algorithm run/op counters, per-issue health counters, and the
/// object-count histogram. One branch and out on the null sink — nothing
/// below allocates unless telemetry is recording.
fn publish_detection(
    tel: &Telemetry,
    round: usize,
    camera: usize,
    frame: usize,
    health: &DetectorHealth,
    ops: u64,
    objects: usize,
) {
    if !tel.enabled() {
        return;
    }
    let alg = health.algorithm;
    let healthy = health.is_healthy();
    tel.event(|| TraceEvent::Detection {
        round,
        camera,
        frame,
        algorithm: alg,
        objects,
        healthy,
    });
    tel.counter_add(&format!("detect.runs.{}", alg.name()), 1);
    tel.counter_add(&format!("detect.ops.{}", alg.name()), ops);
    tel.histogram_record("detect.objects", DETECT_OBJECTS_BOUNDS, objects as f64);
    if !healthy {
        tel.counter_add(&format!("health.unhealthy.{}", alg.name()), 1);
        for issue in &health.issues {
            tel.counter_add(&format!("health.issue.{}", issue.kind()), 1);
        }
    }
}

/// One live controller seat: the mains hub, a crash-failover replacement,
/// or an island's acting controller during a partition. Without partition
/// or controller chaos exactly one of these exists for the whole run and
/// it behaves exactly like the pre-partition flat state.
struct SeatState {
    /// Where the seat runs: `None` = the mains hub, `Some(j)` = camera
    /// `j` acting as controller.
    location: Option<usize>,
    /// Fencing epoch. The hub starts at 0; every election announces a
    /// strictly higher epoch, so stale seats are recognizable.
    epoch: u64,
    cache: AssessmentCache,
    /// Epoch under which each camera's cache slot was last written —
    /// reconciliation prefers the (epoch, round)-freshest slot, so an
    /// acting seat's restored-from-checkpoint copies never beat the
    /// entries a fresher seat recorded itself.
    slot_epoch: Vec<u64>,
    quarantine: QuarantineLedger,
    /// Sticky fallback for rounds where every visible camera is silent.
    last_plan: (BTreeMap<usize, AlgorithmId>, Vec<usize>),
    /// Round the seat last computed a fresh plan in.
    plan_round: usize,
}

impl SeatState {
    /// The mains-powered hub seat every run starts with.
    fn hub(cams: usize) -> SeatState {
        SeatState {
            location: None,
            epoch: 0,
            cache: AssessmentCache::new(cams),
            slot_epoch: vec![0; cams],
            quarantine: QuarantineLedger::new(),
            last_plan: Default::default(),
            plan_round: 0,
        }
    }

    /// Everything reconciliation needs to merge this seat with another.
    /// `members` is the fleet membership the seat currently sees — the
    /// snapshot carries the member *indices* so heals union them.
    fn snapshot(&self, cams: usize, members: &[bool]) -> SeatSnapshot {
        let mut cache = SimulationCheckpoint::capture_cache(&self.cache, cams);
        for (slot, &e) in cache.iter_mut().zip(&self.slot_epoch) {
            slot.epoch = e;
        }
        SeatSnapshot {
            epoch: self.epoch,
            seat: self.location,
            plan_round: self.plan_round,
            assignment: self.last_plan.0.clone(),
            active: self.last_plan.1.clone(),
            cache,
            quarantine: self.quarantine.export(),
            members: (0..cams)
                .filter(|&j| members.get(j) == Some(&true))
                .collect(),
        }
    }

    /// Rebuilds a live seat from a snapshot (a reconciliation result, or
    /// a checkpoint recast as one).
    fn from_snapshot(s: &SeatSnapshot, cams: usize) -> SeatState {
        let mut cache = AssessmentCache::new(cams);
        for (j, slot) in s.cache.iter().enumerate().take(cams) {
            cache.restore_entry(j, slot.heard, slot.entry.clone());
        }
        SeatState {
            location: s.seat,
            epoch: s.epoch,
            cache,
            slot_epoch: (0..cams)
                .map(|j| s.cache.get(j).map_or(0, |c| c.epoch))
                .collect(),
            quarantine: QuarantineLedger::from_entries(s.quarantine.clone()),
            last_plan: (s.assignment.clone(), s.active.clone()),
            plan_round: s.plan_round,
        }
    }
}

/// Connected components of the node graph under `plan` at `round`:
/// returns an island id per node, where nodes `0..cams` are the cameras
/// and node `cams` is the hub. Two nodes share an island when they can
/// reach each other in *both* directions (a one-way cut separates its
/// endpoints); components are closed transitively as usual.
fn partition_islands(plan: &PartitionPlan, cams: usize, round: usize) -> Vec<usize> {
    let n = cams + 1;
    let ep = |i: usize| {
        if i == cams {
            Endpoint::Hub
        } else {
            Endpoint::Camera(i)
        }
    };
    let mut id: Vec<usize> = (0..n).collect();
    for a in 0..n {
        for b in a + 1..n {
            if plan.can_reach(ep(a), ep(b), round) && plan.can_reach(ep(b), ep(a), round) {
                let (keep, drop) = (id[a].min(id[b]), id[a].max(id[b]));
                if keep != drop {
                    for x in id.iter_mut() {
                        if *x == drop {
                            *x = keep;
                        }
                    }
                }
            }
        }
    }
    id
}

/// Routes a camera→controller send through the transport — unless the
/// sender currently *holds* the controller seat (post-failover or acting
/// island controller), in which case its own traffic never touches the
/// radio and costs nothing. `seat` is the *location* of the seat the
/// sender is routed to: `None` targets the hub, `Some(s)` camera `s`.
fn uplink(
    net: &mut Network,
    seat: Option<usize>,
    from: usize,
    message: Message,
    battery: &mut BatteryState,
    meter: &mut PowerMeter,
) -> eecs_net::Result<Delivery> {
    match seat {
        Some(s) if s == from => Ok(Delivery::loopback()),
        Some(s) => net.send_reliable_to(from, Endpoint::Camera(s), message, battery, meter),
        None => net.send_reliable(from, message, battery, meter),
    }
}

/// Per-camera budgets under a fleet: each camera's per-frame allowance is
/// the configured budget divided by its profile's cost scale against the
/// reference device, so a slower class is asked to do proportionally less
/// work. A scale of exactly 1.0 (every uniform or flagship profile) takes
/// the untouched configured value — bit-identical to the homogeneous
/// budget math.
fn scaled_budgets(
    budget_j_per_frame: f64,
    fleet: &[DeviceProfile],
    reference: &eecs_energy::model::DeviceEnergyModel,
) -> Result<Vec<EnergyBudget>> {
    fleet
        .iter()
        .map(|p| {
            let scale = p.cost_scale(reference);
            let b = if scale == 1.0 {
                budget_j_per_frame
            } else {
                budget_j_per_frame / scale
            };
            EnergyBudget::per_frame(b).map_err(EecsError::from)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_scene::dataset::DatasetId;

    fn sim_config(mode: OperatingMode) -> SimulationConfig {
        let mut profile = DatasetProfile::miniature(DatasetId::Lab);
        profile.num_people = 4;
        let mut eecs = EecsConfig::default();
        // Miniature cadence: gt every 5 frames; assess 2 frames, rounds of
        // 6 annotated frames.
        eecs.assessment_period = 10;
        eecs.recalibration_interval = 30;
        eecs.key_frames = 8;
        SimulationConfig {
            profile,
            cameras: 2,
            start_frame: 40,
            end_frame: 100,
            budget_j_per_frame: 10.0,
            mode,
            eecs,
            feature_words: 12,
            max_training_frames: 8,
            boost_every: 0,
            fault_plan: FaultPlan::ideal(),
            sensor_plan: SensorFaultPlan::ideal(),
            controller_plan: ControllerFaultPlan::none(),
            parallel: Parallelism::default(),
        }
    }

    fn shared_bank() -> DetectorBank {
        DetectorBank::train_quick(42).unwrap()
    }

    #[test]
    fn all_best_runs_and_accounts_energy() {
        let sim = Simulation::prepare(shared_bank(), sim_config(OperatingMode::AllBest)).unwrap();
        let report = sim.run().unwrap();
        assert!(report.total_energy_j > 0.0);
        assert_eq!(report.per_camera_energy.len(), 2);
        assert!(!report.rounds.is_empty());
        assert!(report.gt_objects > 0);
        let round_sum: f64 = report.rounds.iter().map(|r| r.energy_j).sum();
        // Rounds cover all but the one-time feature upload.
        assert!(round_sum <= report.total_energy_j + 1e-9);
    }

    #[test]
    fn full_eecs_not_more_expensive_than_all_best_operation() {
        let bank = shared_bank();
        // Derive a Fig-5b-style budget from the trained profiles: feasible
        // for the cheapest algorithm only, so assessment is not inflated by
        // algorithms the paper's budget would exclude.
        let probe = Simulation::prepare(bank.clone(), sim_config(OperatingMode::AllBest)).unwrap();
        let cheapest = probe.controller.records()[0]
            .ranked()
            .iter()
            .map(|p| p.energy_per_frame_j)
            .fold(f64::INFINITY, f64::min);
        let budget = cheapest * 1.3;

        let mut all_cfg = sim_config(OperatingMode::AllBest);
        all_cfg.budget_j_per_frame = budget;
        let mut eecs_cfg = sim_config(OperatingMode::FullEecs);
        eecs_cfg.budget_j_per_frame = budget;
        let all = Simulation::prepare(bank.clone(), all_cfg)
            .unwrap()
            .run()
            .unwrap();
        let eecs = Simulation::prepare(bank, eecs_cfg).unwrap().run().unwrap();
        // The paper's headline (Fig 5b): EECS spends no more energy than
        // the all-cameras baseline while keeping most of its detections.
        assert!(eecs.gt_objects > 0);
        assert!(
            eecs.total_energy_j <= all.total_energy_j * 1.05,
            "EECS {} J vs all-best {} J",
            eecs.total_energy_j,
            all.total_energy_j
        );
    }

    #[test]
    fn boost_rounds_restore_full_configuration() {
        // Section VII: with boost_every = 1 every round is a boost round,
        // so full EECS operates exactly like the all-best baseline.
        let mut cfg = sim_config(OperatingMode::FullEecs);
        cfg.boost_every = 1;
        let sim = Simulation::prepare(shared_bank(), cfg).unwrap();
        let report = sim.run().unwrap();
        // Every feasible camera is active in every round.
        for round in &report.rounds {
            assert_eq!(round.active.len(), 2, "boost round dropped a camera");
        }
        // And boosting costs at least as much as un-boosted full EECS.
        let mut cfg2 = sim_config(OperatingMode::FullEecs);
        cfg2.boost_every = 0;
        let plain_report = Simulation::prepare(shared_bank(), cfg2)
            .unwrap()
            .run()
            .unwrap();
        assert!(report.total_energy_j >= plain_report.total_energy_j - 1e-9);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut cfg = sim_config(OperatingMode::AllBest);
        cfg.cameras = 0;
        assert!(Simulation::prepare(shared_bank(), cfg).is_err());
        let mut cfg2 = sim_config(OperatingMode::AllBest);
        cfg2.start_frame = 100;
        cfg2.end_frame = 100;
        assert!(Simulation::prepare(shared_bank(), cfg2).is_err());
    }

    #[test]
    fn infeasible_budget_surfaces() {
        let mut cfg = sim_config(OperatingMode::AllBest);
        cfg.budget_j_per_frame = 1e-9;
        let sim = Simulation::prepare(shared_bank(), cfg).unwrap();
        assert!(matches!(sim.run(), Err(EecsError::Infeasible(_))));
    }

    #[test]
    fn uniform_fleet_and_inert_churn_are_bit_identical() {
        let base = Simulation::prepare(shared_bank(), sim_config(OperatingMode::FullEecs)).unwrap();
        let plain = base.run().unwrap();
        let dressed = base
            .with_fleet(base.fleet().to_vec())
            .unwrap()
            .with_churn(ChurnPlan::ideal())
            .run()
            .unwrap();
        assert_eq!(plain, dressed, "inert fleet/churn must not perturb a run");
    }

    #[test]
    fn heterogeneous_fleet_scales_per_camera_costs() {
        let base = Simulation::prepare(shared_bank(), sim_config(OperatingMode::AllBest)).unwrap();
        let uniform = base.run().unwrap();
        let het = base
            .with_fleet(vec![DeviceProfile::flagship(), DeviceProfile::midrange()])
            .unwrap()
            .run()
            .unwrap();
        // The flagship is the calibrated reference device: its camera is
        // untouched, bit for bit. The midrange camera pays 1.6x per
        // operation, so its meter cannot read the same.
        assert_eq!(het.per_camera_energy[0], uniform.per_camera_energy[0]);
        assert_ne!(het.per_camera_energy[1], uniform.per_camera_energy[1]);
        assert_eq!(het.camera_joins, 0);
        assert_eq!(het.camera_leaves, 0);
    }

    #[test]
    fn with_fleet_rejects_broken_fleets() {
        let base = Simulation::prepare(shared_bank(), sim_config(OperatingMode::AllBest)).unwrap();
        // Wrong arity.
        assert!(base.with_fleet(vec![DeviceProfile::flagship()]).is_err());
        // A sensor too small for the dataset.
        let mut tiny = DeviceProfile::flagship();
        tiny.max_width = 8;
        assert!(base
            .with_fleet(vec![DeviceProfile::flagship(), tiny])
            .is_err());
        // An invalid battery.
        let dead = DeviceProfile::flagship().with_capacity(0.0);
        assert!(base
            .with_fleet(vec![DeviceProfile::flagship(), dead])
            .is_err());
    }

    #[test]
    fn churn_departure_never_dangles_in_plans() {
        // Three rounds; camera 1 leaves for round 1 and rejoins at round 2.
        let mut cfg = sim_config(OperatingMode::FullEecs);
        cfg.end_frame = 130;
        let sim = Simulation::prepare(shared_bank(), cfg).unwrap();
        let plan = ChurnPlan::seeded(5).with_leave(1, 1, 2);
        let report = sim.with_churn(plan.clone()).run().unwrap();
        assert_eq!(report.rounds.len(), 3);
        assert_eq!(report.camera_leaves, 1);
        assert_eq!(report.camera_joins, 1);
        // Regression: sticky fallbacks and index-keyed caches must not
        // keep a departed camera in the round's plan.
        let absent = &report.rounds[1];
        assert!(
            !absent.assignment.contains_key(&1),
            "departed camera still assigned: {:?}",
            absent.assignment
        );
        assert!(
            !absent.active.contains(&1),
            "departed camera still active: {:?}",
            absent.active
        );
        // The same plan replays bit-identically.
        let again = sim.with_churn(plan).run().unwrap();
        assert_eq!(report, again);
    }
}
