//! EECS — the energy-efficient camera-sensor coordination framework.
//!
//! This crate is the paper's contribution (Section IV): a central
//! controller that, given a network of battery-powered cameras with four
//! detection algorithms each, chooses *which cameras* to activate and
//! *which algorithm* each should run so that a desired global detection
//! accuracy is met at minimum energy.
//!
//! Pipeline (Fig. 1/2 of the paper):
//!
//! 1. **Offline training** ([`training`]) — every algorithm is run on every
//!    training video; per-item thresholds `d_t`, f-scores, energy costs and
//!    score calibrations are recorded ([`profile`]).
//! 2. **Feature upload & matching** ([`features`], [`controller`]) —
//!    cameras upload compact per-frame features; the controller matches
//!    them to training items on the Grassmann manifold (`eecs-manifold`)
//!    and thereby knows each camera's algorithm ranking.
//! 3. **Assessment** — for a short period (100 frames) cameras run all
//!    budget-feasible algorithms and upload detection metadata
//!    ([`metadata`]).
//! 4. **Re-identification** ([`reid`]) — the controller fuses metadata
//!    across cameras via ground-plane homographies + Mahalanobis-gated
//!    color matching, and combines probabilities with Eq. 6
//!    ([`accuracy`]).
//! 5. **Selection** ([`selection`]) — greedy camera-subset choice and
//!    f-score/energy-ratio algorithm downgrades, subject to
//!    `D = [γ_n·N*, γ_p·P*]`.
//! 6. **Operation** ([`camera_node`], [`simulation`]) — the chosen
//!    configuration runs until the next recalibration (500 frames), with
//!    every Joule accounted.

pub mod accuracy;
pub mod camera_node;
pub mod checkpoint;
pub mod config;
pub mod controller;
pub mod features;
pub mod jsonio;
pub mod metadata;
pub mod par;
pub mod profile;
pub mod reconcile;
pub mod reid;
pub mod selection;
pub mod simulation;
pub mod telemetry;
pub mod testkit;
pub mod training;

pub use accuracy::{DesiredAccuracy, GlobalAccuracy};
pub use camera_node::CameraNode;
pub use checkpoint::{
    CheckpointError, CheckpointFaultPlan, CheckpointStore, RestoredCheckpoint, SimulationCheckpoint,
};
pub use config::{ConfigError, EecsConfig};
pub use controller::{Controller, QuarantineLedger, QuarantinePolicy};
/// The CRC-32 unit shared by wire framing, the checkpoint store, and
/// the sweep-manifest journal (re-exported from `eecs_net`, which sits
/// below this crate in the dependency order).
pub use eecs_net::checksum;
pub use features::FeatureExtractor;
pub use metadata::{CameraReport, ObjectMetadata};
pub use profile::{AlgorithmProfile, DowngradeRule, TrainingRecord};
pub use reconcile::SeatSnapshot;
pub use reid::FusedObject;
pub use simulation::{FailoverEvent, OperatingMode, Parallelism, SimulationReport};
pub use telemetry::{FlightRecorder, MetricsRegistry, Telemetry, TelemetrySink, TraceEvent};
pub use testkit::{InvariantChecker, InvariantContext};

use std::error::Error;
use std::fmt;

/// Errors produced by the EECS framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EecsError {
    /// A subsystem failed.
    Subsystem(String),
    /// Invalid configuration or arguments.
    InvalidArgument(String),
    /// No feasible camera/algorithm assignment exists under the budgets.
    Infeasible(String),
}

impl fmt::Display for EecsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EecsError::Subsystem(msg) => write!(f, "subsystem failure: {msg}"),
            EecsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            EecsError::Infeasible(msg) => write!(f, "infeasible: {msg}"),
        }
    }
}

impl Error for EecsError {}

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, EecsError>;

macro_rules! from_subsystem_error {
    ($($ty:ty),+) => {
        $(impl From<$ty> for EecsError {
            fn from(e: $ty) -> Self {
                EecsError::Subsystem(e.to_string())
            }
        })+
    };
}

from_subsystem_error!(
    eecs_detect::DetectError,
    eecs_manifold::ManifoldError,
    eecs_geometry::GeometryError,
    eecs_energy::EnergyError,
    eecs_net::NetError,
    eecs_linalg::LinalgError,
    eecs_vision::VisionError,
    eecs_learn::LearnError
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_convert_from_subsystems() {
        let e: EecsError = eecs_energy::EnergyError::InvalidArgument("x".into()).into();
        assert!(matches!(e, EecsError::Subsystem(_)));
        assert!(e.to_string().contains('x'));
    }
}
