//! Scoped worker-pool fan-out for pure per-item work.
//!
//! The simulator's hot paths — offline training sweeps and the per-round
//! detection work of [`crate::simulation::Simulation::run`] — are
//! embarrassingly parallel: each item's result depends only on that item.
//! [`par_map_indexed`] fans such work over a small pool of scoped threads
//! (vendored `crossbeam::thread::scope`), collects into index-addressed
//! slots, and returns results in input order, so callers consume them in
//! exactly the sequence a serial loop would have produced. Determinism of
//! the overall simulation then only requires that `f` itself is pure.

/// How many worker threads a pool request resolves to: `workers == 0`
/// means "auto" (the host's available parallelism), and the pool is never
/// larger than the number of items.
pub fn resolve_workers(workers: usize, items: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let requested = if workers == 0 { auto } else { workers };
    requested.min(items.max(1))
}

/// Applies `f` to every index in `0..n` on a pool of `workers` scoped
/// threads (`0` = auto) and returns the results in index order.
///
/// Work is claimed dynamically through an atomic counter, so slow items do
/// not stall the pool; with one worker (or one item) the loop runs inline
/// with no threads spawned, making the serial path literally serial.
pub fn par_map_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers, n);
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let out = std::sync::Mutex::new(&mut slots);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                out.lock().expect("slot lock")[i] = Some(v);
            });
        }
    })
    .expect("pool workers do not panic");
    slots
        .into_iter()
        .map(|o| o.expect("every index processed"))
        .collect()
}

/// Applies `f` to every index in `0..n` on a pool of `workers` scoped
/// threads (`0` = auto) and streams each result to `sink` **on the calling
/// thread**, in completion order.
///
/// This is the nested-pool primitive behind the scenario-sweep engine:
/// the outer pool claims whole jobs dynamically, each job may itself fan
/// out via [`par_map_indexed`] (scoped threads nest freely), and the sink
/// — which appends to a manifest file — runs serially without any locking
/// discipline on the caller's side.
///
/// `sink` returns `true` to keep going; returning `false` stops the pool
/// from claiming further indices (an orderly abort: items already in
/// flight are finished and discarded, and `sink` is not called again).
/// With one worker (or one item) everything runs inline on the calling
/// thread and the early-stop is exact: no extra `f` call is made.
pub fn par_map_streamed<T, F, S>(n: usize, workers: usize, f: F, mut sink: S)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    S: FnMut(usize, T) -> bool,
{
    let workers = resolve_workers(workers, n);
    if workers <= 1 || n <= 1 {
        for i in 0..n {
            if !sink(i, f(i)) {
                return;
            }
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T)>();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (next, stop, f) = (&next, &stop, &f);
            s.spawn(move |_| loop {
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                if tx.send((i, v)).is_err() {
                    break;
                }
            });
        }
        // The workers hold the remaining senders; once each exits, the
        // channel closes and the drain loop below ends.
        drop(tx);
        let mut draining = false;
        for (i, v) in rx {
            if draining {
                continue; // in-flight stragglers after an abort
            }
            if !sink(i, v) {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                draining = true;
            }
        }
    })
    .expect("pool workers do not panic");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = par_map_indexed(100, 0, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let serial = par_map_indexed(37, 1, |i| (i, i * i));
        let parallel = par_map_indexed(37, 8, |i| (i, i * i));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = par_map_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn streamed_covers_every_index_exactly_once() {
        for workers in [1, 2, 8] {
            let mut seen = vec![0usize; 50];
            par_map_streamed(
                50,
                workers,
                |i| i * 2,
                |i, v| {
                    assert_eq!(v, i * 2);
                    seen[i] += 1;
                    true
                },
            );
            assert!(seen.iter().all(|&c| c == 1), "workers={workers}");
        }
    }

    #[test]
    fn streamed_early_stop_claims_no_more_after_false() {
        // Serial path: the stop is exact.
        let mut got = Vec::new();
        par_map_streamed(
            100,
            1,
            |i| i,
            |i, _| {
                got.push(i);
                got.len() < 3
            },
        );
        assert_eq!(got, vec![0, 1, 2]);

        // Parallel path: the sink never fires again after returning false
        // (how many items the workers still *compute* before observing the
        // stop flag is scheduling-dependent; the delivery contract is not).
        let mut delivered = 0usize;
        par_map_streamed(
            10_000,
            4,
            |i| i,
            |_, _| {
                delivered += 1;
                delivered < 5
            },
        );
        assert_eq!(delivered, 5);
    }

    #[test]
    fn streamed_empty_input_is_fine() {
        par_map_streamed(0, 4, |i| i, |_, _| panic!("no items, no sink calls"));
    }

    #[test]
    fn resolve_workers_bounds() {
        assert_eq!(resolve_workers(3, 100), 3);
        assert_eq!(resolve_workers(8, 2), 2);
        assert!(resolve_workers(0, 100) >= 1);
        assert_eq!(resolve_workers(0, 0), 1);
    }
}
