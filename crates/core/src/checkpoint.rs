//! Periodic controller-state checkpoints for failover.
//!
//! When a [`eecs_net::ControllerFaultPlan`] can kill the controller
//! mid-run, the simulation snapshots the controller's volatile selection
//! state at the end of each round ([`crate::config::EecsConfig::checkpoint_every`]):
//! the assessment cache, the current assignment plan, the quarantine
//! ledger, and the per-camera battery ledger. After a crash the newly
//! elected camera-controller restores the latest checkpoint and carries
//! on — within one assessment round it behaves as if it had been the
//! controller all along.
//!
//! Serialization goes through the workspace's hand-rolled JSON
//! ([`crate::jsonio`], shared with `eecs_bench::report`; the build is
//! offline, no serde). Floats are written with `{:?}` — Rust's shortest
//! round-trip format — so a serialize → parse cycle restores every
//! `f64` bit-for-bit, and a restored controller replays byte-identically
//! with one that never crashed between checkpoints.

use crate::controller::{AssessmentCache, CameraAssessment};
use crate::jsonio::{self, Json};
use crate::metadata::{CameraReport, ObjectMetadata};
use eecs_detect::detection::{AlgorithmId, BBox};
use eecs_net::checksum::crc32;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into every checkpoint payload document.
/// Version 4 adds fleet membership and per-camera device-profile names,
/// so a restored seat knows which cameras existed and on what hardware.
pub const SCHEMA: &str = "eecs-checkpoint/4";

/// Schema tag stamped into every verified store record (envelope).
pub const STORE_SCHEMA: &str = "eecs-checkpoint/3";

/// One camera's slot in the serialized assessment cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheSlot {
    /// Seat epoch the slot was last written under; reconciliation
    /// prefers the (epoch, round)-freshest slot when islands merge.
    pub epoch: u64,
    /// Round the camera was last heard from.
    pub heard: Option<usize>,
    /// `(round gathered, reports)` as cached by the controller.
    pub entry: Option<(usize, CameraAssessment)>,
}

/// A snapshot of everything the controller needs to resume selection
/// after a crash.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimulationCheckpoint {
    /// Round index the snapshot was taken at the end of.
    pub round: usize,
    /// Fencing epoch of the seat that took the snapshot. A controller
    /// elected after a crash or partition restores this and announces
    /// `epoch + 1`, so stale seats can always be recognized.
    pub epoch: u64,
    /// The standing algorithm assignment (camera → algorithm).
    pub assignment: BTreeMap<usize, AlgorithmId>,
    /// The standing active-camera set.
    pub active: Vec<usize>,
    /// Per-camera energy drawn so far (J) — the battery ledger; restored
    /// for bookkeeping and used by the election sanity checks.
    pub battery_used_j: Vec<f64>,
    /// The assessment cache, slot per camera.
    pub cache: Vec<CacheSlot>,
    /// Quarantine ledger entries `(camera, algorithm, strikes,
    /// eligible_round)`.
    pub quarantine: Vec<(usize, AlgorithmId, u32, usize)>,
    /// Camera indices that were fleet members when the snapshot was
    /// taken. Restore ignores this for replay (membership is a pure
    /// function of the churn plan) but keeps it for audit.
    pub members: Vec<usize>,
    /// Device-profile name per camera slot (empty for a uniform fleet
    /// that never configured profiles).
    pub profiles: Vec<String>,
}

impl SimulationCheckpoint {
    /// An empty checkpoint for `cameras` cameras — what a controller that
    /// crashed before its first round-end snapshot restores to.
    pub fn initial(cameras: usize) -> SimulationCheckpoint {
        SimulationCheckpoint {
            round: 0,
            epoch: 0,
            assignment: BTreeMap::new(),
            active: Vec::new(),
            battery_used_j: vec![0.0; cameras],
            cache: vec![CacheSlot::default(); cameras],
            quarantine: Vec::new(),
            members: (0..cameras).collect(),
            profiles: Vec::new(),
        }
    }

    /// Captures the cache side of a snapshot from the live controller
    /// structures.
    pub fn capture_cache(cache: &AssessmentCache, cameras: usize) -> Vec<CacheSlot> {
        (0..cameras)
            .map(|j| CacheSlot {
                epoch: 0,
                heard: cache.heard_round(j),
                entry: cache.entry(j).map(|(r, a)| (r, a.clone())),
            })
            .collect()
    }

    /// Rebuilds a live [`AssessmentCache`] from the snapshot.
    pub fn restore_cache(&self) -> AssessmentCache {
        let mut cache = AssessmentCache::new(self.cache.len());
        for (j, slot) in self.cache.iter().enumerate() {
            cache.restore_entry(j, slot.heard, slot.entry.clone());
        }
        cache
    }

    /// Serializes the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\": \"");
        out.push_str(SCHEMA);
        let _ = write!(
            out,
            "\", \"round\": {}, \"epoch\": {}",
            self.round, self.epoch
        );

        out.push_str(", \"assignment\": [");
        for (i, (cam, alg)) in self.assignment.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{cam}, \"{alg}\"]");
        }
        out.push(']');

        out.push_str(", \"active\": [");
        for (i, cam) in self.active.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{cam}");
        }
        out.push(']');

        out.push_str(", \"battery_used_j\": [");
        for (i, j) in self.battery_used_j.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{j:?}");
        }
        out.push(']');

        out.push_str(", \"cache\": [");
        for (i, slot) in self.cache.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_slot(&mut out, slot);
        }
        out.push(']');

        out.push_str(", \"quarantine\": [");
        for (i, (cam, alg, strikes, until)) in self.quarantine.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{cam}, \"{alg}\", {strikes}, {until}]");
        }
        out.push(']');

        out.push_str(", \"members\": [");
        for (i, cam) in self.members.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{cam}");
        }
        out.push(']');

        out.push_str(", \"profiles\": [");
        for (i, name) in self.profiles.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{name:?}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a checkpoint back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem — malformed
    /// JSON, a wrong schema tag, or a missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<SimulationCheckpoint, String> {
        let doc = jsonio::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let round = get_usize(&doc, "round")?;
        let epoch = get_usize(&doc, "epoch")? as u64;

        let mut assignment = BTreeMap::new();
        for pair in get_arr(&doc, "assignment")? {
            let items = pair.as_arr().ok_or("assignment entry must be an array")?;
            let (cam, alg) = match items {
                [cam, alg] => (as_usize(cam)?, as_algorithm(alg)?),
                _ => return Err("assignment entry must be [camera, algorithm]".into()),
            };
            assignment.insert(cam, alg);
        }

        let active = get_arr(&doc, "active")?
            .iter()
            .map(as_usize)
            .collect::<Result<Vec<_>, _>>()?;

        let battery_used_j = get_arr(&doc, "battery_used_j")?
            .iter()
            .map(|v| {
                v.as_num()
                    .ok_or_else(|| "battery entry must be a number".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;

        let cache = get_arr(&doc, "cache")?
            .iter()
            .map(parse_slot)
            .collect::<Result<Vec<_>, _>>()?;

        let mut quarantine = Vec::new();
        for entry in get_arr(&doc, "quarantine")? {
            let items = entry.as_arr().ok_or("quarantine entry must be an array")?;
            match items {
                [cam, alg, strikes, until] => quarantine.push((
                    as_usize(cam)?,
                    as_algorithm(alg)?,
                    as_usize(strikes)? as u32,
                    as_usize(until)?,
                )),
                _ => {
                    return Err(
                        "quarantine entry must be [camera, algorithm, strikes, round]".into(),
                    )
                }
            }
        }

        let members = get_arr(&doc, "members")?
            .iter()
            .map(as_usize)
            .collect::<Result<Vec<_>, _>>()?;

        let profiles = get_arr(&doc, "profiles")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "profile name must be a string".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(SimulationCheckpoint {
            round,
            epoch,
            assignment,
            active,
            battery_used_j,
            cache,
            quarantine,
            members,
            profiles,
        })
    }
}

fn write_slot(out: &mut String, slot: &CacheSlot) {
    out.push('{');
    let _ = write!(out, "\"epoch\": {}, ", slot.epoch);
    match slot.heard {
        Some(r) => {
            let _ = write!(out, "\"heard\": {r}");
        }
        None => out.push_str("\"heard\": null"),
    }
    out.push_str(", \"entry\": ");
    match &slot.entry {
        None => out.push_str("null"),
        Some((round, reports)) => {
            let _ = write!(out, "{{\"round\": {round}, \"reports\": [");
            for (i, (alg, series)) in reports.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[\"{alg}\", [");
                for (k, report) in series.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    write_report(out, report);
                }
                out.push_str("]]");
            }
            out.push_str("]}");
        }
    }
    out.push('}');
}

fn write_report(out: &mut String, report: &CameraReport) {
    out.push_str("{\"objects\": [");
    for (i, o) in report.objects.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"camera\": {}, \"bbox\": [{:?}, {:?}, {:?}, {:?}], \"probability\": {:?}, \"color\": [",
            o.camera, o.bbox.x0, o.bbox.y0, o.bbox.x1, o.bbox.y1, o.probability
        );
        for (k, c) in o.color.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c:?}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn parse_slot(v: &Json) -> Result<CacheSlot, String> {
    let epoch = get_usize(v, "epoch")? as u64;
    let heard = match v.get("heard") {
        Some(Json::Null) | None => None,
        Some(n) => Some(as_usize(n)?),
    };
    let entry = match v.get("entry") {
        Some(Json::Null) | None => None,
        Some(e) => {
            let round = get_usize(e, "round")?;
            let mut reports: CameraAssessment = BTreeMap::new();
            for pair in get_arr(e, "reports")? {
                let items = pair.as_arr().ok_or("reports entry must be an array")?;
                let (alg, series) = match items {
                    [alg, series] => (as_algorithm(alg)?, series),
                    _ => return Err("reports entry must be [algorithm, series]".into()),
                };
                let series = series
                    .as_arr()
                    .ok_or("report series must be an array")?
                    .iter()
                    .map(parse_report)
                    .collect::<Result<Vec<_>, _>>()?;
                reports.insert(alg, series);
            }
            Some((round, reports))
        }
    };
    Ok(CacheSlot {
        epoch,
        heard,
        entry,
    })
}

fn parse_report(v: &Json) -> Result<CameraReport, String> {
    let mut objects = Vec::new();
    for o in get_arr(v, "objects")? {
        let camera = get_usize(o, "camera")?;
        let bbox = o
            .get("bbox")
            .and_then(Json::as_arr)
            .ok_or("object missing \"bbox\"")?;
        let bbox = match bbox {
            [x0, y0, x1, y1] => BBox {
                x0: as_f64(x0)?,
                y0: as_f64(y0)?,
                x1: as_f64(x1)?,
                y1: as_f64(y1)?,
            },
            _ => return Err("bbox must be [x0, y0, x1, y1]".into()),
        };
        let probability = o
            .get("probability")
            .and_then(Json::as_num)
            .ok_or("object missing \"probability\"")?;
        let color = o
            .get("color")
            .and_then(Json::as_arr)
            .ok_or("object missing \"color\"")?
            .iter()
            .map(as_f64)
            .collect::<Result<Vec<_>, _>>()?;
        objects.push(ObjectMetadata {
            camera,
            bbox,
            probability,
            color,
        });
    }
    Ok(CameraReport { objects })
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing \"{key}\" array"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .ok_or_else(|| format!("missing \"{key}\""))
        .and_then(as_usize)
}

fn as_usize(v: &Json) -> Result<usize, String> {
    let n = v.as_num().ok_or("expected a number")?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("expected a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

fn as_f64(v: &Json) -> Result<f64, String> {
    v.as_num().ok_or_else(|| "expected a number".to_string())
}

fn as_algorithm(v: &Json) -> Result<AlgorithmId, String> {
    v.as_str().ok_or("expected an algorithm name")?.parse()
}

// ---------------------------------------------------------------------------
// Verified checkpoint store (schema eecs-checkpoint/3)
// ---------------------------------------------------------------------------

/// Deterministic storage-fault injection for the checkpoint store.
///
/// Mirrors [`eecs_net::FaultPlan`]: a pure function of `(seed,
/// generation)` decides whether — and how — a committed record is
/// damaged, so a faulted run replays bit-identically. A default plan
/// injects nothing and consumes no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CheckpointFaultPlan {
    seed: u64,
    torn_write: Option<u64>,
    bit_rot: Option<u64>,
    bit_rot_rate: f64,
}

impl CheckpointFaultPlan {
    /// No storage faults at all.
    pub fn none() -> CheckpointFaultPlan {
        CheckpointFaultPlan::default()
    }

    /// A plan whose stochastic choices (bit positions, rot rolls) are
    /// keyed by `seed`.
    pub fn seeded(seed: u64) -> CheckpointFaultPlan {
        CheckpointFaultPlan {
            seed,
            ..CheckpointFaultPlan::default()
        }
    }

    /// Tear the write of `generation`: only a prefix of the record
    /// reaches storage (a crash mid-`write(2)`).
    pub fn with_torn_write(mut self, generation: u64) -> CheckpointFaultPlan {
        self.torn_write = Some(generation);
        self
    }

    /// Flip one bit of `generation`'s record after it is written
    /// (media decay on a specific record).
    pub fn with_bit_rot(mut self, generation: u64) -> CheckpointFaultPlan {
        self.bit_rot = Some(generation);
        self
    }

    /// Flip one bit of each committed record with probability `rate`,
    /// decided per generation from the seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` — rate 1 would rot every
    /// generation and make restore impossible by construction.
    pub fn with_bit_rot_rate(mut self, rate: f64) -> CheckpointFaultPlan {
        assert!(
            (0.0..1.0).contains(&rate),
            "bit-rot rate must be in [0, 1), got {rate}"
        );
        self.bit_rot_rate = rate;
        self
    }

    /// Whether this plan can damage anything.
    pub fn enabled(&self) -> bool {
        self.torn_write.is_some() || self.bit_rot.is_some() || self.bit_rot_rate > 0.0
    }

    /// SplitMix64-finalized draw, pure in `(seed, generation, stream)`.
    fn mix(&self, generation: u64, stream: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(generation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Applies this plan to a freshly written record. Returns `true`
    /// when the bytes were damaged.
    fn corrupt(&self, generation: u64, record: &mut Vec<u8>) -> bool {
        if record.is_empty() {
            return false;
        }
        let mut damaged = false;
        if self.torn_write == Some(generation) {
            record.truncate(record.len() / 2);
            damaged = true;
        }
        let unit = (self.mix(generation, 1) >> 11) as f64 / ((1u64 << 53) as f64);
        let rot_hit = self.bit_rot == Some(generation)
            || (self.bit_rot_rate > 0.0 && unit < self.bit_rot_rate);
        if rot_hit && !record.is_empty() {
            let bit = (self.mix(generation, 2) % (record.len() as u64 * 8)) as usize;
            record[bit / 8] ^= 1 << (bit % 8);
            damaged = true;
        }
        damaged
    }
}

/// Why the checkpoint store could not produce a state to restore.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Every retained generation failed verification (or the store is
    /// empty) — there is no consistent state to fall back to.
    NoVerifiedGeneration {
        /// Number of retained records that were tried and rejected.
        tried: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::NoVerifiedGeneration { tried } => write!(
                f,
                "no checkpoint generation verifies ({tried} record(s) rejected)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Outcome of a successful [`CheckpointStore::restore`].
#[derive(Debug, Clone, PartialEq)]
pub struct RestoredCheckpoint {
    /// Generation counter of the record that verified.
    pub generation: u64,
    /// Newer generations that failed verification and were skipped to
    /// reach this one.
    pub rolled_back: u64,
    /// The verified checkpoint payload (a [`SCHEMA`] JSON document).
    pub payload: String,
}

/// One retained record: the generation counter plus its raw stored
/// bytes (possibly damaged by the fault plan).
#[derive(Debug, Clone)]
struct StoredGeneration {
    generation: u64,
    record: Vec<u8>,
}

/// Fields a record's header must carry to be considered at all.
struct RecordHeader {
    generation: u64,
    prev_crc: u32,
    payload_crc: u32,
}

/// A verified, generation-chained checkpoint store.
///
/// Every [`commit`](CheckpointStore::commit) wraps the payload in a
/// [`STORE_SCHEMA`] record: a JSON header line carrying a monotone
/// generation counter, the payload's CRC-32, and the *previous*
/// generation's payload CRC (the chain link), followed by the raw
/// payload bytes. [`restore`](CheckpointStore::restore) walks from the
/// newest retained generation backwards and returns the first record
/// that verifies — header parses, schema and length match, payload
/// checksum matches, and (when its predecessor is itself healthy) the
/// chain link agrees. Torn writes and bit rot therefore degrade
/// recovery to an older consistent state instead of deserializing
/// garbage; each skipped generation is counted as a rollback.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    records: Vec<StoredGeneration>,
    next_generation: u64,
    last_payload_crc: u32,
    faults: CheckpointFaultPlan,
    rollbacks: u64,
    keep: usize,
}

impl CheckpointStore {
    /// Generations retained by default — enough to survive a damaged
    /// newest record with headroom, without unbounded growth.
    pub const DEFAULT_KEEP: usize = 4;

    /// An empty store injecting `faults` at commit time.
    pub fn new(faults: CheckpointFaultPlan) -> CheckpointStore {
        CheckpointStore {
            records: Vec::new(),
            next_generation: 1,
            last_payload_crc: 0,
            faults,
            rollbacks: 0,
            keep: CheckpointStore::DEFAULT_KEEP,
        }
    }

    /// Overrides how many generations are retained (min 1).
    pub fn with_keep(mut self, keep: usize) -> CheckpointStore {
        assert!(keep >= 1, "must retain at least one generation");
        self.keep = keep;
        self
    }

    /// Commits `payload` as the next generation and returns its
    /// generation counter. The record is damaged here, deterministically,
    /// if the fault plan says so — exactly like a storage medium that
    /// corrupts on write.
    pub fn commit(&mut self, payload: &str) -> u64 {
        let generation = self.next_generation;
        let payload_crc = crc32(payload.as_bytes());
        let mut record = format!(
            "{{\"schema\": \"{STORE_SCHEMA}\", \"generation\": {generation}, \
             \"prev_crc\": {prev}, \"payload_crc\": {crc}, \"payload_bytes\": {len}}}",
            prev = self.last_payload_crc,
            crc = payload_crc,
            len = payload.len(),
        )
        .into_bytes();
        record.push(b'\n');
        record.extend_from_slice(payload.as_bytes());
        self.faults.corrupt(generation, &mut record);
        self.records.push(StoredGeneration { generation, record });
        if self.records.len() > self.keep {
            self.records.remove(0);
        }
        self.next_generation = generation + 1;
        self.last_payload_crc = payload_crc;
        generation
    }

    /// Restores the newest generation that verifies, counting every
    /// newer record skipped on the way as a rollback.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::NoVerifiedGeneration`] when no retained record
    /// verifies — including the empty store.
    pub fn restore(&mut self) -> Result<RestoredCheckpoint, CheckpointError> {
        let mut rolled_back = 0u64;
        for idx in (0..self.records.len()).rev() {
            let Some((header, payload)) = verify_record(&self.records[idx].record) else {
                rolled_back += 1;
                continue;
            };
            // Chain check: a healthy predecessor must be the one this
            // record claims to extend. A damaged predecessor cannot
            // testify either way, so the payload checksum alone decides.
            if idx > 0 {
                if let Some((prev, _)) = verify_record(&self.records[idx - 1].record) {
                    if header.prev_crc != prev.payload_crc {
                        rolled_back += 1;
                        continue;
                    }
                }
            }
            self.rollbacks += rolled_back;
            return Ok(RestoredCheckpoint {
                generation: header.generation,
                rolled_back,
                payload,
            });
        }
        self.rollbacks += rolled_back;
        Err(CheckpointError::NoVerifiedGeneration {
            tried: self.records.len(),
        })
    }

    /// Rollbacks counted across every restore so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Number of generations currently retained.
    pub fn generations(&self) -> usize {
        self.records.len()
    }

    /// Generation counter of the newest retained record (0 when empty).
    pub fn latest_generation(&self) -> u64 {
        self.records.last().map_or(0, |r| r.generation)
    }
}

/// Verifies one stored record: header line parses as [`STORE_SCHEMA`]
/// JSON, the payload length matches, and the payload checksum agrees.
/// Returns `None` on any damage — this function must be total over
/// arbitrary bytes.
fn verify_record(record: &[u8]) -> Option<(RecordHeader, String)> {
    let split = record.iter().position(|&b| b == b'\n')?;
    let (header_bytes, rest) = record.split_at(split);
    let payload_bytes = &rest[1..];
    let header = std::str::from_utf8(header_bytes).ok()?;
    let doc = jsonio::parse(header).ok()?;
    if doc.get("schema").and_then(Json::as_str) != Some(STORE_SCHEMA) {
        return None;
    }
    let field = |key: &str| -> Option<u64> {
        let n = doc.get(key).and_then(Json::as_num)?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
    };
    let generation = field("generation")?;
    let prev_crc = u32::try_from(field("prev_crc")?).ok()?;
    let payload_crc = u32::try_from(field("payload_crc")?).ok()?;
    let payload_bytes_len = field("payload_bytes")? as usize;
    if payload_bytes.len() != payload_bytes_len || crc32(payload_bytes) != payload_crc {
        return None;
    }
    let payload = std::str::from_utf8(payload_bytes).ok()?.to_string();
    Some((
        RecordHeader {
            generation,
            prev_crc,
            payload_crc,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimulationCheckpoint {
        let report = CameraReport {
            objects: vec![ObjectMetadata {
                camera: 1,
                bbox: BBox::new(3.25, 4.5, 10.125, 30.75),
                probability: 1.0 / 3.0,
                color: vec![0.1, 0.2, 1.0 / 7.0],
            }],
        };
        let mut reports: CameraAssessment = BTreeMap::new();
        reports.insert(
            AlgorithmId::Hog,
            vec![report.clone(), CameraReport::default()],
        );
        reports.insert(AlgorithmId::C4, vec![report]);
        SimulationCheckpoint {
            round: 7,
            epoch: 3,
            assignment: [(0, AlgorithmId::Hog), (2, AlgorithmId::Lsvm)].into(),
            active: vec![0, 2],
            battery_used_j: vec![1.5, 0.1 + 0.2, 0.0],
            cache: vec![
                CacheSlot {
                    epoch: 2,
                    heard: Some(7),
                    entry: Some((6, reports)),
                },
                CacheSlot::default(),
                CacheSlot {
                    epoch: 3,
                    heard: Some(5),
                    entry: None,
                },
            ],
            quarantine: vec![(1, AlgorithmId::Acf, 2, 9)],
            members: vec![0, 2],
            profiles: vec!["flagship".into(), "midrange".into(), "lowend".into()],
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let ckpt = sample();
        let restored = SimulationCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(restored, ckpt);
        // The f64 ledger must survive bit-for-bit, not just approximately.
        for (a, b) in ckpt.battery_used_j.iter().zip(&restored.battery_used_j) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (pa, pb) = (
            &ckpt.cache[0].entry.as_ref().unwrap().1[&AlgorithmId::Hog][0].objects[0],
            &restored.cache[0].entry.as_ref().unwrap().1[&AlgorithmId::Hog][0].objects[0],
        );
        assert_eq!(pa.probability.to_bits(), pb.probability.to_bits());
        assert_eq!(pa.bbox.x1.to_bits(), pb.bbox.x1.to_bits());
    }

    #[test]
    fn initial_checkpoint_is_empty() {
        let ckpt = SimulationCheckpoint::initial(3);
        assert_eq!(ckpt.round, 0);
        assert_eq!(ckpt.epoch, 0);
        assert!(ckpt.assignment.is_empty() && ckpt.active.is_empty());
        assert_eq!(ckpt.battery_used_j, vec![0.0; 3]);
        assert_eq!(ckpt.cache.len(), 3);
        assert_eq!(ckpt.members, vec![0, 1, 2], "everyone starts a member");
        assert!(ckpt.profiles.is_empty(), "uniform fleet names no profiles");
        let restored = SimulationCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(restored, ckpt);
    }

    #[test]
    fn cache_capture_and_restore_round_trip() {
        let mut cache = AssessmentCache::new(2);
        let reports: CameraAssessment = [(AlgorithmId::Acf, Vec::new())].into();
        cache.record(0, 4, reports.clone());
        cache.mark_heard(1, 2);
        let ckpt = SimulationCheckpoint {
            cache: SimulationCheckpoint::capture_cache(&cache, 2),
            ..SimulationCheckpoint::initial(2)
        };
        let restored = ckpt.restore_cache();
        assert_eq!(restored.entry(0), Some((4, &reports)));
        assert!(restored.heard_in(1, 2));
        assert!(restored.entry(1).is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(SimulationCheckpoint::from_json("{").is_err());
        assert!(SimulationCheckpoint::from_json("{}").is_err());
        let wrong_schema = sample().to_json().replace(SCHEMA, "other/1");
        assert!(SimulationCheckpoint::from_json(&wrong_schema).is_err());
        let bad_alg = sample().to_json().replace("LSVM", "YOLO");
        assert!(SimulationCheckpoint::from_json(&bad_alg).is_err());
    }

    #[test]
    fn store_restores_newest_healthy_generation() {
        let mut store = CheckpointStore::new(CheckpointFaultPlan::none());
        assert_eq!(store.commit("alpha"), 1);
        assert_eq!(store.commit("beta"), 2);
        let restored = store.restore().unwrap();
        assert_eq!(restored.generation, 2);
        assert_eq!(restored.rolled_back, 0);
        assert_eq!(restored.payload, "beta");
        assert_eq!(store.rollbacks(), 0);
    }

    #[test]
    fn torn_newest_generation_rolls_back_one() {
        let mut store = CheckpointStore::new(CheckpointFaultPlan::seeded(7).with_torn_write(2));
        store.commit("alpha");
        store.commit("beta");
        let restored = store.restore().unwrap();
        assert_eq!(restored.generation, 1);
        assert_eq!(restored.rolled_back, 1);
        assert_eq!(restored.payload, "alpha");
        assert_eq!(store.rollbacks(), 1);
    }

    #[test]
    fn bit_rot_anywhere_in_newest_record_rolls_back() {
        // Deterministic rot of generation 3 under many seeds: the flipped
        // bit lands all over the record (header, payload, checksum), and
        // every position must be caught.
        for seed in 0..50 {
            let mut store = CheckpointStore::new(CheckpointFaultPlan::seeded(seed).with_bit_rot(3));
            store.commit("one");
            store.commit("two");
            store.commit("three");
            let restored = store.restore().unwrap();
            assert_eq!(restored.generation, 2, "seed {seed}");
            assert_eq!(restored.rolled_back, 1, "seed {seed}");
            assert_eq!(restored.payload, "two", "seed {seed}");
        }
    }

    #[test]
    fn chain_mismatch_with_healthy_predecessor_is_rejected() {
        let mut store = CheckpointStore::new(CheckpointFaultPlan::none());
        store.commit("alpha");
        store.commit("beta");
        // Forge generation 2: internally consistent (schema, length and
        // payload CRC all verify) but chained to a payload that was never
        // generation 1. Only the chain check can catch this.
        let forged_payload = "evil";
        let mut forged = format!(
            "{{\"schema\": \"{STORE_SCHEMA}\", \"generation\": 2, \
             \"prev_crc\": {prev}, \"payload_crc\": {crc}, \"payload_bytes\": {len}}}",
            prev = crc32(b"not-alpha"),
            crc = crc32(forged_payload.as_bytes()),
            len = forged_payload.len(),
        )
        .into_bytes();
        forged.push(b'\n');
        forged.extend_from_slice(forged_payload.as_bytes());
        store.records[1].record = forged;

        let restored = store.restore().unwrap();
        assert_eq!(restored.generation, 1);
        assert_eq!(restored.rolled_back, 1);
        assert_eq!(restored.payload, "alpha");
    }

    #[test]
    fn exhausted_store_returns_typed_error_never_panics() {
        let mut empty = CheckpointStore::new(CheckpointFaultPlan::none());
        assert_eq!(
            empty.restore(),
            Err(CheckpointError::NoVerifiedGeneration { tried: 0 })
        );

        let mut store = CheckpointStore::new(
            CheckpointFaultPlan::seeded(3)
                .with_torn_write(1)
                .with_bit_rot(2),
        );
        store.commit("alpha");
        store.commit("beta");
        let err = store.restore().unwrap_err();
        assert_eq!(err, CheckpointError::NoVerifiedGeneration { tried: 2 });
        assert!(err.to_string().contains("2 record(s)"));
        assert_eq!(store.rollbacks(), 2);
    }

    #[test]
    fn store_bounds_retained_generations() {
        let mut store = CheckpointStore::new(CheckpointFaultPlan::none()).with_keep(2);
        for i in 0..10 {
            store.commit(&format!("payload-{i}"));
        }
        assert_eq!(store.generations(), 2);
        assert_eq!(store.latest_generation(), 10);
        let restored = store.restore().unwrap();
        assert_eq!(restored.generation, 10);
        assert_eq!(restored.payload, "payload-9");
    }

    #[test]
    fn rate_based_rot_is_deterministic_and_survivable() {
        let run = |seed: u64| {
            let mut store =
                CheckpointStore::new(CheckpointFaultPlan::seeded(seed).with_bit_rot_rate(0.5));
            for i in 0..4 {
                store.commit(&format!("gen-{i}"));
            }
            let restored = store.restore();
            (restored, store.rollbacks())
        };
        for seed in 0..20 {
            assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
        }
        // At rate 0.5 over 20 seeds at least one run must roll back and
        // at least one must restore the newest generation untouched.
        let outcomes: Vec<_> = (0..20).map(run).collect();
        assert!(outcomes.iter().any(|(_, rb)| *rb > 0));
        assert!(outcomes
            .iter()
            .any(|(r, _)| matches!(r, Ok(c) if c.generation == 4 && c.rolled_back == 0)));
    }

    #[test]
    fn disabled_fault_plan_is_inert() {
        assert!(!CheckpointFaultPlan::none().enabled());
        assert!(!CheckpointFaultPlan::seeded(9).enabled());
        assert!(CheckpointFaultPlan::seeded(9).with_torn_write(1).enabled());
        assert!(CheckpointFaultPlan::seeded(9).with_bit_rot(1).enabled());
        assert!(CheckpointFaultPlan::seeded(9)
            .with_bit_rot_rate(0.1)
            .enabled());
        let mut bytes = b"header\npayload".to_vec();
        let before = bytes.clone();
        assert!(!CheckpointFaultPlan::none().corrupt(1, &mut bytes));
        assert_eq!(bytes, before);
    }

    #[test]
    #[should_panic(expected = "bit-rot rate")]
    fn certain_rot_rate_is_rejected() {
        let _ = CheckpointFaultPlan::seeded(1).with_bit_rot_rate(1.0);
    }
}
