//! Periodic controller-state checkpoints for failover.
//!
//! When a [`eecs_net::ControllerFaultPlan`] can kill the controller
//! mid-run, the simulation snapshots the controller's volatile selection
//! state at the end of each round ([`crate::config::EecsConfig::checkpoint_every`]):
//! the assessment cache, the current assignment plan, the quarantine
//! ledger, and the per-camera battery ledger. After a crash the newly
//! elected camera-controller restores the latest checkpoint and carries
//! on — within one assessment round it behaves as if it had been the
//! controller all along.
//!
//! Serialization goes through the workspace's hand-rolled JSON
//! ([`crate::jsonio`], shared with `eecs_bench::report`; the build is
//! offline, no serde). Floats are written with `{:?}` — Rust's shortest
//! round-trip format — so a serialize → parse cycle restores every
//! `f64` bit-for-bit, and a restored controller replays byte-identically
//! with one that never crashed between checkpoints.

use crate::controller::{AssessmentCache, CameraAssessment};
use crate::jsonio::{self, Json};
use crate::metadata::{CameraReport, ObjectMetadata};
use eecs_detect::detection::{AlgorithmId, BBox};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema tag stamped into every checkpoint document.
pub const SCHEMA: &str = "eecs-checkpoint/2";

/// One camera's slot in the serialized assessment cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CacheSlot {
    /// Seat epoch the slot was last written under; reconciliation
    /// prefers the (epoch, round)-freshest slot when islands merge.
    pub epoch: u64,
    /// Round the camera was last heard from.
    pub heard: Option<usize>,
    /// `(round gathered, reports)` as cached by the controller.
    pub entry: Option<(usize, CameraAssessment)>,
}

/// A snapshot of everything the controller needs to resume selection
/// after a crash.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimulationCheckpoint {
    /// Round index the snapshot was taken at the end of.
    pub round: usize,
    /// Fencing epoch of the seat that took the snapshot. A controller
    /// elected after a crash or partition restores this and announces
    /// `epoch + 1`, so stale seats can always be recognized.
    pub epoch: u64,
    /// The standing algorithm assignment (camera → algorithm).
    pub assignment: BTreeMap<usize, AlgorithmId>,
    /// The standing active-camera set.
    pub active: Vec<usize>,
    /// Per-camera energy drawn so far (J) — the battery ledger; restored
    /// for bookkeeping and used by the election sanity checks.
    pub battery_used_j: Vec<f64>,
    /// The assessment cache, slot per camera.
    pub cache: Vec<CacheSlot>,
    /// Quarantine ledger entries `(camera, algorithm, strikes,
    /// eligible_round)`.
    pub quarantine: Vec<(usize, AlgorithmId, u32, usize)>,
}

impl SimulationCheckpoint {
    /// An empty checkpoint for `cameras` cameras — what a controller that
    /// crashed before its first round-end snapshot restores to.
    pub fn initial(cameras: usize) -> SimulationCheckpoint {
        SimulationCheckpoint {
            round: 0,
            epoch: 0,
            assignment: BTreeMap::new(),
            active: Vec::new(),
            battery_used_j: vec![0.0; cameras],
            cache: vec![CacheSlot::default(); cameras],
            quarantine: Vec::new(),
        }
    }

    /// Captures the cache side of a snapshot from the live controller
    /// structures.
    pub fn capture_cache(cache: &AssessmentCache, cameras: usize) -> Vec<CacheSlot> {
        (0..cameras)
            .map(|j| CacheSlot {
                epoch: 0,
                heard: cache.heard_round(j),
                entry: cache.entry(j).map(|(r, a)| (r, a.clone())),
            })
            .collect()
    }

    /// Rebuilds a live [`AssessmentCache`] from the snapshot.
    pub fn restore_cache(&self) -> AssessmentCache {
        let mut cache = AssessmentCache::new(self.cache.len());
        for (j, slot) in self.cache.iter().enumerate() {
            cache.restore_entry(j, slot.heard, slot.entry.clone());
        }
        cache
    }

    /// Serializes the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"schema\": \"");
        out.push_str(SCHEMA);
        let _ = write!(
            out,
            "\", \"round\": {}, \"epoch\": {}",
            self.round, self.epoch
        );

        out.push_str(", \"assignment\": [");
        for (i, (cam, alg)) in self.assignment.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{cam}, \"{alg}\"]");
        }
        out.push(']');

        out.push_str(", \"active\": [");
        for (i, cam) in self.active.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{cam}");
        }
        out.push(']');

        out.push_str(", \"battery_used_j\": [");
        for (i, j) in self.battery_used_j.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{j:?}");
        }
        out.push(']');

        out.push_str(", \"cache\": [");
        for (i, slot) in self.cache.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_slot(&mut out, slot);
        }
        out.push(']');

        out.push_str(", \"quarantine\": [");
        for (i, (cam, alg, strikes, until)) in self.quarantine.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{cam}, \"{alg}\", {strikes}, {until}]");
        }
        out.push_str("]}");
        out
    }

    /// Parses a checkpoint back from JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem — malformed
    /// JSON, a wrong schema tag, or a missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<SimulationCheckpoint, String> {
        let doc = jsonio::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let round = get_usize(&doc, "round")?;
        let epoch = get_usize(&doc, "epoch")? as u64;

        let mut assignment = BTreeMap::new();
        for pair in get_arr(&doc, "assignment")? {
            let items = pair.as_arr().ok_or("assignment entry must be an array")?;
            let (cam, alg) = match items {
                [cam, alg] => (as_usize(cam)?, as_algorithm(alg)?),
                _ => return Err("assignment entry must be [camera, algorithm]".into()),
            };
            assignment.insert(cam, alg);
        }

        let active = get_arr(&doc, "active")?
            .iter()
            .map(as_usize)
            .collect::<Result<Vec<_>, _>>()?;

        let battery_used_j = get_arr(&doc, "battery_used_j")?
            .iter()
            .map(|v| {
                v.as_num()
                    .ok_or_else(|| "battery entry must be a number".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;

        let cache = get_arr(&doc, "cache")?
            .iter()
            .map(parse_slot)
            .collect::<Result<Vec<_>, _>>()?;

        let mut quarantine = Vec::new();
        for entry in get_arr(&doc, "quarantine")? {
            let items = entry.as_arr().ok_or("quarantine entry must be an array")?;
            match items {
                [cam, alg, strikes, until] => quarantine.push((
                    as_usize(cam)?,
                    as_algorithm(alg)?,
                    as_usize(strikes)? as u32,
                    as_usize(until)?,
                )),
                _ => {
                    return Err(
                        "quarantine entry must be [camera, algorithm, strikes, round]".into(),
                    )
                }
            }
        }

        Ok(SimulationCheckpoint {
            round,
            epoch,
            assignment,
            active,
            battery_used_j,
            cache,
            quarantine,
        })
    }
}

fn write_slot(out: &mut String, slot: &CacheSlot) {
    out.push('{');
    let _ = write!(out, "\"epoch\": {}, ", slot.epoch);
    match slot.heard {
        Some(r) => {
            let _ = write!(out, "\"heard\": {r}");
        }
        None => out.push_str("\"heard\": null"),
    }
    out.push_str(", \"entry\": ");
    match &slot.entry {
        None => out.push_str("null"),
        Some((round, reports)) => {
            let _ = write!(out, "{{\"round\": {round}, \"reports\": [");
            for (i, (alg, series)) in reports.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[\"{alg}\", [");
                for (k, report) in series.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    write_report(out, report);
                }
                out.push_str("]]");
            }
            out.push_str("]}");
        }
    }
    out.push('}');
}

fn write_report(out: &mut String, report: &CameraReport) {
    out.push_str("{\"objects\": [");
    for (i, o) in report.objects.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"camera\": {}, \"bbox\": [{:?}, {:?}, {:?}, {:?}], \"probability\": {:?}, \"color\": [",
            o.camera, o.bbox.x0, o.bbox.y0, o.bbox.x1, o.bbox.y1, o.probability
        );
        for (k, c) in o.color.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{c:?}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn parse_slot(v: &Json) -> Result<CacheSlot, String> {
    let epoch = get_usize(v, "epoch")? as u64;
    let heard = match v.get("heard") {
        Some(Json::Null) | None => None,
        Some(n) => Some(as_usize(n)?),
    };
    let entry = match v.get("entry") {
        Some(Json::Null) | None => None,
        Some(e) => {
            let round = get_usize(e, "round")?;
            let mut reports: CameraAssessment = BTreeMap::new();
            for pair in get_arr(e, "reports")? {
                let items = pair.as_arr().ok_or("reports entry must be an array")?;
                let (alg, series) = match items {
                    [alg, series] => (as_algorithm(alg)?, series),
                    _ => return Err("reports entry must be [algorithm, series]".into()),
                };
                let series = series
                    .as_arr()
                    .ok_or("report series must be an array")?
                    .iter()
                    .map(parse_report)
                    .collect::<Result<Vec<_>, _>>()?;
                reports.insert(alg, series);
            }
            Some((round, reports))
        }
    };
    Ok(CacheSlot {
        epoch,
        heard,
        entry,
    })
}

fn parse_report(v: &Json) -> Result<CameraReport, String> {
    let mut objects = Vec::new();
    for o in get_arr(v, "objects")? {
        let camera = get_usize(o, "camera")?;
        let bbox = o
            .get("bbox")
            .and_then(Json::as_arr)
            .ok_or("object missing \"bbox\"")?;
        let bbox = match bbox {
            [x0, y0, x1, y1] => BBox {
                x0: as_f64(x0)?,
                y0: as_f64(y0)?,
                x1: as_f64(x1)?,
                y1: as_f64(y1)?,
            },
            _ => return Err("bbox must be [x0, y0, x1, y1]".into()),
        };
        let probability = o
            .get("probability")
            .and_then(Json::as_num)
            .ok_or("object missing \"probability\"")?;
        let color = o
            .get("color")
            .and_then(Json::as_arr)
            .ok_or("object missing \"color\"")?
            .iter()
            .map(as_f64)
            .collect::<Result<Vec<_>, _>>()?;
        objects.push(ObjectMetadata {
            camera,
            bbox,
            probability,
            color,
        });
    }
    Ok(CameraReport { objects })
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing \"{key}\" array"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    v.get(key)
        .ok_or_else(|| format!("missing \"{key}\""))
        .and_then(as_usize)
}

fn as_usize(v: &Json) -> Result<usize, String> {
    let n = v.as_num().ok_or("expected a number")?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("expected a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

fn as_f64(v: &Json) -> Result<f64, String> {
    v.as_num().ok_or_else(|| "expected a number".to_string())
}

fn as_algorithm(v: &Json) -> Result<AlgorithmId, String> {
    v.as_str().ok_or("expected an algorithm name")?.parse()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimulationCheckpoint {
        let report = CameraReport {
            objects: vec![ObjectMetadata {
                camera: 1,
                bbox: BBox::new(3.25, 4.5, 10.125, 30.75),
                probability: 1.0 / 3.0,
                color: vec![0.1, 0.2, 1.0 / 7.0],
            }],
        };
        let mut reports: CameraAssessment = BTreeMap::new();
        reports.insert(
            AlgorithmId::Hog,
            vec![report.clone(), CameraReport::default()],
        );
        reports.insert(AlgorithmId::C4, vec![report]);
        SimulationCheckpoint {
            round: 7,
            epoch: 3,
            assignment: [(0, AlgorithmId::Hog), (2, AlgorithmId::Lsvm)].into(),
            active: vec![0, 2],
            battery_used_j: vec![1.5, 0.1 + 0.2, 0.0],
            cache: vec![
                CacheSlot {
                    epoch: 2,
                    heard: Some(7),
                    entry: Some((6, reports)),
                },
                CacheSlot::default(),
                CacheSlot {
                    epoch: 3,
                    heard: Some(5),
                    entry: None,
                },
            ],
            quarantine: vec![(1, AlgorithmId::Acf, 2, 9)],
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let ckpt = sample();
        let restored = SimulationCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(restored, ckpt);
        // The f64 ledger must survive bit-for-bit, not just approximately.
        for (a, b) in ckpt.battery_used_j.iter().zip(&restored.battery_used_j) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (pa, pb) = (
            &ckpt.cache[0].entry.as_ref().unwrap().1[&AlgorithmId::Hog][0].objects[0],
            &restored.cache[0].entry.as_ref().unwrap().1[&AlgorithmId::Hog][0].objects[0],
        );
        assert_eq!(pa.probability.to_bits(), pb.probability.to_bits());
        assert_eq!(pa.bbox.x1.to_bits(), pb.bbox.x1.to_bits());
    }

    #[test]
    fn initial_checkpoint_is_empty() {
        let ckpt = SimulationCheckpoint::initial(3);
        assert_eq!(ckpt.round, 0);
        assert_eq!(ckpt.epoch, 0);
        assert!(ckpt.assignment.is_empty() && ckpt.active.is_empty());
        assert_eq!(ckpt.battery_used_j, vec![0.0; 3]);
        assert_eq!(ckpt.cache.len(), 3);
        let restored = SimulationCheckpoint::from_json(&ckpt.to_json()).unwrap();
        assert_eq!(restored, ckpt);
    }

    #[test]
    fn cache_capture_and_restore_round_trip() {
        let mut cache = AssessmentCache::new(2);
        let reports: CameraAssessment = [(AlgorithmId::Acf, Vec::new())].into();
        cache.record(0, 4, reports.clone());
        cache.mark_heard(1, 2);
        let ckpt = SimulationCheckpoint {
            cache: SimulationCheckpoint::capture_cache(&cache, 2),
            ..SimulationCheckpoint::initial(2)
        };
        let restored = ckpt.restore_cache();
        assert_eq!(restored.entry(0), Some((4, &reports)));
        assert!(restored.heard_in(1, 2));
        assert!(restored.entry(1).is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(SimulationCheckpoint::from_json("{").is_err());
        assert!(SimulationCheckpoint::from_json("{}").is_err());
        let wrong_schema = sample().to_json().replace(SCHEMA, "other/1");
        assert!(SimulationCheckpoint::from_json(&wrong_schema).is_err());
        let bad_alg = sample().to_json().replace("LSVM", "YOLO");
        assert!(SimulationCheckpoint::from_json(&bad_alg).is_err());
    }
}
