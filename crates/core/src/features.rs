//! Per-frame video-comparison features.
//!
//! Section V-A: each uploaded key frame is represented by HOG features plus
//! a bag-of-words histogram of SURF keypoints (4180-d in the paper). Our
//! compact equivalent concatenates a pooled HOG (4×4 grid × 9 bins), the
//! BoW histogram over Hessian keypoints, and a coarse color histogram —
//! non-negative, scene-characteristic, and small enough that the Grassmann
//! pipeline runs in milliseconds (the GFK implementation itself supports
//! the full 4180-d; see `eecs-manifold`).

use crate::{EecsError, Result};
use eecs_manifold::video::VideoItem;
use eecs_vision::bow::BowVocabulary;
use eecs_vision::color::color_histogram;
use eecs_vision::hog::pooled_hog;
use eecs_vision::image::RgbImage;
use eecs_vision::keypoint::KeypointConfig;

/// Pooled-HOG grid (x, y) and orientation bins.
const HOG_GRID: (usize, usize, usize) = (4, 4, 9);
/// Color histogram bins per channel.
const COLOR_BINS: usize = 4;

/// Global feature gain. The components are L1-normalized histograms whose
/// entries are ~1/dim; the gain lifts squared kernel distances into a
/// range where `Sim = e^{-M_d}` (Eq. 5) is discriminative (the paper's raw
/// HOG+BoW features had this magnitude naturally).
const FEATURE_GAIN: f64 = 4.0;

/// Extracts the compact per-frame feature vector for video comparison.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    bow: BowVocabulary,
}

impl FeatureExtractor {
    /// Builds the extractor, training the visual-word vocabulary on sample
    /// frames from the training feeds (the paper builds 400 words from 12
    /// feeds; `words` is configurable).
    ///
    /// # Errors
    ///
    /// Propagates vocabulary construction failures (no keypoints, too many
    /// words).
    pub fn build(
        training_frames: &[RgbImage],
        words: usize,
        seed: u64,
    ) -> Result<FeatureExtractor> {
        let grays: Vec<_> = training_frames.iter().map(|f| f.to_gray()).collect();
        let bow = BowVocabulary::build(&grays, words, KeypointConfig::default(), seed)
            .map_err(|e| EecsError::Subsystem(format!("bow vocabulary: {e}")))?;
        Ok(FeatureExtractor { bow })
    }

    /// Total feature dimension `α`.
    pub fn feature_dim(&self) -> usize {
        let (gx, gy, bins) = HOG_GRID;
        gx * gy * bins + self.bow.words() + COLOR_BINS.pow(3)
    }

    /// Extracts one frame's feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::Subsystem`] for frames too small to featurize.
    pub fn extract_frame(&self, frame: &RgbImage) -> Result<Vec<f64>> {
        let gray = frame.to_gray();
        let (gx, gy, bins) = HOG_GRID;
        let mut out = pooled_hog(&gray, gx, gy, bins)
            .map_err(|e| EecsError::Subsystem(format!("pooled hog: {e}")))?;
        out.extend(self.bow.represent(&gray));
        out.extend(
            color_histogram(frame, COLOR_BINS)
                .map_err(|e| EecsError::Subsystem(format!("color histogram: {e}")))?,
        );
        for v in &mut out {
            *v *= FEATURE_GAIN;
        }
        Ok(out)
    }

    /// Extracts a [`VideoItem`] from a set of key frames.
    ///
    /// # Errors
    ///
    /// Propagates frame-extraction failures; requires at least 2 frames.
    pub fn extract_video(&self, name: impl Into<String>, frames: &[RgbImage]) -> Result<VideoItem> {
        let features: Vec<Vec<f64>> = frames
            .iter()
            .map(|f| self.extract_frame(f))
            .collect::<Result<_>>()?;
        VideoItem::from_frames(name, &features)
            .map_err(|e| EecsError::Subsystem(format!("video item: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_scene::dataset::{DatasetId, DatasetProfile};
    use eecs_scene::sequence::VideoFeed;

    fn sample_frames(n: usize) -> Vec<RgbImage> {
        let feed = VideoFeed::open(DatasetProfile::miniature(DatasetId::Lab), 0);
        feed.frames(0, n * 5, 5)
            .into_iter()
            .map(|f| f.image)
            .collect()
    }

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::build(&sample_frames(4), 16, 1).unwrap()
    }

    #[test]
    fn feature_dim_is_consistent() {
        let ex = extractor();
        let frames = sample_frames(2);
        let f = ex.extract_frame(&frames[0]).unwrap();
        assert_eq!(f.len(), ex.feature_dim());
        assert_eq!(ex.feature_dim(), 144 + 16 + 64);
    }

    #[test]
    fn features_nonnegative() {
        let ex = extractor();
        let f = ex.extract_frame(&sample_frames(1)[0]).unwrap();
        assert!(f.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn video_item_has_frame_rows() {
        let ex = extractor();
        let frames = sample_frames(5);
        let item = ex.extract_video("V_test", &frames).unwrap();
        assert_eq!(item.num_frames(), 5);
        assert_eq!(item.feature_dim(), ex.feature_dim());
        assert_eq!(item.name(), "V_test");
    }

    #[test]
    fn same_feed_same_features() {
        let ex = extractor();
        let frames = sample_frames(2);
        assert_eq!(
            ex.extract_frame(&frames[0]).unwrap(),
            ex.extract_frame(&frames[0]).unwrap()
        );
    }

    #[test]
    fn single_frame_video_rejected() {
        let ex = extractor();
        let frames = sample_frames(1);
        assert!(ex.extract_video("v", &frames).is_err());
    }
}
