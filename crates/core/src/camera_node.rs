//! A camera sensor node.
//!
//! Owns the four-detector bank, a battery, a per-frame energy budget and
//! the controller-assigned algorithm. Produces [`CameraReport`]s: for each
//! detection above the environment's threshold `d_t`, the bounding box, the
//! calibrated probability `P_ij` and the 40-d mean-color feature
//! (Section V-A).

use crate::metadata::{CameraReport, ObjectMetadata};
use crate::profile::AlgorithmProfile;
use crate::{EecsError, Result};
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::{AlgorithmId, DetectionOutput};
use eecs_energy::budget::{BatteryState, EnergyBudget};
use eecs_energy::meter::{EnergyCategory, PowerMeter};
use eecs_energy::model::DeviceEnergyModel;
use eecs_vision::color::mean_color_feature;
use eecs_vision::image::RgbImage;

/// One battery-operated camera sensor.
#[derive(Debug, Clone)]
pub struct CameraNode {
    index: usize,
    bank: DetectorBank,
    battery: BatteryState,
    budget: EnergyBudget,
    assigned: Option<AlgorithmId>,
    meter: PowerMeter,
}

impl CameraNode {
    /// Creates a node.
    pub fn new(
        index: usize,
        bank: DetectorBank,
        battery: BatteryState,
        budget: EnergyBudget,
    ) -> CameraNode {
        CameraNode {
            index,
            bank,
            battery,
            budget,
            assigned: None,
            meter: PowerMeter::new(),
        }
    }

    /// This camera's index `j`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Current battery state.
    pub fn battery(&self) -> &BatteryState {
        &self.battery
    }

    /// The per-frame budget `B_j`.
    pub fn budget(&self) -> &EnergyBudget {
        &self.budget
    }

    /// Accumulated energy meter.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Mutable access to the battery and meter together, for transports
    /// that charge the radio per attempt
    /// ([`eecs_net::Network::send_reliable`]).
    pub fn radio_mut(&mut self) -> (&mut BatteryState, &mut PowerMeter) {
        (&mut self.battery, &mut self.meter)
    }

    /// The controller-assigned algorithm, if the camera is active.
    pub fn assigned(&self) -> Option<AlgorithmId> {
        self.assigned
    }

    /// Whether this camera is currently activated.
    pub fn is_active(&self) -> bool {
        self.assigned.is_some()
    }

    /// Applies a controller command: `Some(algorithm)` activates with that
    /// algorithm, `None` deactivates.
    pub fn set_assignment(&mut self, assignment: Option<AlgorithmId>) {
        self.assigned = assignment;
    }

    /// Runs `algorithm` on a frame under the environment `profile`
    /// (threshold + calibration), charging the battery for the processing
    /// energy and returning the metadata report.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::Subsystem`] when the battery cannot cover the
    /// processing cost (the frame is skipped and nothing is charged).
    pub fn run_algorithm(
        &mut self,
        algorithm: AlgorithmId,
        frame: &RgbImage,
        profile: &AlgorithmProfile,
        device: &DeviceEnergyModel,
    ) -> Result<CameraReport> {
        let output = self.bank.detector(algorithm).detect(frame);
        self.ingest_detection(frame, output, profile, device)
    }

    /// The stateful half of [`CameraNode::run_algorithm`]: charges the
    /// battery for a detection `output` (computed by this node's bank on
    /// `frame`, possibly on another thread) and turns it into a metadata
    /// report. Splitting detection from ingestion lets the simulator
    /// precompute the pure detection work in parallel and apply the
    /// battery/meter effects serially, in deterministic order.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::Subsystem`] when the battery cannot cover the
    /// processing cost (the frame is skipped and nothing is charged).
    pub fn ingest_detection(
        &mut self,
        frame: &RgbImage,
        output: DetectionOutput,
        profile: &AlgorithmProfile,
        device: &DeviceEnergyModel,
    ) -> Result<CameraReport> {
        let energy = device.processing_energy(output.ops);
        self.battery
            .drain(energy)
            .map_err(|e| EecsError::Subsystem(format!("camera {}: {e}", self.index)))?;
        self.meter.record(EnergyCategory::Processing, energy);

        let mut objects = Vec::new();
        for det in output
            .detections
            .iter()
            .filter(|d| d.score >= profile.threshold)
        {
            let color = region_color(frame, det.bbox.x0, det.bbox.y0, det.bbox.x1, det.bbox.y1);
            objects.push(ObjectMetadata {
                camera: self.index,
                bbox: det.bbox,
                probability: profile.calibration.probability(det.score),
                color,
            });
        }
        Ok(CameraReport { objects })
    }

    /// Charges a radio transmission of `bytes` against the battery.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::Subsystem`] on battery exhaustion.
    pub fn charge_transmission(
        &mut self,
        bytes: u64,
        device: &DeviceEnergyModel,
        link: &eecs_energy::comm::LinkModel,
    ) -> Result<()> {
        let energy = link.transmit_energy(bytes, device);
        self.battery
            .drain(energy)
            .map_err(|e| EecsError::Subsystem(format!("camera {}: {e}", self.index)))?;
        self.meter.record(EnergyCategory::Communication, energy);
        Ok(())
    }
}

/// The mean-color feature of a bounding box clipped to the frame; a zeroed
/// feature when the clipped region is degenerate.
fn region_color(frame: &RgbImage, x0: f64, y0: f64, x1: f64, y1: f64) -> Vec<f64> {
    let cx0 = x0.max(0.0) as usize;
    let cy0 = y0.max(0.0) as usize;
    let cx1 = (x1.min(frame.width() as f64) as usize).min(frame.width());
    let cy1 = (y1.min(frame.height() as f64) as usize).min(frame.height());
    if cx1 <= cx0 + 1 || cy1 <= cy0 + 1 {
        return vec![0.0; eecs_vision::color::MEAN_COLOR_DIM];
    }
    mean_color_feature(frame, cx0, cy0, cx1 - cx0, cy1 - cy0)
        .unwrap_or_else(|_| vec![0.0; eecs_vision::color::MEAN_COLOR_DIM])
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_detect::probability::ScoreCalibration;
    use eecs_vision::draw;

    fn node() -> CameraNode {
        CameraNode::new(
            2,
            DetectorBank::train_quick(3).unwrap(),
            BatteryState::new(1000.0).unwrap(),
            EnergyBudget::per_frame(2.0).unwrap(),
        )
    }

    fn profile(threshold: f64) -> AlgorithmProfile {
        AlgorithmProfile {
            algorithm: AlgorithmId::Acf,
            threshold,
            recall: 0.8,
            precision: 0.9,
            f_score: 0.85,
            energy_per_frame_j: 0.1,
            processing_time_s: 0.1,
            calibration: ScoreCalibration::from_parts(2.0, 0.0),
        }
    }

    fn frame_with_person() -> RgbImage {
        let mut img = RgbImage::new(160, 120);
        draw::vertical_gradient(&mut img, [0.6, 0.6, 0.58], [0.35, 0.35, 0.33]);
        draw::draw_human(
            &mut img,
            70.0,
            40.0,
            90.0,
            110.0,
            [0.8, 0.1, 0.1],
            [0.85, 0.65, 0.5],
        );
        img
    }

    #[test]
    fn run_charges_battery_and_reports() {
        let mut n = node();
        let before = n.battery().residual();
        let report = n
            .run_algorithm(
                AlgorithmId::Acf,
                &frame_with_person(),
                &profile(-10.0),
                &DeviceEnergyModel::default(),
            )
            .unwrap();
        assert!(n.battery().residual() < before);
        assert!(n.meter().by_category(EnergyCategory::Processing) > 0.0);
        // Threshold −10 keeps every candidate: report mirrors detections.
        for obj in &report.objects {
            assert_eq!(obj.camera, 2);
            assert!((0.0..=1.0).contains(&obj.probability));
            assert_eq!(obj.color.len(), eecs_vision::color::MEAN_COLOR_DIM);
        }
    }

    #[test]
    fn threshold_filters_detections() {
        let mut n = node();
        let low = n
            .run_algorithm(
                AlgorithmId::Acf,
                &frame_with_person(),
                &profile(-10.0),
                &DeviceEnergyModel::default(),
            )
            .unwrap();
        let high = n
            .run_algorithm(
                AlgorithmId::Acf,
                &frame_with_person(),
                &profile(1e9),
                &DeviceEnergyModel::default(),
            )
            .unwrap();
        assert!(high.len() <= low.len());
        assert!(high.is_empty());
    }

    #[test]
    fn dead_battery_skips_frame_atomically() {
        let mut n = CameraNode::new(
            0,
            DetectorBank::train_quick(4).unwrap(),
            BatteryState::new(1e-9).unwrap(),
            EnergyBudget::per_frame(1.0).unwrap(),
        );
        let err = n.run_algorithm(
            AlgorithmId::Acf,
            &frame_with_person(),
            &profile(0.0),
            &DeviceEnergyModel::default(),
        );
        assert!(err.is_err());
        assert_eq!(n.meter().total(), 0.0);
    }

    #[test]
    fn assignment_lifecycle() {
        let mut n = node();
        assert!(!n.is_active());
        n.set_assignment(Some(AlgorithmId::Hog));
        assert!(n.is_active());
        assert_eq!(n.assigned(), Some(AlgorithmId::Hog));
        n.set_assignment(None);
        assert!(!n.is_active());
    }

    #[test]
    fn transmission_charged_to_communication() {
        let mut n = node();
        n.charge_transmission(
            1000,
            &DeviceEnergyModel::default(),
            &eecs_energy::comm::LinkModel::default(),
        )
        .unwrap();
        assert!(n.meter().by_category(EnergyCategory::Communication) > 0.0);
    }
}
