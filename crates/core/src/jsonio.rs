//! Minimal hand-rolled JSON: a writer escape helper, a value tree, and a
//! parser covering the subset of RFC 8259 this workspace emits.
//!
//! The build environment is offline (no serde), so both serializers in
//! the workspace share this module: the benchmark report writer in
//! `eecs_bench::report` (which re-exports these types for compatibility)
//! and the controller checkpoint in [`crate::checkpoint`]. Numbers are
//! written with `{:?}` — Rust's shortest round-trip formatting — so an
//! `f64` survives serialize → parse bit-for-bit, which the checkpoint's
//! replay guarantees depend on.

use std::fmt::Write as _;

/// Appends `s` to `out` with JSON string escaping applied.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl Json {
    /// Serializes this value back to JSON text.
    ///
    /// Numbers that are integral (and representable exactly as `i64`)
    /// print without a fractional part; everything else uses `{:?}`,
    /// Rust's shortest round-trip formatting. Either way
    /// `parse(&v.write()?)` restores every `f64` bit-for-bit — including
    /// `-0.0`, which keeps its sign and its `-0.0` spelling.
    ///
    /// # Errors
    ///
    /// Returns an error on NaN or infinite numbers, which JSON cannot
    /// represent; nothing in this module ever panics on data.
    pub fn write(&self) -> Result<String, String> {
        let mut out = String::new();
        self.write_into(&mut out)?;
        Ok(out)
    }

    /// Appends this value's JSON text to `out`. Same contract as
    /// [`Json::write`].
    ///
    /// # Errors
    ///
    /// Returns an error on NaN or infinite numbers; `out` may then hold a
    /// partial document and should be discarded.
    pub fn write_into(&self, out: &mut String) -> Result<(), String> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out)?,
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out)?;
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, key);
                    out.push_str("\":");
                    value.write_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// Largest `f64` below which every integral value is exactly one integer
/// (2^53); above it the `{:?}` spelling is already canonical.
const EXACT_INT_LIMIT: f64 = 9_007_199_254_740_992.0;

fn write_num(n: f64, out: &mut String) -> Result<(), String> {
    if !n.is_finite() {
        return Err(format!("JSON cannot represent non-finite number {n}"));
    }
    // `-0.0` must keep the `{:?}` spelling: printing it as the integer
    // `0` would drop the sign bit on the way back in.
    if n.fract() == 0.0 && n.abs() < EXACT_INT_LIMIT && !(n == 0.0 && n.is_sign_negative()) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input or trailing
/// content.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_nesting_escapes_and_numbers() {
        let v = parse(r#"{"a": [1, -2.5e3, "x\"y\n", null, true], "b": {}}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x\"y\n"));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4], Json::Bool(true));
        assert_eq!(v.get("b"), Some(&Json::Obj(Vec::new())));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn escape_into_round_trips_through_the_parser() {
        let nasty = "weird \"quoted\"\tname\\path\nwith\u{1}ctrl";
        let mut doc = String::from("\"");
        escape_into(&mut doc, nasty);
        doc.push('"');
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn writer_round_trips_every_shape() {
        let doc = r#"{"a":[1,-2500,"x\"y\n",null,true],"b":{},"c":-0.0,"d":0.125}"#;
        let v = parse(doc).unwrap();
        let text = v.write().unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        // Encode → decode → encode is a fixed point.
        assert_eq!(parse(&text).unwrap().write().unwrap(), text);
    }

    #[test]
    fn writer_keeps_negative_zero_and_subnormals() {
        for v in [-0.0f64, 5e-324, f64::MIN_POSITIVE, -f64::MIN_POSITIVE] {
            let text = Json::Num(v).write().unwrap();
            let back = parse(&text).unwrap().as_num().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn writer_prints_integral_values_without_fraction() {
        assert_eq!(Json::Num(42.0).write().unwrap(), "42");
        assert_eq!(Json::Num(-7.0).write().unwrap(), "-7");
        assert_eq!(Json::Num(0.0).write().unwrap(), "0");
        assert_eq!(Json::Num(-0.0).write().unwrap(), "-0.0");
    }

    #[test]
    fn writer_rejects_non_finite_numbers() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Json::Num(v).write().is_err(), "{v} must be rejected");
            // A nested non-finite number poisons the whole document.
            assert!(Json::Arr(vec![Json::Num(1.0), Json::Num(v)])
                .write()
                .is_err());
        }
    }

    #[test]
    fn f64_debug_format_survives_bit_exactly() {
        for v in [0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456789, -0.0] {
            let text = format!("{v:?}");
            let back = parse(&text).unwrap().as_num().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }
}
