//! A deterministic metrics registry: named counters, gauges and
//! fixed-bucket histograms.
//!
//! Everything here is engineered for bit-stable output: counters and
//! histogram buckets are integers, gauges carry the exact `f64` the
//! publisher handed in, and every dump iterates `BTreeMap`s — so two runs
//! that perform the same operations in the same order produce
//! byte-identical JSON, which is what the golden-master suite in
//! `tests/golden_report.rs` compares against.

use crate::jsonio::Json;
use std::collections::BTreeMap;

/// A fixed-bucket histogram with integer counts.
///
/// `bounds` are inclusive upper bounds in ascending order; one extra
/// overflow bucket catches everything above the last bound. Values are
/// only ever *counted*, never summed as floats, so the dump is bit-stable
/// by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram over the given ascending, finite bucket bounds.
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        debug_assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Counts `value` into its bucket (NaN lands in the overflow bucket).
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The inclusive upper bounds the buckets were built with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "bounds".into(),
                Json::Arr(self.bounds.iter().map(|&b| Json::Num(b)).collect()),
            ),
            (
                "counts".into(),
                Json::Arr(self.counts.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
        ])
    }
}

/// Named counters, gauges and histograms, dumped in sorted-key order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// The counter's current value (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The gauge's current value, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Counts `value` into the named histogram, creating it with `bounds`
    /// on first use. Later calls ignore `bounds` — a metric's buckets are
    /// fixed for the life of the registry.
    pub fn histogram_record(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// The named histogram, if anything was recorded into it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing at all has been published.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Number of (counter, gauge, histogram) entries.
    pub fn sizes(&self) -> (usize, usize, usize) {
        (
            self.counters.len(),
            self.gauges.len(),
            self.histograms.len(),
        )
    }

    /// Iterates counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The whole registry as a JSON value tree (sorted keys throughout).
    pub fn to_json_value(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
        ])
    }

    /// The whole registry as a JSON document.
    ///
    /// # Errors
    ///
    /// Returns an error if a gauge holds a non-finite value (JSON cannot
    /// represent it).
    pub fn to_json(&self) -> Result<String, String> {
        self.to_json_value().write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.counter_add("x", 2);
        m.counter_add("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.gauge("g"), None);
        m.gauge_set("g", 1.5);
        m.gauge_set("g", -0.25);
        assert_eq!(m.gauge("g"), Some(-0.25));
    }

    #[test]
    fn histogram_buckets_are_inclusive_with_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        for v in [0.0, 1.0, 1.5, 2.0, 4.9, 5.0, 5.1, 100.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn dump_is_sorted_and_deterministic() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        // Same operations, different insertion order.
        a.counter_add("zulu", 1);
        a.counter_add("alpha", 2);
        a.gauge_set("g", 0.5);
        b.gauge_set("g", 0.5);
        b.counter_add("alpha", 2);
        b.counter_add("zulu", 1);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
        let text = a.to_json().unwrap();
        assert!(text.find("alpha").unwrap() < text.find("zulu").unwrap());
    }

    #[test]
    fn dump_parses_back_through_jsonio() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", 7);
        m.gauge_set("g", 0.1);
        m.histogram_record("h", &[1.0, 10.0], 3.0);
        let v = crate::jsonio::parse(&m.to_json().unwrap()).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Json::as_num),
            Some(7.0)
        );
        let h = v.get("histograms").and_then(|h| h.get("h")).unwrap();
        assert_eq!(h.get("counts").and_then(Json::as_arr).unwrap().len(), 3);
    }
}
