//! Deterministic observability: metrics, structured tracing, and sinks.
//!
//! The paper's evaluation lives on quantities (per-algorithm Joules,
//! detection counts, retransmissions) that PR 1–3 scattered across
//! `SimulationReport` fields and ad-hoc prints. This module gives every
//! layer of the hot path one uniform place to publish them:
//!
//! * [`MetricsRegistry`] — named counters/gauges/histograms with
//!   bit-stable, sorted-key JSON dumps;
//! * [`TraceEvent`] + [`FlightRecorder`] — a bounded structured event
//!   stream with round/camera scoping, dumpable in full or as a
//!   "last N rounds before the failure" slice;
//! * [`Telemetry`] — the shared handle threaded through
//!   [`crate::config::EecsConfig`]. [`TelemetrySink::Null`] (the default)
//!   carries no state at all: every publish call branches on one
//!   `Option` and returns, so ideal-plan reports stay bit-identical and
//!   benchmarks don't move.
//!
//! Everything is emitted from the simulation's *serial* effect-replay
//! path, so — like battery drains and transport interactions — the
//! stream and the registry are bit-identical across
//! [`crate::simulation::Parallelism`] settings.

pub mod metrics;
pub mod summary;
pub mod trace;

pub use metrics::{Histogram, MetricsRegistry};
pub use trace::{FlightRecorder, TraceEvent};

use crate::jsonio::Json;
use eecs_energy::meter::PowerMeter;
use eecs_net::reliable::Delivery;
use eecs_net::transport::TransportStats;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default [`FlightRecorder`] capacity (events, not rounds) when a sink
/// doesn't specify one.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Where telemetry goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetrySink {
    /// Record nothing. Every publish call is a branch on a `None` and
    /// nothing else — reports stay bit-identical to a build without the
    /// telemetry layer.
    Null,
    /// Record into an in-memory [`MetricsRegistry`] + [`FlightRecorder`].
    Memory {
        /// Ring-buffer capacity of the flight recorder, in events.
        trace_capacity: usize,
    },
}

#[derive(Debug)]
struct TelemetryState {
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
}

/// The shared telemetry handle threaded through `EecsConfig`.
///
/// Cloning is cheap and clones *share* the recording state (it is an
/// `Arc`), which is what lets the `Simulation`, its `Controller` copy of
/// the config, and the caller all see one stream. Equality compares the
/// sink configuration only — two handles are equal when they would record
/// the same way — so `EecsConfig`'s derived `PartialEq` keeps meaning
/// "same configuration", not "same recorded history".
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<TelemetryState>>>,
    trace_capacity: usize,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::null()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("sink", &self.sink())
            .finish()
    }
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        self.sink() == other.sink()
    }
}

impl Telemetry {
    /// The no-op handle: records nothing, costs one branch per call.
    pub fn null() -> Telemetry {
        Telemetry {
            inner: None,
            trace_capacity: 0,
        }
    }

    /// A recording handle with the given flight-recorder capacity.
    pub fn recording(trace_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(TelemetryState {
                metrics: MetricsRegistry::new(),
                recorder: FlightRecorder::new(trace_capacity),
            }))),
            trace_capacity: trace_capacity.max(1),
        }
    }

    /// A handle for the given sink.
    pub fn new(sink: TelemetrySink) -> Telemetry {
        match sink {
            TelemetrySink::Null => Telemetry::null(),
            TelemetrySink::Memory { trace_capacity } => Telemetry::recording(trace_capacity),
        }
    }

    /// The sink this handle was built for.
    pub fn sink(&self) -> TelemetrySink {
        if self.inner.is_some() {
            TelemetrySink::Memory {
                trace_capacity: self.trace_capacity,
            }
        } else {
            TelemetrySink::Null
        }
    }

    /// Whether publishes are recorded at all. Instrumentation sites use
    /// this to skip building metric names on the null sink.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with(&self, f: impl FnOnce(&mut TelemetryState)) {
        if let Some(inner) = &self.inner {
            f(&mut inner.lock().expect("telemetry lock"));
        }
    }

    /// Records one trace event. The closure only runs when recording, so
    /// null-sink call sites pay nothing for constructing the event.
    pub fn event(&self, make: impl FnOnce() -> TraceEvent) {
        self.with(|s| s.recorder.record(make()));
    }

    /// Adds `delta` to a named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|s| s.metrics.counter_add(name, delta));
    }

    /// Sets a named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with(|s| s.metrics.gauge_set(name, value));
    }

    /// Counts `value` into a named histogram (created with `bounds` on
    /// first use).
    pub fn histogram_record(&self, name: &str, bounds: &[f64], value: f64) {
        self.with(|s| s.metrics.histogram_record(name, bounds, value));
    }

    /// Publishes one reliable-transport delivery: attempt/retry counters,
    /// a [`TraceEvent::Retransmit`] when it took more than one try, and a
    /// [`TraceEvent::CorruptFrame`] when any attempt arrived corrupted.
    pub fn observe_delivery(&self, round: usize, camera: usize, d: &Delivery) {
        self.with(|s| {
            s.metrics.counter_add("net.attempts", u64::from(d.attempts));
            if d.attempts > 1 {
                s.metrics
                    .counter_add("net.retransmits", u64::from(d.attempts - 1));
                s.recorder.record(TraceEvent::Retransmit {
                    round,
                    camera,
                    attempts: d.attempts,
                });
            }
            if d.corrupted > 0 {
                s.metrics
                    .counter_add("transport.corrupted", u64::from(d.corrupted));
                s.recorder.record(TraceEvent::CorruptFrame {
                    round,
                    camera,
                    corrupted: d.corrupted,
                });
            }
            if !d.delivered {
                s.metrics.counter_add("net.undelivered", 1);
            }
        });
    }

    /// Scrapes one [`TransportStats`] into `scope.`-prefixed counters and
    /// gauges (e.g. `transport.cam0.attempts`).
    pub fn observe_transport(&self, scope: &str, stats: &TransportStats) {
        self.with(|s| {
            for (field, value) in stats.counter_fields() {
                s.metrics.counter_add(&format!("{scope}.{field}"), value);
            }
            for (field, value) in stats.gauge_fields() {
                s.metrics.gauge_set(&format!("{scope}.{field}"), value);
            }
        });
    }

    /// Scrapes one [`PowerMeter`] into `scope.`-prefixed gauges, one per
    /// [`eecs_energy::meter::EnergyCategory`] plus the total (e.g. `camera.0.energy.total_j`).
    pub fn observe_meter(&self, scope: &str, meter: &PowerMeter) {
        self.with(|s| {
            for (category, joules) in meter.snapshot() {
                s.metrics
                    .gauge_set(&format!("{scope}.energy.{category}_j"), joules);
            }
            s.metrics
                .gauge_set(&format!("{scope}.energy.total_j"), meter.total());
        });
    }

    /// Clears all recorded state (the sink configuration is kept). Null
    /// handles are unaffected.
    pub fn reset(&self) {
        let capacity = self.trace_capacity;
        self.with(|s| {
            s.metrics = MetricsRegistry::new();
            s.recorder = FlightRecorder::new(capacity);
        });
    }

    /// A copy of the current metrics (empty on the null sink).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        self.with(|s| out = s.metrics.clone());
        out
    }

    /// A copy of the retained trace events (empty on the null sink).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.with(|s| out = s.recorder.events().cloned().collect());
        out
    }

    /// Events falling off the recorder's ring buffer so far.
    pub fn trace_evicted(&self) -> u64 {
        let mut out = 0;
        self.with(|s| out = s.recorder.evicted());
        out
    }

    /// The events of the last `n` rounds, including the newest round.
    pub fn tail_events(&self, rounds: usize) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        self.with(|s| out = s.recorder.tail_rounds(rounds));
        out
    }

    /// The metrics registry as a JSON document (`{}` shape even when
    /// empty or on the null sink).
    ///
    /// # Errors
    ///
    /// Returns an error if a gauge holds a non-finite value.
    pub fn metrics_json(&self) -> Result<String, String> {
        self.metrics().to_json()
    }

    /// The full trace stream as a JSON array.
    ///
    /// # Errors
    ///
    /// Returns an error if an event holds a non-finite number.
    pub fn trace_json(&self) -> Result<String, String> {
        let mut v = Json::Arr(Vec::new());
        self.with(|s| v = s.recorder.to_json_value());
        v.write()
    }

    /// The last-`n`-rounds trace slice as a JSON array.
    ///
    /// # Errors
    ///
    /// Returns an error if an event holds a non-finite number.
    pub fn tail_json(&self, rounds: usize) -> Result<String, String> {
        let mut v = Json::Arr(Vec::new());
        self.with(|s| v = s.recorder.tail_json_value(rounds));
        v.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_records_nothing() {
        let tel = Telemetry::null();
        assert!(!tel.enabled());
        tel.counter_add("x", 5);
        tel.event(|| panic!("event closure must not run on the null sink"));
        assert!(tel.metrics().is_empty());
        assert!(tel.events().is_empty());
        assert_eq!(
            tel.metrics_json().unwrap(),
            Telemetry::null().metrics_json().unwrap()
        );
    }

    #[test]
    fn clones_share_recording_state() {
        let tel = Telemetry::recording(16);
        let clone = tel.clone();
        clone.counter_add("shared", 3);
        clone.event(|| TraceEvent::Checkpoint { round: 0 });
        assert_eq!(tel.metrics().counter("shared"), 3);
        assert_eq!(tel.events().len(), 1);
        tel.reset();
        assert!(clone.metrics().is_empty());
        assert!(clone.events().is_empty());
    }

    #[test]
    fn equality_compares_sink_not_history() {
        let a = Telemetry::recording(16);
        let b = Telemetry::recording(16);
        a.counter_add("only-in-a", 1);
        assert_eq!(a, b);
        assert_ne!(a, Telemetry::null());
        assert_ne!(a, Telemetry::recording(32));
        assert_eq!(Telemetry::null(), Telemetry::default());
    }

    #[test]
    fn observe_delivery_counts_retransmits() {
        let tel = Telemetry::recording(16);
        let mut d = Delivery::loopback();
        d.attempts = 3;
        tel.observe_delivery(2, 1, &d);
        let m = tel.metrics();
        assert_eq!(m.counter("net.attempts"), 3);
        assert_eq!(m.counter("net.retransmits"), 2);
        assert!(matches!(
            tel.events().as_slice(),
            [TraceEvent::Retransmit {
                round: 2,
                camera: 1,
                attempts: 3
            }]
        ));
    }

    #[test]
    fn sink_round_trips_through_new() {
        for sink in [
            TelemetrySink::Null,
            TelemetrySink::Memory { trace_capacity: 64 },
        ] {
            assert_eq!(Telemetry::new(sink).sink(), sink);
        }
    }
}
