//! The structured trace stream: one [`TraceEvent`] per interesting moment
//! of a run, recorded into a bounded [`FlightRecorder`] ring buffer.
//!
//! Events carry span-style scoping — every event knows its round, most
//! know their camera — so a dump can be sliced per round or per camera
//! after the fact. The recorder is sized in events, not rounds; when it
//! overflows, the oldest events fall off and `evicted` counts them, so a
//! long soak run holds memory constant while the tail stays intact.

use crate::jsonio::Json;
use eecs_detect::detection::AlgorithmId;
use std::collections::VecDeque;

/// One structured moment of a simulation run.
///
/// Every event is scoped to the round it happened in; camera-specific
/// events also name the camera. The variants mirror the stages of the
/// EECS loop: probing, assessment, selection downlink, operation, plus
/// the self-healing machinery (quarantine, failover, checkpoint).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A recalibration round began.
    RoundStart {
        /// Round index.
        round: usize,
        /// First annotated frame of the round.
        first_frame: usize,
    },
    /// A recalibration round finished.
    RoundEnd {
        /// Round index.
        round: usize,
        /// Energy all cameras spent this round (J).
        energy_j: f64,
        /// Correctly detected humans this round.
        correct: usize,
        /// Ground-truth humans present this round.
        gt: usize,
    },
    /// The controller probed a camera for liveness.
    Probe {
        /// Round index.
        round: usize,
        /// Camera probed.
        camera: usize,
        /// Whether the probe reply arrived within the round.
        delivered: bool,
    },
    /// The controller downlinked an assignment (or deactivation) to a
    /// camera.
    Assignment {
        /// Round index.
        round: usize,
        /// Camera addressed.
        camera: usize,
        /// The algorithm assigned; `None` deactivates the camera.
        algorithm: Option<AlgorithmId>,
        /// Whether the downlink arrived (a miss leaves the camera on its
        /// previous assignment).
        delivered: bool,
    },
    /// A detector ran on one frame (assessment or operation phase).
    Detection {
        /// Round index.
        round: usize,
        /// Camera that ran the detector.
        camera: usize,
        /// Frame number in the feed.
        frame: usize,
        /// Algorithm that ran.
        algorithm: AlgorithmId,
        /// Objects in the (health-screened) report.
        objects: usize,
        /// Whether the output passed the detector-health checks.
        healthy: bool,
    },
    /// A (camera, algorithm) pair earned a quarantine strike.
    QuarantineStrike {
        /// Round index.
        round: usize,
        /// Camera whose detector misbehaved.
        camera: usize,
        /// The misbehaving algorithm.
        algorithm: AlgorithmId,
        /// Strike count for the pair after this one.
        strikes: u32,
    },
    /// The controller crashed and a camera was elected to the seat.
    Failover {
        /// Round the crash opened at.
        round: usize,
        /// Camera elected as replacement controller.
        elected: usize,
        /// Round of the checkpoint the new seat restored.
        checkpoint_round: usize,
        /// Peers that acknowledged the handover.
        announced: usize,
    },
    /// A reliable send needed more than one attempt.
    Retransmit {
        /// Round index.
        round: usize,
        /// Sending camera.
        camera: usize,
        /// Total attempts the delivery took.
        attempts: u32,
    },
    /// The controller checkpointed its volatile state.
    Checkpoint {
        /// Round the checkpoint covers.
        round: usize,
    },
    /// The network split into more than one island this round.
    PartitionStart {
        /// Round the split opened at.
        round: usize,
        /// Islands the node graph fell into.
        islands: usize,
    },
    /// A partition healed and the islands see each other again.
    PartitionHeal {
        /// Round the heal completed in.
        round: usize,
        /// Islands that existed just before the heal.
        islands: usize,
    },
    /// An orphaned island elected its own acting controller.
    Election {
        /// Round the election ran in.
        round: usize,
        /// Camera elected as the island's acting seat.
        elected: usize,
        /// Fencing epoch the new seat announced.
        epoch: u64,
        /// Island peers that accepted the fenced handover.
        announced: usize,
    },
    /// Two seats merged their state deterministically on heal.
    Reconcile {
        /// Round the reconciliation ran in.
        round: usize,
        /// Fencing epoch of the merged state.
        epoch: u64,
        /// Seats demoted back to plain cameras by the merge.
        demoted: usize,
    },
    /// A reliable delivery had attempts arrive bit-corrupted; the
    /// receiver's frame checksum rejected them and the ARQ retried.
    CorruptFrame {
        /// Round index.
        round: usize,
        /// Sending camera.
        camera: usize,
        /// Attempts of this delivery that arrived corrupted.
        corrupted: u32,
    },
    /// A checkpoint restore skipped damaged generations to reach the
    /// newest one that verified.
    CheckpointRollback {
        /// Round the restore ran in.
        round: usize,
        /// Generation counter of the record that verified.
        generation: u64,
        /// Newer generations rejected on the way.
        rolled_back: u64,
    },
    /// A camera joined (or rejoined) the fleet at a round boundary.
    CameraJoin {
        /// Round the camera became a member in.
        round: usize,
        /// The joining camera.
        camera: usize,
    },
    /// A camera left the fleet at a round boundary.
    CameraLeave {
        /// Round the camera ceased to be a member in.
        round: usize,
        /// The departing camera.
        camera: usize,
    },
    /// The mission service admitted a mission and started executing it.
    ///
    /// Service events reuse the `round` scope for the service's virtual
    /// clock tick, so flight-recorder slicing by round works unchanged.
    MissionStart {
        /// Virtual-clock tick the mission started at.
        round: usize,
        /// Mission index in the submitted batch.
        mission: usize,
    },
    /// A service-run mission completed and its report was returned.
    MissionEnd {
        /// Virtual-clock tick the mission finished at.
        round: usize,
        /// Mission index in the submitted batch.
        mission: usize,
        /// Whether the mission finished within its declared deadline.
        deadline_met: bool,
    },
    /// The mission service refused a mission at admission.
    MissionRejected {
        /// Virtual-clock tick the request arrived at.
        round: usize,
        /// Mission index in the submitted batch.
        mission: usize,
    },
}

impl TraceEvent {
    /// The round this event is scoped to.
    pub fn round(&self) -> usize {
        match *self {
            TraceEvent::RoundStart { round, .. }
            | TraceEvent::RoundEnd { round, .. }
            | TraceEvent::Probe { round, .. }
            | TraceEvent::Assignment { round, .. }
            | TraceEvent::Detection { round, .. }
            | TraceEvent::QuarantineStrike { round, .. }
            | TraceEvent::Failover { round, .. }
            | TraceEvent::Retransmit { round, .. }
            | TraceEvent::Checkpoint { round }
            | TraceEvent::PartitionStart { round, .. }
            | TraceEvent::PartitionHeal { round, .. }
            | TraceEvent::Election { round, .. }
            | TraceEvent::Reconcile { round, .. }
            | TraceEvent::CorruptFrame { round, .. }
            | TraceEvent::CheckpointRollback { round, .. }
            | TraceEvent::CameraJoin { round, .. }
            | TraceEvent::CameraLeave { round, .. }
            | TraceEvent::MissionStart { round, .. }
            | TraceEvent::MissionEnd { round, .. }
            | TraceEvent::MissionRejected { round, .. } => round,
        }
    }

    /// The camera this event is scoped to, when it has one.
    pub fn camera(&self) -> Option<usize> {
        match *self {
            TraceEvent::Probe { camera, .. }
            | TraceEvent::Assignment { camera, .. }
            | TraceEvent::Detection { camera, .. }
            | TraceEvent::QuarantineStrike { camera, .. }
            | TraceEvent::Retransmit { camera, .. }
            | TraceEvent::CorruptFrame { camera, .. }
            | TraceEvent::CameraJoin { camera, .. }
            | TraceEvent::CameraLeave { camera, .. } => Some(camera),
            TraceEvent::Failover { elected, .. } | TraceEvent::Election { elected, .. } => {
                Some(elected)
            }
            TraceEvent::RoundStart { .. }
            | TraceEvent::RoundEnd { .. }
            | TraceEvent::Checkpoint { .. }
            | TraceEvent::PartitionStart { .. }
            | TraceEvent::PartitionHeal { .. }
            | TraceEvent::Reconcile { .. }
            | TraceEvent::CheckpointRollback { .. }
            | TraceEvent::MissionStart { .. }
            | TraceEvent::MissionEnd { .. }
            | TraceEvent::MissionRejected { .. } => None,
        }
    }

    /// A stable kind label, used as the JSON `"event"` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::Probe { .. } => "probe",
            TraceEvent::Assignment { .. } => "assignment",
            TraceEvent::Detection { .. } => "detection",
            TraceEvent::QuarantineStrike { .. } => "quarantine_strike",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::PartitionStart { .. } => "partition_start",
            TraceEvent::PartitionHeal { .. } => "partition_heal",
            TraceEvent::Election { .. } => "election",
            TraceEvent::Reconcile { .. } => "reconcile",
            TraceEvent::CorruptFrame { .. } => "corrupt_frame",
            TraceEvent::CheckpointRollback { .. } => "checkpoint_rollback",
            TraceEvent::CameraJoin { .. } => "camera_join",
            TraceEvent::CameraLeave { .. } => "camera_leave",
            TraceEvent::MissionStart { .. } => "mission_start",
            TraceEvent::MissionEnd { .. } => "mission_end",
            TraceEvent::MissionRejected { .. } => "mission_rejected",
        }
    }

    /// This event as a flat JSON object (`event` + `round` first, then
    /// the variant's own fields in declaration order).
    pub fn to_json_value(&self) -> Json {
        let n = |v: usize| Json::Num(v as f64);
        let mut members = vec![
            ("event".to_string(), Json::Str(self.kind().into())),
            ("round".to_string(), n(self.round())),
        ];
        match *self {
            TraceEvent::RoundStart { first_frame, .. } => {
                members.push(("first_frame".into(), n(first_frame)));
            }
            TraceEvent::RoundEnd {
                energy_j,
                correct,
                gt,
                ..
            } => {
                members.push(("energy_j".into(), Json::Num(energy_j)));
                members.push(("correct".into(), n(correct)));
                members.push(("gt".into(), n(gt)));
            }
            TraceEvent::Probe {
                camera, delivered, ..
            } => {
                members.push(("camera".into(), n(camera)));
                members.push(("delivered".into(), Json::Bool(delivered)));
            }
            TraceEvent::Assignment {
                camera,
                algorithm,
                delivered,
                ..
            } => {
                members.push(("camera".into(), n(camera)));
                members.push((
                    "algorithm".into(),
                    match algorithm {
                        Some(a) => Json::Str(a.to_string()),
                        None => Json::Null,
                    },
                ));
                members.push(("delivered".into(), Json::Bool(delivered)));
            }
            TraceEvent::Detection {
                camera,
                frame,
                algorithm,
                objects,
                healthy,
                ..
            } => {
                members.push(("camera".into(), n(camera)));
                members.push(("frame".into(), n(frame)));
                members.push(("algorithm".into(), Json::Str(algorithm.to_string())));
                members.push(("objects".into(), n(objects)));
                members.push(("healthy".into(), Json::Bool(healthy)));
            }
            TraceEvent::QuarantineStrike {
                camera,
                algorithm,
                strikes,
                ..
            } => {
                members.push(("camera".into(), n(camera)));
                members.push(("algorithm".into(), Json::Str(algorithm.to_string())));
                members.push(("strikes".into(), n(strikes as usize)));
            }
            TraceEvent::Failover {
                elected,
                checkpoint_round,
                announced,
                ..
            } => {
                members.push(("elected".into(), n(elected)));
                members.push(("checkpoint_round".into(), n(checkpoint_round)));
                members.push(("announced".into(), n(announced)));
            }
            TraceEvent::Retransmit {
                camera, attempts, ..
            } => {
                members.push(("camera".into(), n(camera)));
                members.push(("attempts".into(), n(attempts as usize)));
            }
            TraceEvent::Checkpoint { .. } => {}
            TraceEvent::PartitionStart { islands, .. }
            | TraceEvent::PartitionHeal { islands, .. } => {
                members.push(("islands".into(), n(islands)));
            }
            TraceEvent::Election {
                elected,
                epoch,
                announced,
                ..
            } => {
                members.push(("elected".into(), n(elected)));
                members.push(("epoch".into(), n(epoch as usize)));
                members.push(("announced".into(), n(announced)));
            }
            TraceEvent::Reconcile { epoch, demoted, .. } => {
                members.push(("epoch".into(), n(epoch as usize)));
                members.push(("demoted".into(), n(demoted)));
            }
            TraceEvent::CorruptFrame {
                camera, corrupted, ..
            } => {
                members.push(("camera".into(), n(camera)));
                members.push(("corrupted".into(), n(corrupted as usize)));
            }
            TraceEvent::CheckpointRollback {
                generation,
                rolled_back,
                ..
            } => {
                members.push(("generation".into(), n(generation as usize)));
                members.push(("rolled_back".into(), n(rolled_back as usize)));
            }
            TraceEvent::CameraJoin { camera, .. } | TraceEvent::CameraLeave { camera, .. } => {
                members.push(("camera".into(), n(camera)));
            }
            TraceEvent::MissionStart { mission, .. }
            | TraceEvent::MissionRejected { mission, .. } => {
                members.push(("mission".into(), n(mission)));
            }
            TraceEvent::MissionEnd {
                mission,
                deadline_met,
                ..
            } => {
                members.push(("mission".into(), n(mission)));
                members.push(("deadline_met".into(), Json::Bool(deadline_met)));
            }
        }
        Json::Obj(members)
    }
}

/// A bounded in-memory ring buffer of [`TraceEvent`]s.
///
/// Rounds are recorded in nondecreasing order (the simulation emits
/// serially), so the newest retained event's round is the run's latest.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    evicted: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Appends one event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.evicted += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events have fallen off the front.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// The round of the newest retained event.
    pub fn last_round(&self) -> Option<usize> {
        self.events.back().map(TraceEvent::round)
    }

    /// The events of the last `n` rounds — *including* the newest round
    /// itself, so a post-mortem slice after a failure at round `r` always
    /// contains round `r`'s own events (`tail_rounds(1)` is exactly the
    /// final round).
    pub fn tail_rounds(&self, n: usize) -> Vec<TraceEvent> {
        let Some(last) = self.last_round() else {
            return Vec::new();
        };
        let cutoff = (last + 1).saturating_sub(n.max(1));
        self.events
            .iter()
            .filter(|e| e.round() >= cutoff)
            .cloned()
            .collect()
    }

    /// The full retained stream as a JSON array.
    pub fn to_json_value(&self) -> Json {
        Json::Arr(self.events.iter().map(TraceEvent::to_json_value).collect())
    }

    /// The last-`n`-rounds slice as a JSON array.
    pub fn tail_json_value(&self, n: usize) -> Json {
        Json::Arr(
            self.tail_rounds(n)
                .iter()
                .map(TraceEvent::to_json_value)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(round: usize, camera: usize) -> TraceEvent {
        TraceEvent::Probe {
            round,
            camera,
            delivered: true,
        }
    }

    #[test]
    fn scoping_accessors_cover_every_variant() {
        let e = TraceEvent::Failover {
            round: 3,
            elected: 1,
            checkpoint_round: 2,
            announced: 2,
        };
        assert_eq!(e.round(), 3);
        assert_eq!(e.camera(), Some(1));
        assert_eq!(e.kind(), "failover");
        assert_eq!(TraceEvent::Checkpoint { round: 5 }.camera(), None);
        let join = TraceEvent::CameraJoin {
            round: 2,
            camera: 3,
        };
        assert_eq!((join.round(), join.camera()), (2, Some(3)));
        assert_eq!(join.kind(), "camera_join");
        let leave = TraceEvent::CameraLeave {
            round: 4,
            camera: 0,
        };
        assert_eq!((leave.round(), leave.camera()), (4, Some(0)));
        assert_eq!(leave.kind(), "camera_leave");
        let text = leave.to_json_value().write().unwrap();
        let v = crate::jsonio::parse(&text).unwrap();
        assert_eq!(v.get("event").and_then(Json::as_str), Some("camera_leave"));
        assert_eq!(v.get("camera").and_then(Json::as_num), Some(0.0));
    }

    #[test]
    fn mission_events_scope_to_the_service_clock() {
        let start = TraceEvent::MissionStart {
            round: 7,
            mission: 2,
        };
        assert_eq!((start.round(), start.camera()), (7, None));
        assert_eq!(start.kind(), "mission_start");
        let end = TraceEvent::MissionEnd {
            round: 9,
            mission: 2,
            deadline_met: false,
        };
        assert_eq!(end.kind(), "mission_end");
        let text = end.to_json_value().write().unwrap();
        let v = crate::jsonio::parse(&text).unwrap();
        assert_eq!(v.get("mission").and_then(Json::as_num), Some(2.0));
        assert_eq!(v.get("deadline_met"), Some(&Json::Bool(false)));
        let rejected = TraceEvent::MissionRejected {
            round: 1,
            mission: 5,
        };
        assert_eq!((rejected.round(), rejected.camera()), (1, None));
        assert_eq!(rejected.kind(), "mission_rejected");
    }

    #[test]
    fn ring_buffer_evicts_oldest_and_counts() {
        let mut rec = FlightRecorder::new(3);
        for r in 0..5 {
            rec.record(probe(r, 0));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        let rounds: Vec<usize> = rec.events().map(TraceEvent::round).collect();
        assert_eq!(rounds, vec![2, 3, 4]);
    }

    #[test]
    fn tail_includes_the_newest_round_itself() {
        let mut rec = FlightRecorder::new(100);
        for r in 0..4 {
            rec.record(TraceEvent::RoundStart {
                round: r,
                first_frame: r * 10,
            });
            rec.record(probe(r, 0));
        }
        // The failure round (3) must be in every non-empty tail.
        let tail1 = rec.tail_rounds(1);
        assert!(tail1.iter().all(|e| e.round() == 3));
        assert_eq!(tail1.len(), 2);
        let tail2 = rec.tail_rounds(2);
        assert!(tail2.iter().any(|e| e.round() == 2));
        assert!(tail2.iter().any(|e| e.round() == 3));
        // Asking for more rounds than exist returns everything.
        assert_eq!(rec.tail_rounds(100).len(), 8);
        // n = 0 is clamped to the newest round, never an empty slice.
        assert!(!rec.tail_rounds(0).is_empty());
    }

    #[test]
    fn json_dump_is_parseable_and_flat() {
        let mut rec = FlightRecorder::new(10);
        rec.record(TraceEvent::Detection {
            round: 0,
            camera: 2,
            frame: 45,
            algorithm: AlgorithmId::Acf,
            objects: 3,
            healthy: true,
        });
        let text = rec.to_json_value().write().unwrap();
        let v = crate::jsonio::parse(&text).unwrap();
        let e = &v.as_arr().unwrap()[0];
        assert_eq!(e.get("event").and_then(Json::as_str), Some("detection"));
        assert_eq!(e.get("algorithm").and_then(Json::as_str), Some("ACF"));
        assert_eq!(e.get("frame").and_then(Json::as_num), Some(45.0));
    }
}
