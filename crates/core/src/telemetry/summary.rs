//! Human- and machine-readable sinks over a finished run: a fixed-width
//! summary table for the examples, and the JSON "golden document" the
//! snapshot suite in `tests/golden_report.rs` compares byte-for-byte.

use super::Telemetry;
use crate::jsonio::Json;
use crate::simulation::{RoundRecord, SimulationReport};
use eecs_net::transport::TransportStats;
use std::fmt::Write as _;

fn transport_to_json(stats: &TransportStats) -> Json {
    let mut members = Vec::new();
    for (field, value) in stats.counter_fields() {
        members.push((field.to_string(), Json::Num(value as f64)));
    }
    for (field, value) in stats.gauge_fields() {
        members.push((field.to_string(), Json::Num(value)));
    }
    Json::Obj(members)
}

fn round_to_json(r: &RoundRecord) -> Json {
    let n = |v: usize| Json::Num(v as f64);
    Json::Obj(vec![
        ("first_frame".into(), n(r.first_frame)),
        ("last_frame".into(), n(r.last_frame)),
        (
            "active".into(),
            Json::Arr(r.active.iter().map(|&j| n(j)).collect()),
        ),
        (
            "assignment".into(),
            Json::Obj(
                r.assignment
                    .iter()
                    .map(|(j, alg)| (j.to_string(), Json::Str(alg.to_string())))
                    .collect(),
            ),
        ),
        ("energy_j".into(), Json::Num(r.energy_j)),
        ("correct".into(), n(r.correct)),
        ("gt".into(), n(r.gt)),
    ])
}

/// A [`SimulationReport`] as a JSON value tree, every `f64` bit-exact
/// through [`crate::jsonio`].
pub fn report_to_json(report: &SimulationReport) -> Json {
    let n = |v: usize| Json::Num(v as f64);
    let mut members = vec![
        ("mode".into(), Json::Str(format!("{:?}", report.mode))),
        ("total_energy_j".into(), Json::Num(report.total_energy_j)),
        ("correctly_detected".into(), n(report.correctly_detected)),
        ("gt_objects".into(), n(report.gt_objects)),
        (
            "per_camera_energy".into(),
            Json::Arr(
                report
                    .per_camera_energy
                    .iter()
                    .map(|&e| Json::Num(e))
                    .collect(),
            ),
        ),
        ("degraded_frames".into(), n(report.degraded_frames)),
        ("dropped_frames".into(), n(report.dropped_frames)),
        ("quarantine_strikes".into(), n(report.quarantine_strikes)),
        ("partitions".into(), n(report.partitions)),
        ("elections".into(), n(report.elections)),
        ("reconciliations".into(), n(report.reconciliations)),
        ("split_brain_rounds".into(), n(report.split_brain_rounds)),
        (
            "failovers".into(),
            Json::Arr(
                report
                    .failovers
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("round".into(), n(f.round)),
                            ("elected".into(), n(f.elected)),
                            ("checkpoint_round".into(), n(f.checkpoint_round)),
                            ("announced".into(), n(f.announced)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "transport".into(),
            Json::Arr(report.transport.iter().map(transport_to_json).collect()),
        ),
        ("downlink".into(), transport_to_json(&report.downlink)),
        (
            "rounds".into(),
            Json::Arr(report.rounds.iter().map(round_to_json).collect()),
        ),
    ];
    // Integrity counters appear only when something actually happened,
    // so reports from corruption-free runs stay byte-identical to the
    // pre-integrity golden masters.
    if report.corrupted_frames > 0 {
        members.push((
            "corrupted_frames".into(),
            Json::Num(report.corrupted_frames as f64),
        ));
    }
    if report.checkpoint_rollbacks > 0 {
        members.push((
            "checkpoint_rollbacks".into(),
            Json::Num(report.checkpoint_rollbacks as f64),
        ));
    }
    // Churn counters likewise appear only under an active plan, so
    // fixed-fleet reports stay byte-identical to the pre-churn goldens.
    if report.camera_joins > 0 {
        members.push(("camera_joins".into(), n(report.camera_joins)));
    }
    if report.camera_leaves > 0 {
        members.push(("camera_leaves".into(), n(report.camera_leaves)));
    }
    Json::Obj(members)
}

/// Schema tag of the golden document format.
pub const GOLDEN_SCHEMA: &str = "eecs-golden/1";

/// The golden-master document: the report plus the final metrics dump,
/// as one byte-stable JSON string.
///
/// # Errors
///
/// Returns an error if the report or a gauge holds a non-finite number.
pub fn golden_document(
    scenario: &str,
    report: &SimulationReport,
    telemetry: &Telemetry,
) -> Result<String, String> {
    Json::Obj(vec![
        ("schema".into(), Json::Str(GOLDEN_SCHEMA.into())),
        ("scenario".into(), Json::Str(scenario.into())),
        ("report".into(), report_to_json(report)),
        ("metrics".into(), telemetry.metrics().to_json_value()),
    ])
    .write()
}

/// Renders a fixed-width summary table of a finished run — the examples'
/// shared sink. With a recording [`Telemetry`] handle the footer also
/// reports what the registry and flight recorder captured.
pub fn render_summary(report: &SimulationReport, telemetry: &Telemetry) -> String {
    let mut out = String::new();
    let pct = if report.gt_objects > 0 {
        100.0 * report.correctly_detected as f64 / report.gt_objects as f64
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "mode {:?} · {} rounds · {}/{} detected ({pct:.1}%) · {:.3} J total",
        report.mode,
        report.rounds.len(),
        report.correctly_detected,
        report.gt_objects,
        report.total_energy_j,
    );
    let _ = writeln!(
        out,
        "degraded {} · dropped {} · quarantine strikes {} · failovers {}",
        report.degraded_frames,
        report.dropped_frames,
        report.quarantine_strikes,
        report.failovers.len(),
    );
    if report.partitions > 0 {
        let _ = writeln!(
            out,
            "partitions {} · elections {} · reconciliations {} · split-brain rounds {}",
            report.partitions, report.elections, report.reconciliations, report.split_brain_rounds,
        );
    }
    if report.corrupted_frames > 0 || report.checkpoint_rollbacks > 0 {
        let _ = writeln!(
            out,
            "corrupted frames {} · checkpoint rollbacks {}",
            report.corrupted_frames, report.checkpoint_rollbacks,
        );
    }
    if report.camera_joins > 0 || report.camera_leaves > 0 {
        let _ = writeln!(
            out,
            "camera joins {} · camera leaves {}",
            report.camera_joins, report.camera_leaves,
        );
    }

    let _ = writeln!(
        out,
        "\n{:>5}  {:<11} {:<10} {:<22} {:>10}  {:>9}",
        "round", "frames", "active", "assignment", "energy J", "detected"
    );
    for (i, r) in report.rounds.iter().enumerate() {
        let active = r
            .active
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let assignment = r
            .assignment
            .iter()
            .map(|(j, alg)| format!("{j}:{alg}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{i:>5}  {:<11} {active:<10} {assignment:<22} {:>10.3}  {:>9}",
            format!("{}-{}", r.first_frame, r.last_frame),
            r.energy_j,
            format!("{}/{}", r.correct, r.gt),
        );
    }

    let _ = writeln!(
        out,
        "\n{:>6}  {:>10}  {:>6}  {:>8}  {:>5}  {:>7}  {:>8}",
        "camera", "energy J", "msgs", "attempts", "drops", "retries", "timeouts"
    );
    for (j, stats) in report.transport.iter().enumerate() {
        let _ = writeln!(
            out,
            "{j:>6}  {:>10.3}  {:>6}  {:>8}  {:>5}  {:>7}  {:>8}",
            report.per_camera_energy.get(j).copied().unwrap_or(0.0),
            stats.messages,
            stats.attempts,
            stats.drops,
            stats.retries,
            stats.timeouts,
        );
    }
    let d = &report.downlink;
    let _ = writeln!(
        out,
        "downlink: {} msgs · {} attempts · {} drops · {} timeouts",
        d.messages, d.attempts, d.drops, d.timeouts
    );

    if telemetry.enabled() {
        let (counters, gauges, histograms) = telemetry.metrics().sizes();
        let _ = writeln!(
            out,
            "telemetry: {counters} counters · {gauges} gauges · {histograms} histograms · \
             {} trace events ({} evicted)",
            telemetry.events().len(),
            telemetry.trace_evicted(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::OperatingMode;
    use eecs_detect::detection::AlgorithmId;
    use std::collections::BTreeMap;

    fn tiny_report() -> SimulationReport {
        let mut assignment = BTreeMap::new();
        assignment.insert(0, AlgorithmId::Acf);
        SimulationReport {
            mode: OperatingMode::FullEecs,
            rounds: vec![RoundRecord {
                first_frame: 40,
                last_frame: 65,
                active: vec![0],
                assignment,
                energy_j: 12.5,
                correct: 3,
                gt: 4,
            }],
            total_energy_j: 12.5,
            correctly_detected: 3,
            gt_objects: 4,
            per_camera_energy: vec![12.5],
            transport: vec![TransportStats::default()],
            downlink: TransportStats::default(),
            failovers: Vec::new(),
            degraded_frames: 0,
            dropped_frames: 0,
            quarantine_strikes: 0,
            partitions: 0,
            elections: 0,
            reconciliations: 0,
            split_brain_rounds: 0,
            corrupted_frames: 0,
            checkpoint_rollbacks: 0,
            camera_joins: 0,
            camera_leaves: 0,
        }
    }

    #[test]
    fn report_json_round_trips_and_is_stable() {
        let report = tiny_report();
        let text = report_to_json(&report).write().unwrap();
        let v = crate::jsonio::parse(&text).unwrap();
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("FullEecs"));
        assert_eq!(v.get("total_energy_j").and_then(Json::as_num), Some(12.5));
        // Encode → decode → encode is a fixed point.
        assert_eq!(crate::jsonio::parse(&text).unwrap().write().unwrap(), text);
    }

    #[test]
    fn golden_document_carries_schema_and_metrics() {
        let tel = Telemetry::recording(8);
        tel.counter_add("x", 1);
        let doc = golden_document("ideal", &tiny_report(), &tel).unwrap();
        let v = crate::jsonio::parse(&doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(GOLDEN_SCHEMA));
        assert_eq!(v.get("scenario").and_then(Json::as_str), Some("ideal"));
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("x"))
                .and_then(Json::as_num),
            Some(1.0)
        );
    }

    #[test]
    fn integrity_fields_appear_only_when_nonzero() {
        let clean = tiny_report();
        let clean_text = report_to_json(&clean).write().unwrap();
        assert!(!clean_text.contains("corrupted_frames"));
        assert!(!clean_text.contains("checkpoint_rollbacks"));
        assert!(!render_summary(&clean, &Telemetry::null()).contains("corrupted frames"));

        let mut dirty = tiny_report();
        dirty.corrupted_frames = 7;
        dirty.checkpoint_rollbacks = 2;
        let dirty_text = report_to_json(&dirty).write().unwrap();
        let v = crate::jsonio::parse(&dirty_text).unwrap();
        assert_eq!(v.get("corrupted_frames").and_then(Json::as_num), Some(7.0));
        assert_eq!(
            v.get("checkpoint_rollbacks").and_then(Json::as_num),
            Some(2.0)
        );
        let rendered = render_summary(&dirty, &Telemetry::null());
        assert!(rendered.contains("corrupted frames 7 · checkpoint rollbacks 2"));
    }

    #[test]
    fn churn_fields_appear_only_when_nonzero() {
        let fixed = tiny_report();
        let fixed_text = report_to_json(&fixed).write().unwrap();
        assert!(!fixed_text.contains("camera_joins"));
        assert!(!fixed_text.contains("camera_leaves"));
        assert!(!render_summary(&fixed, &Telemetry::null()).contains("camera joins"));

        let mut churned = tiny_report();
        churned.camera_joins = 2;
        churned.camera_leaves = 3;
        let text = report_to_json(&churned).write().unwrap();
        let v = crate::jsonio::parse(&text).unwrap();
        assert_eq!(v.get("camera_joins").and_then(Json::as_num), Some(2.0));
        assert_eq!(v.get("camera_leaves").and_then(Json::as_num), Some(3.0));
        let rendered = render_summary(&churned, &Telemetry::null());
        assert!(rendered.contains("camera joins 2 · camera leaves 3"));
    }

    #[test]
    fn summary_renders_rounds_and_footer() {
        let tel = Telemetry::recording(8);
        let text = render_summary(&tiny_report(), &tel);
        assert!(text.contains("FullEecs"));
        assert!(text.contains("0:ACF"));
        assert!(text.contains("telemetry:"));
        // The null sink renders the same table without the footer.
        let null_text = render_summary(&tiny_report(), &Telemetry::null());
        assert!(!null_text.contains("telemetry:"));
    }
}
