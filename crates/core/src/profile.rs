//! Per-training-item algorithm profiles (the rows of Tables II–IV).

use crate::{EecsError, Result};
use eecs_detect::detection::AlgorithmId;
use eecs_detect::probability::ScoreCalibration;
use eecs_energy::budget::EnergyBudget;
use eecs_manifold::video::VideoItem;
use std::collections::BTreeMap;

/// Which downgrade policy Section IV-B.4 applies — the efficiency-gated
/// rule is the paper's ("EECS only pays attention to algorithms that have
/// higher f_score/energy values compared to the most accurate algorithm");
/// the any-cheaper rule is the DESIGN.md §5 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DowngradeRule {
    /// Candidates must be cheaper *and* have a better f-score/energy ratio.
    #[default]
    EfficiencyGated,
    /// Candidates must merely be cheaper (ablation).
    AnyCheaper,
}

/// What offline training learned about one algorithm on one training item:
/// exactly the columns of Tables II–IV plus the score calibration.
#[derive(Debug, Clone)]
pub struct AlgorithmProfile {
    /// Which algorithm.
    pub algorithm: AlgorithmId,
    /// The f-score-maximizing cut-off `d_t`.
    pub threshold: f64,
    /// Recall at `d_t`.
    pub recall: f64,
    /// Precision at `d_t`.
    pub precision: f64,
    /// F-score at `d_t`.
    pub f_score: f64,
    /// Measured energy per frame (processing + object-image transfer), J.
    pub energy_per_frame_j: f64,
    /// Modeled processing time per frame, seconds.
    pub processing_time_s: f64,
    /// Score → probability calibration for `P_ij`.
    pub calibration: ScoreCalibration,
}

impl AlgorithmProfile {
    /// The f-score / energy ratio the downgrade rule compares
    /// (Section IV-B.4).
    pub fn efficiency(&self) -> f64 {
        if self.energy_per_frame_j <= 0.0 {
            f64::INFINITY
        } else {
            self.f_score / self.energy_per_frame_j
        }
    }
}

/// Everything the controller knows about one training video item.
#[derive(Debug, Clone)]
pub struct TrainingRecord {
    /// Item label, e.g. `T_1.2`.
    pub name: String,
    /// Key-frame features for manifold matching.
    pub video: VideoItem,
    /// Per-algorithm profiles.
    pub profiles: BTreeMap<AlgorithmId, AlgorithmProfile>,
}

impl TrainingRecord {
    /// Creates a record.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::InvalidArgument`] when no profiles are given.
    pub fn new(
        name: impl Into<String>,
        video: VideoItem,
        profiles: Vec<AlgorithmProfile>,
    ) -> Result<TrainingRecord> {
        if profiles.is_empty() {
            return Err(EecsError::InvalidArgument(
                "a training record needs at least one algorithm profile".into(),
            ));
        }
        Ok(TrainingRecord {
            name: name.into(),
            video,
            profiles: profiles.into_iter().map(|p| (p.algorithm, p)).collect(),
        })
    }

    /// The profile of a specific algorithm, if trained.
    pub fn profile(&self, algorithm: AlgorithmId) -> Option<&AlgorithmProfile> {
        self.profiles.get(&algorithm)
    }

    /// Profiles ranked by descending f-score — the paper's "ranked list of
    /// algorithms … based on the f_score".
    pub fn ranked(&self) -> Vec<&AlgorithmProfile> {
        let mut v: Vec<&AlgorithmProfile> = self.profiles.values().collect();
        v.sort_by(|a, b| b.f_score.partial_cmp(&a.f_score).unwrap());
        v
    }

    /// Profiles whose per-frame energy fits the budget, ranked by f-score
    /// (the paper's `A_i*` is the first of these).
    pub fn feasible_ranked(&self, budget: &EnergyBudget) -> Vec<&AlgorithmProfile> {
        self.ranked()
            .into_iter()
            .filter(|p| budget.allows(p.energy_per_frame_j))
            .collect()
    }

    /// The most accurate budget-feasible algorithm `A_i*`.
    pub fn best_within_budget(&self, budget: &EnergyBudget) -> Option<&AlgorithmProfile> {
        self.feasible_ranked(budget).into_iter().next()
    }

    /// Downgrade candidates relative to `current` (Section IV-B.4): budget
    /// feasible, strictly cheaper, and with a higher f-score/energy ratio.
    /// Cheapest first.
    pub fn downgrade_candidates(
        &self,
        current: &AlgorithmProfile,
        budget: &EnergyBudget,
    ) -> Vec<&AlgorithmProfile> {
        self.downgrade_candidates_with(current, budget, DowngradeRule::EfficiencyGated)
    }

    /// Downgrade candidates under an explicit [`DowngradeRule`].
    pub fn downgrade_candidates_with(
        &self,
        current: &AlgorithmProfile,
        budget: &EnergyBudget,
        rule: DowngradeRule,
    ) -> Vec<&AlgorithmProfile> {
        let mut v: Vec<&AlgorithmProfile> = self
            .profiles
            .values()
            .filter(|p| {
                p.algorithm != current.algorithm
                    && budget.allows(p.energy_per_frame_j)
                    && p.energy_per_frame_j < current.energy_per_frame_j
                    && match rule {
                        DowngradeRule::EfficiencyGated => p.efficiency() > current.efficiency(),
                        DowngradeRule::AnyCheaper => true,
                    }
            })
            .collect();
        v.sort_by(|a, b| {
            a.energy_per_frame_j
                .partial_cmp(&b.energy_per_frame_j)
                .unwrap()
        });
        v
    }
}

#[cfg(test)]
pub(crate) fn test_profile(algorithm: AlgorithmId, f_score: f64, energy: f64) -> AlgorithmProfile {
    AlgorithmProfile {
        algorithm,
        threshold: 0.0,
        recall: f_score,
        precision: f_score,
        f_score,
        energy_per_frame_j: energy,
        processing_time_s: energy,
        calibration: ScoreCalibration::from_parts(1.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_linalg::Mat;

    fn video() -> VideoItem {
        VideoItem::new("t", Mat::from_fn(3, 4, |i, j| (i * 4 + j) as f64)).unwrap()
    }

    /// Table II shape: HOG 0.66/1.08J, ACF 0.505/0.07J, C4 0.63/4.92J,
    /// LSVM 0.89/3.31J.
    fn table2_record() -> TrainingRecord {
        TrainingRecord::new(
            "T_1.1",
            video(),
            vec![
                test_profile(AlgorithmId::Hog, 0.66, 1.08),
                test_profile(AlgorithmId::Acf, 0.505, 0.07),
                test_profile(AlgorithmId::C4, 0.63, 4.92),
                test_profile(AlgorithmId::Lsvm, 0.89, 3.31),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ranked_by_f_score() {
        let r = table2_record();
        let order: Vec<AlgorithmId> = r.ranked().iter().map(|p| p.algorithm).collect();
        assert_eq!(
            order,
            vec![
                AlgorithmId::Lsvm,
                AlgorithmId::Hog,
                AlgorithmId::C4,
                AlgorithmId::Acf
            ]
        );
    }

    #[test]
    fn budget_excludes_expensive_algorithms() {
        let r = table2_record();
        // Fig 5a regime: budget ≥ 1.08 → HOG feasible, LSVM/C4 not.
        let budget = EnergyBudget::per_frame(1.08).unwrap();
        let best = r.best_within_budget(&budget).unwrap();
        assert_eq!(best.algorithm, AlgorithmId::Hog);
        // Fig 5b regime: budget ∈ [0.07, 1.08) → only ACF.
        let tight = EnergyBudget::per_frame(0.5).unwrap();
        assert_eq!(
            r.best_within_budget(&tight).unwrap().algorithm,
            AlgorithmId::Acf
        );
    }

    #[test]
    fn no_feasible_algorithm_under_tiny_budget() {
        let r = table2_record();
        let budget = EnergyBudget::per_frame(0.01).unwrap();
        assert!(r.best_within_budget(&budget).is_none());
    }

    #[test]
    fn downgrade_prefers_higher_efficiency_cheaper_algorithms() {
        let r = table2_record();
        let budget = EnergyBudget::per_frame(1.08).unwrap();
        let hog = r.profile(AlgorithmId::Hog).unwrap();
        let candidates = r.downgrade_candidates(hog, &budget);
        // ACF: 0.505/0.07 = 7.2 ≫ HOG's 0.61 → the paper's downgrade.
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].algorithm, AlgorithmId::Acf);
    }

    #[test]
    fn any_cheaper_rule_admits_more_candidates() {
        let r = table2_record();
        let budget = EnergyBudget::per_frame(10.0).unwrap();
        let lsvm = r.profile(AlgorithmId::Lsvm).unwrap();
        let gated = r.downgrade_candidates_with(lsvm, &budget, DowngradeRule::EfficiencyGated);
        let any = r.downgrade_candidates_with(lsvm, &budget, DowngradeRule::AnyCheaper);
        assert!(any.len() >= gated.len());
        // HOG (f 0.66 @ 1.08 J, efficiency 0.61) is cheaper than LSVM but
        // its ratio is higher than LSVM's 0.27, so both rules include it;
        // the ablation additionally cannot *lose* candidates.
        assert!(any.iter().any(|p| p.algorithm == AlgorithmId::Acf));
        // Candidates are sorted cheapest-first under both rules.
        for w in any.windows(2) {
            assert!(w[0].energy_per_frame_j <= w[1].energy_per_frame_j);
        }
    }

    #[test]
    fn no_downgrade_below_cheapest() {
        let r = table2_record();
        let budget = EnergyBudget::per_frame(10.0).unwrap();
        let acf = r.profile(AlgorithmId::Acf).unwrap();
        assert!(r.downgrade_candidates(acf, &budget).is_empty());
    }

    #[test]
    fn efficiency_ratio() {
        let p = test_profile(AlgorithmId::Acf, 0.5, 0.1);
        assert!((p.efficiency() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profiles_rejected() {
        assert!(TrainingRecord::new("x", video(), vec![]).is_err());
    }
}
