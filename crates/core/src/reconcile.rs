//! Deterministic state reconciliation for healing network partitions.
//!
//! While a partition is up, each island runs its own acting controller:
//! an epoch-numbered seat with a private assessment cache, quarantine
//! ledger, and standing plan. When islands see each other again, their
//! seats must collapse back into one — and the merged state must not
//! depend on *which* seat merges first, or the healed run would not
//! replay deterministically.
//!
//! [`reconcile`] is therefore a pure join on [`SeatSnapshot`]s with the
//! usual CRDT algebra — commutative, associative, idempotent (see
//! `tests/properties.rs`):
//!
//! * the **epoch** of the merge is the max of the inputs — fencing
//!   never regresses;
//! * the **plan** (seat, plan round, assignment, active set) is adopted
//!   wholesale from the seat with the highest `(epoch, plan_round)`,
//!   ties broken toward the hub and then the lowest camera index —
//!   a total order, so every merge order elects the same winner;
//! * **assessment cache** slots merge per camera by `(epoch, entry
//!   round, heard round)` recency;
//! * **quarantine** entries union per `(camera, algorithm)` pair,
//!   keeping the max strike count and the latest eligibility round —
//!   a camera never escapes quarantine by switching islands;
//! * **membership** sets union (sorted, deduplicated) — a camera that
//!   joined the fleet inside one island is a member of the healed
//!   fleet; whether it is *currently* present stays a pure function of
//!   the churn plan, so the union never resurrects a departed camera.
//!
//! Cache-slot ties rely on a system invariant: a seat at a given epoch
//! records each camera's assessment for a given round exactly once, so
//! two slots with identical `(epoch, entry round, heard round)` keys
//! carry identical payloads and either may win.

use crate::checkpoint::CacheSlot;
use eecs_detect::detection::AlgorithmId;
use std::collections::BTreeMap;

/// Everything one controller seat contributes to a reconciliation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeatSnapshot {
    /// The seat's fencing epoch.
    pub epoch: u64,
    /// Where the seat runs: `None` for the mains hub, `Some(j)` for an
    /// acting camera controller.
    pub seat: Option<usize>,
    /// Round the seat last produced a fresh plan in.
    pub plan_round: usize,
    /// The standing camera → algorithm assignment.
    pub assignment: BTreeMap<usize, AlgorithmId>,
    /// The standing active-camera set.
    pub active: Vec<usize>,
    /// Per-camera assessment-cache slots, each stamped with the epoch it
    /// was last written under.
    pub cache: Vec<CacheSlot>,
    /// Quarantine entries `(camera, algorithm, strikes, eligible_round)`.
    pub quarantine: Vec<(usize, AlgorithmId, u32, usize)>,
    /// Camera indices this seat has ever admitted to the fleet, sorted
    /// and deduplicated.
    pub members: Vec<usize>,
}

/// The plan-adoption priority of a snapshot: higher wins. Total order —
/// the hub outranks cameras at equal `(epoch, plan_round)`, and lower
/// camera indices outrank higher ones.
fn plan_priority(s: &SeatSnapshot) -> (u64, usize, usize) {
    let seat_rank = match s.seat {
        None => usize::MAX,
        Some(j) => usize::MAX - 1 - j,
    };
    (s.epoch, s.plan_round, seat_rank)
}

/// The per-camera cache recency key: later epochs beat earlier ones,
/// then fresher entries, then fresher heard-rounds. Empty slots rank
/// below everything that holds data at the same epoch.
fn slot_key(slot: &CacheSlot) -> (u64, usize, usize) {
    (
        slot.epoch,
        slot.entry.as_ref().map_or(0, |(r, _)| r + 1),
        slot.heard.map_or(0, |r| r + 1),
    )
}

/// Joins two seat states into the state the surviving seat carries on
/// with. Pure, commutative, associative, and idempotent; the merged
/// epoch is exactly `max(a.epoch, b.epoch)`.
pub fn reconcile(a: &SeatSnapshot, b: &SeatSnapshot) -> SeatSnapshot {
    let winner = if plan_priority(b) > plan_priority(a) {
        b
    } else {
        a
    };

    let cams = a.cache.len().max(b.cache.len());
    let empty = CacheSlot::default();
    let cache = (0..cams)
        .map(|j| {
            let sa = a.cache.get(j).unwrap_or(&empty);
            let sb = b.cache.get(j).unwrap_or(&empty);
            if slot_key(sb) > slot_key(sa) {
                sb.clone()
            } else {
                sa.clone()
            }
        })
        .collect();

    let mut quarantine: BTreeMap<(usize, AlgorithmId), (u32, usize)> = BTreeMap::new();
    for &(cam, alg, strikes, until) in a.quarantine.iter().chain(&b.quarantine) {
        let entry = quarantine.entry((cam, alg)).or_insert((0, 0));
        entry.0 = entry.0.max(strikes);
        entry.1 = entry.1.max(until);
    }

    let mut members: Vec<usize> = a.members.iter().chain(&b.members).copied().collect();
    members.sort_unstable();
    members.dedup();

    SeatSnapshot {
        epoch: a.epoch.max(b.epoch),
        seat: winner.seat,
        plan_round: winner.plan_round,
        assignment: winner.assignment.clone(),
        active: winner.active.clone(),
        cache,
        quarantine: quarantine
            .into_iter()
            .map(|((cam, alg), (strikes, until))| (cam, alg, strikes, until))
            .collect(),
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(epoch: u64, seat: Option<usize>, plan_round: usize) -> SeatSnapshot {
        SeatSnapshot {
            epoch,
            seat,
            plan_round,
            assignment: [(0, AlgorithmId::Hog)].into(),
            active: vec![0],
            cache: vec![CacheSlot::default(); 2],
            quarantine: Vec::new(),
            members: vec![0, 1],
        }
    }

    #[test]
    fn highest_epoch_plan_wins_and_epoch_is_max() {
        let hub = snap(1, None, 5);
        let acting = snap(2, Some(3), 4);
        let merged = reconcile(&hub, &acting);
        assert_eq!(merged.epoch, 2);
        assert_eq!(merged.seat, Some(3), "the fenced-ahead seat keeps it");
        assert_eq!(merged.plan_round, 4);
        assert_eq!(reconcile(&acting, &hub), merged, "order-independent");
    }

    #[test]
    fn ties_break_toward_hub_then_lowest_camera() {
        let hub = snap(1, None, 5);
        let cam = snap(1, Some(0), 5);
        assert_eq!(reconcile(&hub, &cam).seat, None);
        let c1 = snap(1, Some(1), 5);
        let c2 = snap(1, Some(2), 5);
        assert_eq!(reconcile(&c2, &c1).seat, Some(1));
    }

    #[test]
    fn cache_slots_merge_by_epoch_round_recency() {
        let mut a = snap(1, None, 0);
        let mut b = snap(2, Some(0), 0);
        // Camera 0: a heard it later but at a lower epoch — b wins.
        a.cache[0] = CacheSlot {
            epoch: 1,
            heard: Some(9),
            entry: None,
        };
        b.cache[0] = CacheSlot {
            epoch: 2,
            heard: Some(4),
            entry: None,
        };
        // Camera 1: same epoch, a has the fresher entry round.
        a.cache[1] = CacheSlot {
            epoch: 2,
            heard: Some(6),
            entry: Some((6, BTreeMap::new())),
        };
        b.cache[1] = CacheSlot {
            epoch: 2,
            heard: Some(5),
            entry: Some((5, BTreeMap::new())),
        };
        let merged = reconcile(&a, &b);
        assert_eq!(merged.cache[0].heard, Some(4));
        assert_eq!(merged.cache[1].heard, Some(6));
        assert_eq!(reconcile(&b, &a), merged);
    }

    #[test]
    fn quarantine_unions_keep_the_worst_of_both() {
        let mut a = snap(1, None, 0);
        let mut b = snap(1, Some(0), 0);
        a.quarantine = vec![(0, AlgorithmId::Acf, 2, 7), (1, AlgorithmId::Hog, 1, 3)];
        b.quarantine = vec![(0, AlgorithmId::Acf, 1, 9)];
        let merged = reconcile(&a, &b);
        assert_eq!(
            merged.quarantine,
            vec![(0, AlgorithmId::Acf, 2, 9), (1, AlgorithmId::Hog, 1, 3)]
        );
        assert_eq!(reconcile(&b, &a), merged);
        assert_eq!(reconcile(&merged, &merged), merged, "idempotent");
    }

    #[test]
    fn membership_unions_sorted_and_deduplicated() {
        let mut a = snap(1, None, 0);
        let mut b = snap(1, Some(0), 0);
        a.members = vec![0, 1, 3];
        b.members = vec![1, 2];
        let merged = reconcile(&a, &b);
        assert_eq!(merged.members, vec![0, 1, 2, 3]);
        assert_eq!(reconcile(&b, &a), merged, "commutative");
        assert_eq!(reconcile(&merged, &merged), merged, "idempotent");
    }
}
