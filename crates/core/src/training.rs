//! Offline training (Section IV-A).
//!
//! "The controller applies each available detection algorithm to process
//! each training item, and measures the computational cost and the
//! detection accuracy achieved (a total of H × N combinations)." The
//! result, per training item, is a [`TrainingRecord`]: the f-score-optimal
//! threshold `d_t`, precision/recall/f-score at that threshold, per-frame
//! energy (processing plus the algorithm-independent cost of shipping
//! detected-object images), the processing-time model, and the Platt score
//! calibration.

use crate::config::EecsConfig;
use crate::features::FeatureExtractor;
use crate::profile::{AlgorithmProfile, TrainingRecord};
use crate::Result;
use eecs_detect::bank::DetectorBank;
use eecs_detect::detection::DetectionOutput;
use eecs_detect::detection::{AlgorithmId, Detection};
use eecs_detect::eval::ThresholdSweep;
use eecs_detect::probability::ScoreCalibration;
use eecs_detect::Detector;
use eecs_energy::comm::jpeg_frame_bytes;
use eecs_scene::sequence::FrameData;

/// Runs the detector over every frame on a small pool of scoped threads,
/// preserving frame order. Deterministic: each output depends only on its
/// own frame.
pub fn detect_all(detector: &dyn Detector, frames: &[FrameData]) -> Vec<DetectionOutput> {
    crate::par::par_map_indexed(frames.len(), 0, |i| detector.detect(&frames[i].image))
}

/// Trains one record from a training segment's annotated frames.
///
/// `frames` should be the ground-truth-annotated frames of the item's
/// training segment (the paper trains thresholds on frames 0–1000 of each
/// feed). `key_frames` (a subset of the same segment, or the same frames)
/// feed the manifold video item.
///
/// # Errors
///
/// Propagates feature-extraction failures; individual algorithm profiles
/// degrade gracefully (calibration falls back to a sigmoid anchored at the
/// threshold when Platt fitting is degenerate).
pub fn train_record(
    name: &str,
    frames: &[FrameData],
    key_frames: &[FrameData],
    extractor: &FeatureExtractor,
    bank: &DetectorBank,
    config: &EecsConfig,
) -> Result<TrainingRecord> {
    let key_images: Vec<_> = key_frames.iter().map(|f| f.image.clone()).collect();
    let video = extractor.extract_video(name, &key_images)?;

    let mut profiles = Vec::new();
    for (algorithm, detector) in bank.all() {
        profiles.push(profile_algorithm(algorithm, detector, frames, config));
    }
    TrainingRecord::new(name, video, profiles)
}

/// Measures one algorithm on a set of annotated frames.
///
/// Frames are processed on scoped worker threads (each camera in the real
/// testbed computes independently; here the independence buys wall-clock
/// speed for the H × N offline-training sweep).
pub fn profile_algorithm(
    algorithm: AlgorithmId,
    detector: &dyn Detector,
    frames: &[FrameData],
    config: &EecsConfig,
) -> AlgorithmProfile {
    let outputs = detect_all(detector, frames);
    let mut per_frame: Vec<(Vec<Detection>, Vec<eecs_scene::ground_truth::GtBox>)> = Vec::new();
    let mut total_ops = 0u64;
    let mut frame_px = (0usize, 0usize);
    for (frame, out) in frames.iter().zip(outputs) {
        total_ops += out.ops;
        frame_px = (frame.image.width(), frame.image.height());
        per_frame.push((out.detections, frame.gt.clone()));
    }
    let n = frames.len().max(1) as f64;

    // Threshold selection: d_t maximizing f-score (Section VI-A).
    let sweep = ThresholdSweep::run(&per_frame, &config.eval, 64);
    let (threshold, counts) = sweep.best();

    // Energy: mean processing + the algorithm-independent communication
    // cost, estimated (as in Section VI) by assuming the whole JPEG frame
    // is transferred — an upper bound on the cropped-object transfer.
    let processing = config.device.processing_energy(total_ops) / n;
    let comm = config
        .link
        .transmit_energy(jpeg_frame_bytes(frame_px.0, frame_px.1), &config.device);
    let processing_time = config.device.processing_time(total_ops) / n;

    // Score calibration on the same frames; degenerate label sets — or a
    // fit whose slope came out non-positive (higher score must never mean
    // lower confidence) — fall back to a unit-slope sigmoid centered at the
    // threshold.
    let calibration = ScoreCalibration::fit(&per_frame, &config.eval)
        .ok()
        .filter(|c| c.parts().0 > 0.0)
        .unwrap_or_else(|| ScoreCalibration::from_parts(1.0, -threshold));

    AlgorithmProfile {
        algorithm,
        threshold,
        recall: counts.recall(),
        precision: counts.precision(),
        f_score: counts.f_score(),
        energy_per_frame_j: processing + comm,
        processing_time_s: processing_time,
        calibration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eecs_scene::dataset::{DatasetId, DatasetProfile};
    use eecs_scene::sequence::VideoFeed;

    fn setup() -> (Vec<FrameData>, FeatureExtractor, DetectorBank) {
        let feed = VideoFeed::open(DatasetProfile::miniature(DatasetId::Lab), 0);
        let frames = feed.annotated_frames(0, 40);
        let images: Vec<_> = frames.iter().map(|f| f.image.clone()).collect();
        let extractor = FeatureExtractor::build(&images, 12, 5).unwrap();
        let bank = DetectorBank::train_quick(9).unwrap();
        (frames, extractor, bank)
    }

    #[test]
    fn record_contains_all_four_algorithms() {
        let (frames, extractor, bank) = setup();
        let record = train_record(
            "T_1.1",
            &frames,
            &frames,
            &extractor,
            &bank,
            &EecsConfig::default(),
        )
        .unwrap();
        assert_eq!(record.profiles.len(), 4);
        assert_eq!(record.name, "T_1.1");
        assert_eq!(record.video.num_frames(), frames.len());
        for alg in AlgorithmId::ALL {
            let p = record.profile(alg).unwrap();
            assert!((0.0..=1.0).contains(&p.f_score), "{alg}: f={}", p.f_score);
            assert!(p.energy_per_frame_j > 0.0);
            assert!(p.processing_time_s > 0.0);
        }
    }

    #[test]
    fn acf_is_cheapest_lsvm_not_cheapest() {
        let (frames, extractor, bank) = setup();
        let record = train_record(
            "T",
            &frames,
            &frames,
            &extractor,
            &bank,
            &EecsConfig::default(),
        )
        .unwrap();
        let energy = |a| record.profile(a).unwrap().energy_per_frame_j;
        assert!(energy(AlgorithmId::Acf) < energy(AlgorithmId::Hog));
        assert!(energy(AlgorithmId::Acf) < energy(AlgorithmId::Lsvm));
        assert!(energy(AlgorithmId::Acf) < energy(AlgorithmId::C4));
    }

    #[test]
    fn parallel_detection_matches_sequential() {
        let (frames, _, bank) = setup();
        let det = bank.detector(AlgorithmId::Acf);
        let parallel = detect_all(det, &frames[..4]);
        let sequential: Vec<_> = frames[..4].iter().map(|f| det.detect(&f.image)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn probabilities_monotone_in_score() {
        let (frames, extractor, bank) = setup();
        let record = train_record(
            "T",
            &frames,
            &frames,
            &extractor,
            &bank,
            &EecsConfig::default(),
        )
        .unwrap();
        for alg in AlgorithmId::ALL {
            let cal = &record.profile(alg).unwrap().calibration;
            assert!(cal.probability(5.0) >= cal.probability(-5.0), "{alg}");
        }
    }
}
