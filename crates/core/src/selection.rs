//! Resource-aware camera-subset and algorithm selection
//! (Sections IV-B.3 and IV-B.4).

use crate::accuracy::{DesiredAccuracy, GlobalAccuracy};
use crate::config::EecsConfig;
use crate::metadata::CameraReport;
use crate::profile::TrainingRecord;
use crate::reid::{fuse_reports, FusedObject, ReidConfig};
use crate::{EecsError, Result};
use eecs_detect::detection::AlgorithmId;
use eecs_energy::budget::EnergyBudget;
use eecs_geometry::calibration::GroundCalibration;
use std::collections::BTreeMap;

/// The detection metadata gathered during one accuracy-assessment period:
/// for every camera and every budget-feasible algorithm, one
/// [`CameraReport`] per assessed frame.
#[derive(Debug, Clone, Default)]
pub struct AssessmentData {
    /// `reports[camera][algorithm][frame]`.
    pub reports: Vec<BTreeMap<AlgorithmId, Vec<CameraReport>>>,
}

impl AssessmentData {
    /// Number of cameras represented.
    pub fn cameras(&self) -> usize {
        self.reports.len()
    }

    /// Fuses, frame by frame, the reports of the given `(camera →
    /// algorithm)` assignment and aggregates the global accuracy.
    pub fn accuracy_for(
        &self,
        assignment: &BTreeMap<usize, AlgorithmId>,
        calibrations: &[GroundCalibration],
        reid: &ReidConfig,
    ) -> GlobalAccuracy {
        let frames = assignment
            .iter()
            .filter_map(|(&cam, alg)| {
                self.reports
                    .get(cam)
                    .and_then(|m| m.get(alg))
                    .map(|v| v.len())
            })
            .max()
            .unwrap_or(0);
        let mut all_objects: Vec<FusedObject> = Vec::new();
        for f in 0..frames {
            let frame_reports: Vec<CameraReport> = assignment
                .iter()
                .filter_map(|(&cam, alg)| {
                    self.reports
                        .get(cam)
                        .and_then(|m| m.get(alg))
                        .and_then(|v| v.get(f))
                        .cloned()
                })
                .collect();
            all_objects.extend(fuse_reports(&frame_reports, calibrations, reid));
        }
        GlobalAccuracy::from_objects(&all_objects)
    }
}

/// The controller's decision for one recalibration round.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// Chosen cameras `S'`, ascending index order.
    pub active: Vec<usize>,
    /// The algorithm each active camera must run.
    pub assignment: BTreeMap<usize, AlgorithmId>,
    /// Baseline accuracy (`N*`, `P*`): all feasible cameras, best
    /// algorithms.
    pub baseline: GlobalAccuracy,
    /// The derived requirement `D`.
    pub desired: DesiredAccuracy,
    /// The accuracy estimate of the final assignment on the assessment
    /// data.
    pub achieved: GlobalAccuracy,
}

/// Runs the greedy selection of Sections IV-B.3/IV-B.4.
///
/// `records[j]` is the training record matched (via domain adaptation) to
/// camera `j`; `budgets[j]` its per-frame energy budget. When `downgrade`
/// is false, the algorithm stops after the camera-subset step (the middle
/// bars of Figs. 5–6).
///
/// # Errors
///
/// Returns [`EecsError::Infeasible`] when no camera has any
/// budget-feasible algorithm, or [`EecsError::InvalidArgument`] on
/// mismatched slice lengths.
pub fn select_cameras_and_algorithms(
    data: &AssessmentData,
    records: &[&TrainingRecord],
    budgets: &[EnergyBudget],
    calibrations: &[GroundCalibration],
    config: &EecsConfig,
    reid: &ReidConfig,
    downgrade: bool,
) -> Result<SelectionOutcome> {
    let m = data.cameras();
    if records.len() != m || budgets.len() != m || calibrations.len() < m {
        return Err(EecsError::InvalidArgument(format!(
            "mismatched inputs: {} cameras, {} records, {} budgets, {} calibrations",
            m,
            records.len(),
            budgets.len(),
            calibrations.len()
        )));
    }

    // Best feasible algorithm per camera (A_j*).
    let mut best: BTreeMap<usize, AlgorithmId> = BTreeMap::new();
    for j in 0..m {
        if let Some(p) = records[j].best_within_budget(&budgets[j]) {
            best.insert(j, p.algorithm);
        }
    }
    if best.is_empty() {
        return Err(EecsError::Infeasible(
            "no camera has a budget-feasible algorithm".into(),
        ));
    }

    // Baseline N*, P*: every feasible camera with its best algorithm.
    let baseline = data.accuracy_for(&best, calibrations, reid);
    let desired = DesiredAccuracy::from_baseline(&baseline, config.gamma_n, config.gamma_p);

    // Rank cameras by individual accuracy (objects, then probability).
    let mut ranked: Vec<usize> = best.keys().copied().collect();
    let individual: BTreeMap<usize, GlobalAccuracy> = ranked
        .iter()
        .map(|&j| {
            let solo: BTreeMap<usize, AlgorithmId> = [(j, best[&j])].into();
            (j, data.accuracy_for(&solo, calibrations, reid))
        })
        .collect();
    ranked.sort_by(|&a, &b| {
        let (ia, ib) = (&individual[&a], &individual[&b]);
        ib.objects
            .cmp(&ia.objects)
            .then(
                ib.mean_probability
                    .partial_cmp(&ia.mean_probability)
                    .unwrap(),
            )
            .then(a.cmp(&b))
    });

    // Greedy prefix: smallest set of top-ranked cameras meeting D.
    let mut assignment: BTreeMap<usize, AlgorithmId> = BTreeMap::new();
    let mut achieved = GlobalAccuracy::default();
    for &j in &ranked {
        assignment.insert(j, best[&j]);
        achieved = data.accuracy_for(&assignment, calibrations, reid);
        if desired.met_by(&achieved) {
            break;
        }
    }

    // Algorithm downgrades, least-accurate camera first (reverse rank).
    if downgrade {
        let mut order: Vec<usize> = ranked
            .iter()
            .copied()
            .filter(|j| assignment.contains_key(j))
            .collect();
        order.reverse();
        'cameras: for j in order {
            let current_alg = assignment[&j];
            let current = records[j]
                .profile(current_alg)
                .expect("assigned algorithm must be profiled");
            let candidates =
                records[j].downgrade_candidates_with(current, &budgets[j], config.downgrade_rule);
            for cand in &candidates {
                let mut trial = assignment.clone();
                trial.insert(j, cand.algorithm);
                let trial_acc = data.accuracy_for(&trial, calibrations, reid);
                if desired.met_by(&trial_acc) {
                    assignment = trial;
                    achieved = trial_acc;
                    continue 'cameras;
                }
            }
            // Paper IV-B.4: "If such an algorithm is not found, then this
            // process stops."
            break;
        }
    }

    Ok(SelectionOutcome {
        active: assignment.keys().copied().collect(),
        assignment,
        baseline,
        desired,
        achieved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::ObjectMetadata;
    use crate::profile::test_profile;
    use eecs_detect::detection::BBox;
    use eecs_geometry::calibration::landmark_grid;
    use eecs_geometry::camera::Camera;
    use eecs_geometry::point::{Point2, Point3};
    use eecs_linalg::Mat;
    use eecs_manifold::video::VideoItem;

    /// Four cameras around a 10 m arena.
    fn rig() -> (Vec<Camera>, Vec<GroundCalibration>) {
        let mk = |x: f64, y: f64, yaw: f64| {
            Camera::new(Point3::new(x, y, 2.8), yaw, 0.35, 320.0, 360, 288)
        };
        let cams = vec![
            mk(5.0, -6.0, std::f64::consts::FRAC_PI_2),
            mk(-6.0, 5.0, 0.0),
            mk(5.0, 16.0, -std::f64::consts::FRAC_PI_2),
            mk(16.0, 5.0, std::f64::consts::PI),
        ];
        let lm = landmark_grid(10.0, 5);
        let cals = cams
            .iter()
            .map(|c| GroundCalibration::from_camera(c, &lm).unwrap())
            .collect();
        (cams, cals)
    }

    fn record(f_hog: f64, f_acf: f64) -> TrainingRecord {
        TrainingRecord::new(
            "T",
            VideoItem::new("T", Mat::from_fn(3, 4, |i, j| (i + j) as f64)).unwrap(),
            vec![
                test_profile(AlgorithmId::Hog, f_hog, 1.08),
                test_profile(AlgorithmId::Acf, f_acf, 0.07),
                test_profile(AlgorithmId::C4, 0.63, 4.92),
                test_profile(AlgorithmId::Lsvm, 0.89, 3.31),
            ],
        )
        .unwrap()
    }

    /// Assessment data where `people` are all seen by all cameras with the
    /// given per-algorithm probability; `extra_solo[j]` adds objects only
    /// camera j sees with HOG (to differentiate camera quality).
    fn assessment(
        cams: &[Camera],
        people: &[Point2],
        prob_hog: f64,
        prob_acf: f64,
        acf_sees: &[bool],
    ) -> AssessmentData {
        let mut reports: Vec<BTreeMap<AlgorithmId, Vec<CameraReport>>> = Vec::new();
        for (j, cam) in cams.iter().enumerate() {
            let mut by_alg = BTreeMap::new();
            for (alg, p, sees) in [
                (AlgorithmId::Hog, prob_hog, true),
                (AlgorithmId::Acf, prob_acf, acf_sees[j]),
            ] {
                let mut objects = Vec::new();
                if sees {
                    for person in people {
                        if let Ok((x0, y0, x1, y1)) = cam.person_bbox(person, 1.7, 0.5) {
                            objects.push(ObjectMetadata {
                                camera: j,
                                bbox: BBox::new(x0, y0, x1, y1),
                                probability: p,
                                color: vec![0.5; 3],
                            });
                        }
                    }
                }
                by_alg.insert(alg, vec![CameraReport { objects }]);
            }
            reports.push(by_alg);
        }
        AssessmentData { reports }
    }

    fn reid() -> ReidConfig {
        ReidConfig {
            ground_gate_m: 0.9,
            color_gate: 8.0,
            color_metric: None,
        }
    }

    #[test]
    fn subset_smaller_than_full_rig_when_views_overlap() {
        let (cams, cals) = rig();
        let people = vec![
            Point2::new(4.0, 5.0),
            Point2::new(6.0, 5.0),
            Point2::new(5.0, 7.0),
        ];
        let data = assessment(&cams, &people, 0.9, 0.7, &[true; 4]);
        let rec = record(0.74, 0.66);
        let records = vec![&rec; 4];
        let budgets = vec![EnergyBudget::per_frame(1.2).unwrap(); 4];
        let out = select_cameras_and_algorithms(
            &data,
            &records,
            &budgets,
            &cals,
            &EecsConfig::default(),
            &reid(),
            false,
        )
        .unwrap();
        // All cameras see all people, so one camera already meets γ_n·N*;
        // γ_p then decides how many are needed — but certainly fewer than 4.
        assert!(out.active.len() < 4, "chose {:?}", out.active);
        assert!(out.desired.met_by(&out.achieved));
        for alg in out.assignment.values() {
            assert_eq!(*alg, AlgorithmId::Hog);
        }
    }

    #[test]
    fn downgrade_switches_to_acf_when_accuracy_allows() {
        let (cams, cals) = rig();
        let people = vec![Point2::new(4.0, 5.0), Point2::new(6.0, 5.0)];
        // ACF sees everything with decent probability: downgrades succeed.
        let data = assessment(&cams, &people, 0.9, 0.85, &[true; 4]);
        let rec = record(0.74, 0.66);
        let records = vec![&rec; 4];
        let budgets = vec![EnergyBudget::per_frame(1.2).unwrap(); 4];
        let out = select_cameras_and_algorithms(
            &data,
            &records,
            &budgets,
            &cals,
            &EecsConfig::default(),
            &reid(),
            true,
        )
        .unwrap();
        assert!(
            out.assignment.values().any(|&a| a == AlgorithmId::Acf),
            "expected at least one downgrade: {:?}",
            out.assignment
        );
        assert!(out.desired.met_by(&out.achieved));
    }

    #[test]
    fn no_downgrade_when_acf_blind() {
        let (cams, cals) = rig();
        let people = vec![Point2::new(4.0, 5.0), Point2::new(6.0, 5.0)];
        // ACF sees nothing: switching any camera to ACF would lose objects.
        let data = assessment(&cams, &people, 0.9, 0.8, &[false; 4]);
        let rec = record(0.74, 0.66);
        let records = vec![&rec; 4];
        let budgets = vec![EnergyBudget::per_frame(1.2).unwrap(); 4];
        let out = select_cameras_and_algorithms(
            &data,
            &records,
            &budgets,
            &cals,
            &EecsConfig::default(),
            &reid(),
            true,
        )
        .unwrap();
        assert!(out.assignment.values().all(|&a| a == AlgorithmId::Hog));
    }

    #[test]
    fn tight_budget_forces_acf_everywhere() {
        let (cams, cals) = rig();
        let people = vec![Point2::new(5.0, 5.0)];
        let data = assessment(&cams, &people, 0.9, 0.8, &[true; 4]);
        let rec = record(0.74, 0.66);
        let records = vec![&rec; 4];
        // Fig 5b regime: budget ∈ [0.07, 1.08).
        let budgets = vec![EnergyBudget::per_frame(0.5).unwrap(); 4];
        let out = select_cameras_and_algorithms(
            &data,
            &records,
            &budgets,
            &cals,
            &EecsConfig::default(),
            &reid(),
            true,
        )
        .unwrap();
        assert!(out.assignment.values().all(|&a| a == AlgorithmId::Acf));
    }

    #[test]
    fn infeasible_when_budget_below_everything() {
        let (cams, cals) = rig();
        let people = vec![Point2::new(5.0, 5.0)];
        let data = assessment(&cams, &people, 0.9, 0.8, &[true; 4]);
        let rec = record(0.74, 0.66);
        let records = vec![&rec; 4];
        let budgets = vec![EnergyBudget::per_frame(0.001).unwrap(); 4];
        assert!(matches!(
            select_cameras_and_algorithms(
                &data,
                &records,
                &budgets,
                &cals,
                &EecsConfig::default(),
                &reid(),
                true,
            ),
            Err(EecsError::Infeasible(_))
        ));
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let (_, cals) = rig();
        let data = AssessmentData {
            reports: vec![BTreeMap::new(); 4],
        };
        let rec = record(0.7, 0.6);
        let records = vec![&rec; 3]; // wrong length
        let budgets = vec![EnergyBudget::per_frame(1.0).unwrap(); 4];
        assert!(select_cameras_and_algorithms(
            &data,
            &records,
            &budgets,
            &cals,
            &EecsConfig::default(),
            &reid(),
            false,
        )
        .is_err());
    }
}
