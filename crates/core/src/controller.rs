//! The central controller.
//!
//! Holds the training library (video items + per-algorithm profiles),
//! performs domain-adaptation matching of incoming feeds, fits the
//! re-identification color metric, and runs the selection algorithm.
//! "Video analytics and algorithm selection happen at the controller to
//! avoid … executing processing-expensive domain adaptation at each
//! battery-operated camera sensor" (Section IV).

use crate::config::EecsConfig;
use crate::metadata::CameraReport;
use crate::profile::TrainingRecord;
use crate::reid::{fuse_reports, FusedObject, ReidConfig};
use crate::selection::{select_cameras_and_algorithms, AssessmentData, SelectionOutcome};
use crate::{EecsError, Result};
use eecs_detect::detection::AlgorithmId;
use eecs_energy::budget::EnergyBudget;
use eecs_geometry::calibration::GroundCalibration;
use eecs_linalg::stats::MahalanobisMetric;
use eecs_linalg::Mat;
use eecs_manifold::matcher::{MatchResult, TrainingLibrary};
use eecs_manifold::video::VideoItem;
use std::collections::BTreeMap;

/// Per-camera assessment reports as gathered in one round:
/// `reports[algorithm][frame]`.
pub type CameraAssessment = BTreeMap<AlgorithmId, Vec<CameraReport>>;

/// The controller's memory of each camera's last usable assessment, for
/// graceful degradation on a lossy network.
///
/// When a camera's fresh assessment uploads are lost, the controller can
/// keep planning with the camera's last-known data — up to a staleness
/// cap — provided it still *hears* from the camera (any delivered
/// message counts as a liveness signal). A camera that is both silent
/// and stale is excluded from selection instead of failing the round.
#[derive(Debug, Clone, Default)]
pub struct AssessmentCache {
    /// `(round gathered, reports)` per camera.
    data: Vec<Option<(usize, CameraAssessment)>>,
    /// Round each camera was last heard from (any delivered message).
    heard: Vec<Option<usize>>,
}

impl AssessmentCache {
    /// An empty cache for `cameras` cameras.
    pub fn new(cameras: usize) -> AssessmentCache {
        AssessmentCache {
            data: vec![None; cameras],
            heard: vec![None; cameras],
        }
    }

    /// Notes that any message from `camera` was delivered in `round`.
    pub fn mark_heard(&mut self, camera: usize, round: usize) {
        if let Some(h) = self.heard.get_mut(camera) {
            *h = Some(round);
        }
    }

    /// Stores `camera`'s fresh assessment gathered in `round` (and marks
    /// it heard).
    pub fn record(&mut self, camera: usize, round: usize, reports: CameraAssessment) {
        if let Some(d) = self.data.get_mut(camera) {
            *d = Some((round, reports));
        }
        self.mark_heard(camera, round);
    }

    /// Whether `camera` was heard from in `round` itself.
    pub fn heard_in(&self, camera: usize, round: usize) -> bool {
        self.heard.get(camera).copied().flatten() == Some(round)
    }

    /// The cached reports for `camera` if they are at most
    /// `staleness_limit` rounds older than `round`.
    pub fn usable(
        &self,
        camera: usize,
        round: usize,
        staleness_limit: usize,
    ) -> Option<&CameraAssessment> {
        match self.data.get(camera).and_then(|d| d.as_ref()) {
            Some((gathered, reports)) if round.saturating_sub(*gathered) <= staleness_limit => {
                Some(reports)
            }
            _ => None,
        }
    }

    /// Age in rounds of `camera`'s cached data at `round`, if any data
    /// exists.
    pub fn age(&self, camera: usize, round: usize) -> Option<usize> {
        self.data
            .get(camera)
            .and_then(|d| d.as_ref())
            .map(|(gathered, _)| round.saturating_sub(*gathered))
    }

    /// The round `camera` was last heard from, if ever — checkpoint
    /// export.
    pub fn heard_round(&self, camera: usize) -> Option<usize> {
        self.heard.get(camera).copied().flatten()
    }

    /// The cached `(round gathered, reports)` entry for `camera`,
    /// regardless of staleness — checkpoint export.
    pub fn entry(&self, camera: usize) -> Option<(usize, &CameraAssessment)> {
        self.data
            .get(camera)
            .and_then(|d| d.as_ref())
            .map(|(round, reports)| (*round, reports))
    }

    /// Evicts `camera`'s cached assessment if it is more than
    /// `staleness_limit` rounds older than `round`. Called when a camera
    /// rejoins the fleet: its identity is restored, but a cache entry
    /// gathered before it left must not outlive the same staleness bound
    /// that governs lossy-network degradation. Fresh-enough entries —
    /// and the liveness record — survive. Returns whether an entry was
    /// evicted.
    pub fn evict_stale(&mut self, camera: usize, round: usize, staleness_limit: usize) -> bool {
        match self.data.get_mut(camera) {
            Some(slot @ Some(_)) => {
                let (gathered, _) = slot.as_ref().expect("checked Some");
                if round.saturating_sub(*gathered) > staleness_limit {
                    *slot = None;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    /// Overwrites `camera`'s cache slot wholesale — checkpoint restore.
    /// Out-of-range cameras are ignored, matching `mark_heard`.
    pub fn restore_entry(
        &mut self,
        camera: usize,
        heard: Option<usize>,
        entry: Option<(usize, CameraAssessment)>,
    ) {
        if let Some(h) = self.heard.get_mut(camera) {
            *h = heard;
        }
        if let Some(d) = self.data.get_mut(camera) {
            *d = entry;
        }
    }
}

/// Backoff parameters of the detector quarantine (Section IV's controller
/// extended with self-healing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Rounds a pair sits out after its first strike.
    pub base_backoff_rounds: usize,
    /// Multiplier applied to the backoff for each further strike.
    pub backoff_factor: usize,
    /// Upper bound on a single backoff — this also bounds how long the
    /// controller can go without re-probing a quarantined pair.
    pub max_backoff_rounds: usize,
}

impl QuarantinePolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns a message when the backoff could stall (zero base or
    /// factor) or the cap undercuts the base (re-probe would never be
    /// scheduled consistently).
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.base_backoff_rounds == 0 {
            return Err("quarantine base backoff must be at least 1 round".into());
        }
        if self.backoff_factor == 0 {
            return Err("quarantine backoff factor must be at least 1".into());
        }
        if self.max_backoff_rounds < self.base_backoff_rounds {
            return Err("quarantine backoff cap must be at or above its base".into());
        }
        Ok(())
    }
}

impl Default for QuarantinePolicy {
    /// One round out after the first strike, doubling to a cap of 8 —
    /// a re-probe is always at most 8 rounds away.
    fn default() -> Self {
        QuarantinePolicy {
            base_backoff_rounds: 1,
            backoff_factor: 2,
            max_backoff_rounds: 8,
        }
    }
}

/// The controller's record of (camera, algorithm) pairs that produced
/// unhealthy detector output (see `eecs_detect::health`).
///
/// A struck pair is excluded from assessment for an exponentially growing
/// number of rounds, then automatically *re-probed*: once its backoff
/// expires, the next assessment round includes it again. A healthy
/// re-probe clears the entry entirely; another unhealthy one doubles the
/// backoff (up to the policy cap, which bounds the re-probe interval).
/// An empty ledger — the fault-free case — changes nothing anywhere.
#[derive(Debug, Clone, Default)]
pub struct QuarantineLedger {
    /// `(strikes, first round the pair may be probed again)` per pair.
    entries: BTreeMap<(usize, AlgorithmId), (u32, usize)>,
}

impl QuarantineLedger {
    /// An empty ledger.
    pub fn new() -> QuarantineLedger {
        QuarantineLedger::default()
    }

    /// The backoff `policy` assigns to a pair with `strikes` strikes:
    /// `base · factor^(strikes-1)`, saturating at the cap. Monotone in
    /// `strikes` and never above `max_backoff_rounds`.
    pub fn backoff_rounds(policy: &QuarantinePolicy, strikes: u32) -> usize {
        if strikes == 0 {
            return 0;
        }
        let mut backoff = policy.base_backoff_rounds;
        for _ in 1..strikes {
            backoff = backoff.saturating_mul(policy.backoff_factor);
            if backoff >= policy.max_backoff_rounds {
                return policy.max_backoff_rounds;
            }
        }
        backoff.min(policy.max_backoff_rounds)
    }

    /// Records an unhealthy output from `(camera, algorithm)` observed in
    /// `round`: one more strike, and the pair sits out the next
    /// `backoff_rounds(policy, strikes)` rounds — it becomes eligible
    /// again (is re-probed) at round `round + 1 + backoff`.
    pub fn report_unhealthy(
        &mut self,
        camera: usize,
        algorithm: AlgorithmId,
        round: usize,
        policy: &QuarantinePolicy,
    ) {
        let entry = self.entries.entry((camera, algorithm)).or_insert((0, 0));
        entry.0 = entry.0.saturating_add(1);
        let backoff = QuarantineLedger::backoff_rounds(policy, entry.0);
        entry.1 = round + 1 + backoff;
    }

    /// Records a healthy output from `(camera, algorithm)`: the pair is
    /// fully rehabilitated and forgotten.
    pub fn report_healthy(&mut self, camera: usize, algorithm: AlgorithmId) {
        self.entries.remove(&(camera, algorithm));
    }

    /// Defers every re-probe of `camera` that is due at `round` to
    /// `round + 1`, without touching strike counts. Called when the
    /// camera is unreachable (crashed, in outage, or partitioned away
    /// from its seat): the scheduled re-probe cannot physically happen,
    /// and letting the due round slip by would silently burn it — the
    /// pair must get its health check the moment the camera returns, at
    /// its current strike level, not an escalated one. Returns how many
    /// probes were deferred.
    pub fn defer_probes(&mut self, camera: usize, round: usize) -> usize {
        let mut deferred = 0;
        for (&(cam, _), entry) in self.entries.iter_mut() {
            if cam == camera && entry.1 <= round {
                entry.1 = round + 1;
                deferred += 1;
            }
        }
        deferred
    }

    /// Removes every entry for `camera` — strikes, backoffs and pending
    /// re-probes alike. Called when the camera departs the fleet: the
    /// ledger is keyed by camera index, and an entry left behind would
    /// dangle (a re-probe of a camera that no longer exists) or alias a
    /// future member reusing the index. A later rejoin starts with a
    /// clean slate, like any newcomer. Returns how many entries were
    /// purged.
    pub fn purge_camera(&mut self, camera: usize) -> usize {
        let before = self.entries.len();
        self.entries.retain(|&(cam, _), _| cam != camera);
        before - self.entries.len()
    }

    /// Whether `(camera, algorithm)` may be assessed in `round`. A pair
    /// struck in round `s` with backoff `b` is excluded from rounds
    /// `s+1 ..= s+b` and re-probed from round `s+1+b` on.
    pub fn allows(&self, camera: usize, algorithm: AlgorithmId, round: usize) -> bool {
        match self.entries.get(&(camera, algorithm)) {
            Some((_, until)) => round >= *until,
            None => true,
        }
    }

    /// Current strike count of `(camera, algorithm)`.
    pub fn strikes(&self, camera: usize, algorithm: AlgorithmId) -> u32 {
        self.entries
            .get(&(camera, algorithm))
            .map(|(s, _)| *s)
            .unwrap_or(0)
    }

    /// Number of pairs currently holding strikes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair holds a strike.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry as `(camera, algorithm, strikes, eligible_round)` —
    /// checkpoint export.
    pub fn export(&self) -> Vec<(usize, AlgorithmId, u32, usize)> {
        self.entries
            .iter()
            .map(|(&(cam, alg), &(strikes, until))| (cam, alg, strikes, until))
            .collect()
    }

    /// Rebuilds a ledger from exported entries — checkpoint restore.
    pub fn from_entries(entries: Vec<(usize, AlgorithmId, u32, usize)>) -> QuarantineLedger {
        QuarantineLedger {
            entries: entries
                .into_iter()
                .map(|(cam, alg, strikes, until)| ((cam, alg), (strikes, until)))
                .collect(),
        }
    }
}

/// The EECS central controller.
#[derive(Debug, Clone)]
pub struct Controller {
    config: EecsConfig,
    records: Vec<TrainingRecord>,
    library: TrainingLibrary,
    calibrations: Vec<GroundCalibration>,
}

impl Controller {
    /// Builds a controller from offline-training records and the rig's
    /// ground calibrations.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::InvalidArgument`] with no records, or
    /// propagates manifold errors for degenerate video items.
    pub fn new(
        records: Vec<TrainingRecord>,
        calibrations: Vec<GroundCalibration>,
        config: EecsConfig,
    ) -> Result<Controller> {
        config.validate()?;
        if records.is_empty() {
            return Err(EecsError::InvalidArgument(
                "controller needs at least one training record".into(),
            ));
        }
        let mut library = TrainingLibrary::new(config.similarity);
        for r in &records {
            library.add(r.video.clone())?;
        }
        Ok(Controller {
            config,
            records,
            library,
            calibrations,
        })
    }

    /// The framework configuration.
    pub fn config(&self) -> &EecsConfig {
        &self.config
    }

    /// All training records.
    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    /// The rig's ground calibrations.
    pub fn calibrations(&self) -> &[GroundCalibration] {
        &self.calibrations
    }

    /// Matches an uploaded feed to the closest training item
    /// (Section IV-B.2) and returns the match plus the record.
    ///
    /// # Errors
    ///
    /// Propagates manifold errors.
    pub fn match_feed(&self, query: &VideoItem) -> Result<(MatchResult, &TrainingRecord)> {
        let m = self.library.best_match(query)?;
        let record = &self.records[m.best_index];
        Ok((m, record))
    }

    /// Fits the Mahalanobis color metric from the color features present in
    /// assessment data (the paper fits it offline on training features; the
    /// assessment set is our training sample). Returns `None` when too few
    /// features exist.
    pub fn fit_color_metric(&self, data: &AssessmentData) -> Option<MahalanobisMetric> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for cam in &data.reports {
            for reports in cam.values() {
                for r in reports {
                    for o in &r.objects {
                        if !o.color.is_empty() {
                            rows.push(o.color.clone());
                        }
                    }
                }
            }
        }
        if rows.len() < 8 {
            return None;
        }
        let dim = rows[0].len();
        if rows.iter().any(|r| r.len() != dim) {
            return None;
        }
        let data_mat = Mat::from_row_vecs(&rows);
        MahalanobisMetric::fit(&data_mat, 1e-3).ok()
    }

    /// The re-identification configuration with an optional fitted metric.
    pub fn reid_config(&self, color_metric: Option<MahalanobisMetric>) -> ReidConfig {
        ReidConfig {
            ground_gate_m: self.config.reid_ground_gate_m,
            color_gate: self.config.reid_color_gate,
            color_metric,
        }
    }

    /// Fuses one frame's camera reports into distinct objects.
    pub fn fuse(
        &self,
        reports: &[crate::metadata::CameraReport],
        reid: &ReidConfig,
    ) -> Vec<FusedObject> {
        fuse_reports(reports, &self.calibrations, reid)
    }

    /// Runs the full selection (Sections IV-B.3/4) given assessment data,
    /// the matched record index per camera, and per-camera budgets.
    ///
    /// # Errors
    ///
    /// Propagates selection errors ([`EecsError::Infeasible`] and input
    /// mismatches).
    pub fn select(
        &self,
        data: &AssessmentData,
        matched_record: &[usize],
        budgets: &[EnergyBudget],
        reid: &ReidConfig,
        downgrade: bool,
    ) -> Result<SelectionOutcome> {
        let records: Vec<&TrainingRecord> = matched_record
            .iter()
            .map(|&i| {
                self.records.get(i).ok_or_else(|| {
                    EecsError::InvalidArgument(format!("record index {i} out of range"))
                })
            })
            .collect::<Result<_>>()?;
        select_cameras_and_algorithms(
            data,
            &records,
            budgets,
            &self.calibrations,
            &self.config,
            reid,
            downgrade,
        )
    }

    /// Like [`Controller::select`], but considering only `live` cameras:
    /// a dead camera is masked out by zeroing its budget, which removes
    /// it from the feasible set without disturbing the greedy algorithm.
    ///
    /// # Errors
    ///
    /// [`EecsError::Infeasible`] when no live camera has a feasible
    /// algorithm (in particular when `live` is all-false — callers
    /// should skip selection entirely for an all-silent round), plus
    /// everything [`Controller::select`] returns.
    pub fn select_live(
        &self,
        data: &AssessmentData,
        matched_record: &[usize],
        budgets: &[EnergyBudget],
        reid: &ReidConfig,
        downgrade: bool,
        live: &[bool],
    ) -> Result<SelectionOutcome> {
        if live.len() != budgets.len() {
            return Err(EecsError::InvalidArgument(format!(
                "live mask covers {} cameras, budgets {}",
                live.len(),
                budgets.len()
            )));
        }
        let zero = EnergyBudget::per_frame(0.0).map_err(EecsError::from)?;
        let masked: Vec<EnergyBudget> = budgets
            .iter()
            .zip(live)
            .map(|(&b, &alive)| if alive { b } else { zero })
            .collect();
        let outcome = self.select(data, matched_record, &masked, reid, downgrade)?;
        let tel = &self.config.telemetry;
        tel.counter_add("controller.selections", 1);
        tel.counter_add(
            "controller.masked_cameras",
            live.iter().filter(|&&alive| !alive).count() as u64,
        );
        tel.gauge_set("controller.last_active", outcome.active.len() as f64);
        Ok(outcome)
    }

    /// Replaces the telemetry handle in this controller's config copy.
    /// `Simulation::with_telemetry` calls this so the controller and the
    /// simulation publish into one shared stream.
    pub fn set_telemetry(&mut self, telemetry: crate::telemetry::Telemetry) {
        self.config.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{CameraReport, ObjectMetadata};
    use crate::profile::test_profile;
    use eecs_detect::detection::{AlgorithmId, BBox};
    use std::collections::BTreeMap;

    fn video(dir: usize, seed: u64) -> VideoItem {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..8)
            .map(|_| {
                let a = rng.random_range(-0.1..0.1);
                let mut f = vec![0.05; 6];
                f[dir] = 1.0 + a;
                f[(dir + 1) % 6] = 0.6 + a;
                f
            })
            .collect();
        VideoItem::from_frames(format!("T{dir}"), &frames).unwrap()
    }

    fn record(dir: usize, seed: u64) -> TrainingRecord {
        TrainingRecord::new(
            format!("T{dir}"),
            video(dir, seed),
            vec![
                test_profile(AlgorithmId::Hog, 0.7, 1.0),
                test_profile(AlgorithmId::Acf, 0.6, 0.07),
            ],
        )
        .unwrap()
    }

    fn controller() -> Controller {
        let mut cfg = EecsConfig::default();
        cfg.similarity.beta = 2;
        Controller::new(
            vec![record(0, 1), record(2, 2), record(4, 3)],
            Vec::new(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn matches_feed_to_right_record() {
        let c = controller();
        let (m, rec) = c.match_feed(&video(2, 99)).unwrap();
        assert_eq!(m.best_index, 1);
        assert_eq!(rec.name, "T2");
    }

    #[test]
    fn rejects_empty_records() {
        assert!(Controller::new(Vec::new(), Vec::new(), EecsConfig::default()).is_err());
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = EecsConfig::default();
        cfg.gamma_n = 2.0;
        assert!(Controller::new(vec![record(0, 1)], Vec::new(), cfg).is_err());
    }

    #[test]
    fn color_metric_needs_enough_samples() {
        let c = controller();
        let empty = AssessmentData::default();
        assert!(c.fit_color_metric(&empty).is_none());

        // Rich data: 10 objects with varied colors.
        let mut by_alg = BTreeMap::new();
        let reports: Vec<CameraReport> = (0..10)
            .map(|i| CameraReport {
                objects: vec![ObjectMetadata {
                    camera: 0,
                    bbox: BBox::new(0.0, 0.0, 10.0, 20.0),
                    probability: 0.5,
                    color: vec![
                        i as f64 * 0.1,
                        1.0 - i as f64 * 0.05,
                        0.3 + (i % 3) as f64 * 0.2,
                    ],
                }],
            })
            .collect();
        by_alg.insert(AlgorithmId::Hog, reports);
        let data = AssessmentData {
            reports: vec![by_alg],
        };
        let metric = c.fit_color_metric(&data);
        assert!(metric.is_some());
        assert_eq!(metric.unwrap().dim(), 3);
    }

    #[test]
    fn select_validates_record_indices() {
        let c = controller();
        let data = AssessmentData {
            reports: vec![BTreeMap::new()],
        };
        let reid = c.reid_config(None);
        let budgets = vec![EnergyBudget::per_frame(1.0).unwrap()];
        assert!(c.select(&data, &[99], &budgets, &reid, false).is_err());
    }

    /// A controller with real ground calibrations, as `select` needs one
    /// per camera.
    fn calibrated_controller(cameras: usize) -> Controller {
        use eecs_geometry::calibration::landmark_grid;
        use eecs_geometry::camera::Camera;
        use eecs_geometry::point::Point3;
        let lm = landmark_grid(10.0, 5);
        let calibrations = (0..cameras)
            .map(|j| {
                let cam = Camera::new(
                    Point3::new(5.0 + j as f64, -6.0, 2.8),
                    std::f64::consts::FRAC_PI_2,
                    0.35,
                    320.0,
                    360,
                    288,
                );
                GroundCalibration::from_camera(&cam, &lm).unwrap()
            })
            .collect();
        let mut cfg = EecsConfig::default();
        cfg.similarity.beta = 2;
        Controller::new(vec![record(0, 1), record(2, 2)], calibrations, cfg).unwrap()
    }

    #[test]
    fn select_live_excludes_dead_cameras() {
        let c = calibrated_controller(2);
        let report = CameraReport {
            objects: vec![ObjectMetadata {
                camera: 0,
                bbox: BBox::new(0.0, 0.0, 10.0, 20.0),
                probability: 0.9,
                color: vec![0.5; 3],
            }],
        };
        let by_alg: CameraAssessment = [(AlgorithmId::Hog, vec![report])].into();
        let data = AssessmentData {
            reports: vec![by_alg.clone(), by_alg],
        };
        let reid = c.reid_config(None);
        let budgets = vec![EnergyBudget::per_frame(2.0).unwrap(); 2];

        let out = c
            .select_live(&data, &[0, 1], &budgets, &reid, false, &[true, false])
            .unwrap();
        assert!(!out.active.contains(&1), "dead camera 1 selected");

        // An all-dead round is infeasible — the caller must skip selection.
        assert!(matches!(
            c.select_live(&data, &[0, 1], &budgets, &reid, false, &[false, false]),
            Err(EecsError::Infeasible(_))
        ));
        // Mask length is validated.
        assert!(c
            .select_live(&data, &[0, 1], &budgets, &reid, false, &[true])
            .is_err());
    }

    #[test]
    fn quarantine_backoff_doubles_and_caps() {
        let policy = QuarantinePolicy::default();
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 0), 0);
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 1), 1);
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 2), 2);
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 3), 4);
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 4), 8);
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 5), 8, "capped");
        assert_eq!(QuarantineLedger::backoff_rounds(&policy, 100), 8);
        assert!(policy.validate().is_ok());
        assert!(QuarantinePolicy {
            base_backoff_rounds: 0,
            ..policy
        }
        .validate()
        .is_err());
        assert!(QuarantinePolicy {
            max_backoff_rounds: 0,
            ..policy
        }
        .validate()
        .is_err());
    }

    #[test]
    fn quarantine_excludes_then_reprobes_then_clears() {
        let policy = QuarantinePolicy::default();
        let mut ledger = QuarantineLedger::new();
        let pair = (1, AlgorithmId::Acf);
        assert!(ledger.allows(pair.0, pair.1, 0) && ledger.is_empty());

        // Strike in round 3: one round out (rounds 4), re-probe at 5.
        ledger.report_unhealthy(pair.0, pair.1, 3, &policy);
        assert_eq!(ledger.strikes(pair.0, pair.1), 1);
        assert!(!ledger.allows(pair.0, pair.1, 4));
        assert!(ledger.allows(pair.0, pair.1, 5), "re-probe after backoff");
        assert!(ledger.allows(2, AlgorithmId::Acf, 4), "other camera free");
        assert!(
            ledger.allows(1, AlgorithmId::Hog, 4),
            "other algorithm free"
        );

        // Second strike at the re-probe: two rounds out.
        ledger.report_unhealthy(pair.0, pair.1, 5, &policy);
        assert!(!ledger.allows(pair.0, pair.1, 6) && !ledger.allows(pair.0, pair.1, 7));
        assert!(ledger.allows(pair.0, pair.1, 8));

        // A healthy re-probe clears everything.
        ledger.report_healthy(pair.0, pair.1);
        assert_eq!(ledger.strikes(pair.0, pair.1), 0);
        assert!(ledger.allows(pair.0, pair.1, 6));
        assert!(ledger.is_empty());
    }

    #[test]
    fn quarantine_defer_probe_postpones_without_escalating() {
        let policy = QuarantinePolicy::default();
        let mut ledger = QuarantineLedger::new();
        let pair = (1, AlgorithmId::Acf);
        // Strike in round 3 ⇒ re-probe due at round 5.
        ledger.report_unhealthy(pair.0, pair.1, 3, &policy);
        assert!(ledger.allows(pair.0, pair.1, 5));

        // Camera unreachable in round 5: the re-probe slides to 6, the
        // strike count does not move.
        assert_eq!(ledger.defer_probes(1, 5), 1);
        assert!(!ledger.allows(pair.0, pair.1, 5));
        assert!(ledger.allows(pair.0, pair.1, 6));
        assert_eq!(ledger.strikes(pair.0, pair.1), 1, "no escalation");

        // Deferring again in the same round is idempotent (the probe
        // already slid past it), and other cameras are never affected.
        ledger.report_unhealthy(2, AlgorithmId::Hog, 5, &policy);
        let until_before = !ledger.allows(2, AlgorithmId::Hog, 6);
        assert_eq!(ledger.defer_probes(1, 5), 0, "already deferred");
        assert_eq!(!ledger.allows(2, AlgorithmId::Hog, 6), until_before);

        // Still unreachable next round: the probe slides once more.
        assert_eq!(ledger.defer_probes(1, 6), 1);
        assert!(ledger.allows(pair.0, pair.1, 7));

        // No entries for a camera ⇒ a no-op.
        assert_eq!(ledger.defer_probes(3, 9), 0);

        // The deferred re-probe still clears on a healthy result.
        ledger.report_healthy(pair.0, pair.1);
        assert!(ledger.allows(pair.0, pair.1, 6) && ledger.strikes(pair.0, pair.1) == 0);
    }

    #[test]
    fn quarantine_purge_drops_only_the_departed_camera() {
        let policy = QuarantinePolicy::default();
        let mut ledger = QuarantineLedger::new();
        ledger.report_unhealthy(1, AlgorithmId::Acf, 3, &policy);
        ledger.report_unhealthy(1, AlgorithmId::Hog, 3, &policy);
        ledger.report_unhealthy(2, AlgorithmId::Acf, 3, &policy);
        assert_eq!(ledger.len(), 3);

        assert_eq!(ledger.purge_camera(1), 2);
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger.strikes(1, AlgorithmId::Acf), 0, "clean slate");
        assert!(ledger.allows(1, AlgorithmId::Acf, 4), "no dangling backoff");
        assert_eq!(ledger.strikes(2, AlgorithmId::Acf), 1, "others untouched");
        assert_eq!(ledger.purge_camera(1), 0, "idempotent");
        assert_eq!(ledger.purge_camera(7), 0, "unknown camera is a no-op");
    }

    #[test]
    fn assessment_cache_evicts_only_stale_entries_on_rejoin() {
        let reports: CameraAssessment = [(AlgorithmId::Hog, Vec::new())].into();
        let mut cache = AssessmentCache::new(2);
        cache.record(0, 3, reports.clone());
        cache.record(1, 3, reports.clone());

        // Rejoin at round 5, limit 2: age 2 is within bound — kept.
        assert!(!cache.evict_stale(0, 5, 2));
        assert_eq!(cache.entry(0), Some((3, &reports)));

        // Rejoin at round 6: age 3 exceeds the bound — evicted, but the
        // liveness record survives.
        assert!(cache.evict_stale(1, 6, 2));
        assert!(cache.entry(1).is_none());
        assert_eq!(cache.heard_round(1), Some(3));

        // Empty slots and out-of-range cameras are no-ops.
        assert!(!cache.evict_stale(1, 7, 2));
        assert!(!cache.evict_stale(9, 7, 2));
    }

    #[test]
    fn quarantine_export_round_trips() {
        let policy = QuarantinePolicy::default();
        let mut ledger = QuarantineLedger::new();
        ledger.report_unhealthy(0, AlgorithmId::Hog, 2, &policy);
        ledger.report_unhealthy(3, AlgorithmId::Lsvm, 7, &policy);
        ledger.report_unhealthy(3, AlgorithmId::Lsvm, 9, &policy);
        let restored = QuarantineLedger::from_entries(ledger.export());
        assert_eq!(restored.export(), ledger.export());
        assert_eq!(restored.strikes(3, AlgorithmId::Lsvm), 2);
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn assessment_cache_export_round_trips() {
        let mut cache = AssessmentCache::new(2);
        let reports: CameraAssessment = [(AlgorithmId::Hog, Vec::new())].into();
        cache.record(0, 3, reports.clone());
        cache.mark_heard(1, 5);

        let mut restored = AssessmentCache::new(2);
        for j in 0..2 {
            restored.restore_entry(
                j,
                cache.heard_round(j),
                cache.entry(j).map(|(r, a)| (r, a.clone())),
            );
        }
        assert!(restored.heard_in(0, 3) && restored.heard_in(1, 5));
        assert_eq!(restored.entry(0), Some((3, &reports)));
        assert!(restored.entry(1).is_none());
    }

    #[test]
    fn assessment_cache_staleness_policy() {
        let mut cache = AssessmentCache::new(2);
        assert!(cache.usable(0, 0, 2).is_none());
        assert!(!cache.heard_in(0, 0));

        let reports: CameraAssessment = [(AlgorithmId::Hog, Vec::new())].into();
        cache.record(0, 3, reports);
        assert!(cache.heard_in(0, 3));
        assert_eq!(cache.age(0, 5), Some(2));
        assert!(cache.usable(0, 5, 2).is_some(), "age 2 ≤ limit 2");
        assert!(cache.usable(0, 6, 2).is_none(), "age 3 > limit 2");
        assert!(cache.usable(1, 3, 2).is_none(), "other camera untouched");

        cache.mark_heard(1, 4);
        assert!(cache.heard_in(1, 4) && !cache.heard_in(1, 5));
        // Out-of-range indices are ignored, not panicking.
        cache.mark_heard(9, 1);
        assert!(cache.usable(9, 1, 2).is_none());
    }
}
