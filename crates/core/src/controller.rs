//! The central controller.
//!
//! Holds the training library (video items + per-algorithm profiles),
//! performs domain-adaptation matching of incoming feeds, fits the
//! re-identification color metric, and runs the selection algorithm.
//! "Video analytics and algorithm selection happen at the controller to
//! avoid … executing processing-expensive domain adaptation at each
//! battery-operated camera sensor" (Section IV).

use crate::config::EecsConfig;
use crate::metadata::CameraReport;
use crate::profile::TrainingRecord;
use crate::reid::{fuse_reports, FusedObject, ReidConfig};
use crate::selection::{select_cameras_and_algorithms, AssessmentData, SelectionOutcome};
use crate::{EecsError, Result};
use eecs_detect::detection::AlgorithmId;
use eecs_energy::budget::EnergyBudget;
use eecs_geometry::calibration::GroundCalibration;
use eecs_linalg::stats::MahalanobisMetric;
use eecs_linalg::Mat;
use eecs_manifold::matcher::{MatchResult, TrainingLibrary};
use eecs_manifold::video::VideoItem;
use std::collections::BTreeMap;

/// Per-camera assessment reports as gathered in one round:
/// `reports[algorithm][frame]`.
pub type CameraAssessment = BTreeMap<AlgorithmId, Vec<CameraReport>>;

/// The controller's memory of each camera's last usable assessment, for
/// graceful degradation on a lossy network.
///
/// When a camera's fresh assessment uploads are lost, the controller can
/// keep planning with the camera's last-known data — up to a staleness
/// cap — provided it still *hears* from the camera (any delivered
/// message counts as a liveness signal). A camera that is both silent
/// and stale is excluded from selection instead of failing the round.
#[derive(Debug, Clone, Default)]
pub struct AssessmentCache {
    /// `(round gathered, reports)` per camera.
    data: Vec<Option<(usize, CameraAssessment)>>,
    /// Round each camera was last heard from (any delivered message).
    heard: Vec<Option<usize>>,
}

impl AssessmentCache {
    /// An empty cache for `cameras` cameras.
    pub fn new(cameras: usize) -> AssessmentCache {
        AssessmentCache {
            data: vec![None; cameras],
            heard: vec![None; cameras],
        }
    }

    /// Notes that any message from `camera` was delivered in `round`.
    pub fn mark_heard(&mut self, camera: usize, round: usize) {
        if let Some(h) = self.heard.get_mut(camera) {
            *h = Some(round);
        }
    }

    /// Stores `camera`'s fresh assessment gathered in `round` (and marks
    /// it heard).
    pub fn record(&mut self, camera: usize, round: usize, reports: CameraAssessment) {
        if let Some(d) = self.data.get_mut(camera) {
            *d = Some((round, reports));
        }
        self.mark_heard(camera, round);
    }

    /// Whether `camera` was heard from in `round` itself.
    pub fn heard_in(&self, camera: usize, round: usize) -> bool {
        self.heard.get(camera).copied().flatten() == Some(round)
    }

    /// The cached reports for `camera` if they are at most
    /// `staleness_limit` rounds older than `round`.
    pub fn usable(
        &self,
        camera: usize,
        round: usize,
        staleness_limit: usize,
    ) -> Option<&CameraAssessment> {
        match self.data.get(camera).and_then(|d| d.as_ref()) {
            Some((gathered, reports)) if round.saturating_sub(*gathered) <= staleness_limit => {
                Some(reports)
            }
            _ => None,
        }
    }

    /// Age in rounds of `camera`'s cached data at `round`, if any data
    /// exists.
    pub fn age(&self, camera: usize, round: usize) -> Option<usize> {
        self.data
            .get(camera)
            .and_then(|d| d.as_ref())
            .map(|(gathered, _)| round.saturating_sub(*gathered))
    }
}

/// The EECS central controller.
#[derive(Debug, Clone)]
pub struct Controller {
    config: EecsConfig,
    records: Vec<TrainingRecord>,
    library: TrainingLibrary,
    calibrations: Vec<GroundCalibration>,
}

impl Controller {
    /// Builds a controller from offline-training records and the rig's
    /// ground calibrations.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::InvalidArgument`] with no records, or
    /// propagates manifold errors for degenerate video items.
    pub fn new(
        records: Vec<TrainingRecord>,
        calibrations: Vec<GroundCalibration>,
        config: EecsConfig,
    ) -> Result<Controller> {
        config.validate()?;
        if records.is_empty() {
            return Err(EecsError::InvalidArgument(
                "controller needs at least one training record".into(),
            ));
        }
        let mut library = TrainingLibrary::new(config.similarity);
        for r in &records {
            library.add(r.video.clone())?;
        }
        Ok(Controller {
            config,
            records,
            library,
            calibrations,
        })
    }

    /// The framework configuration.
    pub fn config(&self) -> &EecsConfig {
        &self.config
    }

    /// All training records.
    pub fn records(&self) -> &[TrainingRecord] {
        &self.records
    }

    /// The rig's ground calibrations.
    pub fn calibrations(&self) -> &[GroundCalibration] {
        &self.calibrations
    }

    /// Matches an uploaded feed to the closest training item
    /// (Section IV-B.2) and returns the match plus the record.
    ///
    /// # Errors
    ///
    /// Propagates manifold errors.
    pub fn match_feed(&self, query: &VideoItem) -> Result<(MatchResult, &TrainingRecord)> {
        let m = self.library.best_match(query)?;
        let record = &self.records[m.best_index];
        Ok((m, record))
    }

    /// Fits the Mahalanobis color metric from the color features present in
    /// assessment data (the paper fits it offline on training features; the
    /// assessment set is our training sample). Returns `None` when too few
    /// features exist.
    pub fn fit_color_metric(&self, data: &AssessmentData) -> Option<MahalanobisMetric> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for cam in &data.reports {
            for reports in cam.values() {
                for r in reports {
                    for o in &r.objects {
                        if !o.color.is_empty() {
                            rows.push(o.color.clone());
                        }
                    }
                }
            }
        }
        if rows.len() < 8 {
            return None;
        }
        let dim = rows[0].len();
        if rows.iter().any(|r| r.len() != dim) {
            return None;
        }
        let data_mat = Mat::from_row_vecs(&rows);
        MahalanobisMetric::fit(&data_mat, 1e-3).ok()
    }

    /// The re-identification configuration with an optional fitted metric.
    pub fn reid_config(&self, color_metric: Option<MahalanobisMetric>) -> ReidConfig {
        ReidConfig {
            ground_gate_m: self.config.reid_ground_gate_m,
            color_gate: self.config.reid_color_gate,
            color_metric,
        }
    }

    /// Fuses one frame's camera reports into distinct objects.
    pub fn fuse(
        &self,
        reports: &[crate::metadata::CameraReport],
        reid: &ReidConfig,
    ) -> Vec<FusedObject> {
        fuse_reports(reports, &self.calibrations, reid)
    }

    /// Runs the full selection (Sections IV-B.3/4) given assessment data,
    /// the matched record index per camera, and per-camera budgets.
    ///
    /// # Errors
    ///
    /// Propagates selection errors ([`EecsError::Infeasible`] and input
    /// mismatches).
    pub fn select(
        &self,
        data: &AssessmentData,
        matched_record: &[usize],
        budgets: &[EnergyBudget],
        reid: &ReidConfig,
        downgrade: bool,
    ) -> Result<SelectionOutcome> {
        let records: Vec<&TrainingRecord> = matched_record
            .iter()
            .map(|&i| {
                self.records.get(i).ok_or_else(|| {
                    EecsError::InvalidArgument(format!("record index {i} out of range"))
                })
            })
            .collect::<Result<_>>()?;
        select_cameras_and_algorithms(
            data,
            &records,
            budgets,
            &self.calibrations,
            &self.config,
            reid,
            downgrade,
        )
    }

    /// Like [`Controller::select`], but considering only `live` cameras:
    /// a dead camera is masked out by zeroing its budget, which removes
    /// it from the feasible set without disturbing the greedy algorithm.
    ///
    /// # Errors
    ///
    /// [`EecsError::Infeasible`] when no live camera has a feasible
    /// algorithm (in particular when `live` is all-false — callers
    /// should skip selection entirely for an all-silent round), plus
    /// everything [`Controller::select`] returns.
    pub fn select_live(
        &self,
        data: &AssessmentData,
        matched_record: &[usize],
        budgets: &[EnergyBudget],
        reid: &ReidConfig,
        downgrade: bool,
        live: &[bool],
    ) -> Result<SelectionOutcome> {
        if live.len() != budgets.len() {
            return Err(EecsError::InvalidArgument(format!(
                "live mask covers {} cameras, budgets {}",
                live.len(),
                budgets.len()
            )));
        }
        let zero = EnergyBudget::per_frame(0.0).map_err(EecsError::from)?;
        let masked: Vec<EnergyBudget> = budgets
            .iter()
            .zip(live)
            .map(|(&b, &alive)| if alive { b } else { zero })
            .collect();
        self.select(data, matched_record, &masked, reid, downgrade)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{CameraReport, ObjectMetadata};
    use crate::profile::test_profile;
    use eecs_detect::detection::{AlgorithmId, BBox};
    use std::collections::BTreeMap;

    fn video(dir: usize, seed: u64) -> VideoItem {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let frames: Vec<Vec<f64>> = (0..8)
            .map(|_| {
                let a = rng.random_range(-0.1..0.1);
                let mut f = vec![0.05; 6];
                f[dir] = 1.0 + a;
                f[(dir + 1) % 6] = 0.6 + a;
                f
            })
            .collect();
        VideoItem::from_frames(format!("T{dir}"), &frames).unwrap()
    }

    fn record(dir: usize, seed: u64) -> TrainingRecord {
        TrainingRecord::new(
            format!("T{dir}"),
            video(dir, seed),
            vec![
                test_profile(AlgorithmId::Hog, 0.7, 1.0),
                test_profile(AlgorithmId::Acf, 0.6, 0.07),
            ],
        )
        .unwrap()
    }

    fn controller() -> Controller {
        let mut cfg = EecsConfig::default();
        cfg.similarity.beta = 2;
        Controller::new(
            vec![record(0, 1), record(2, 2), record(4, 3)],
            Vec::new(),
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn matches_feed_to_right_record() {
        let c = controller();
        let (m, rec) = c.match_feed(&video(2, 99)).unwrap();
        assert_eq!(m.best_index, 1);
        assert_eq!(rec.name, "T2");
    }

    #[test]
    fn rejects_empty_records() {
        assert!(Controller::new(Vec::new(), Vec::new(), EecsConfig::default()).is_err());
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = EecsConfig::default();
        cfg.gamma_n = 2.0;
        assert!(Controller::new(vec![record(0, 1)], Vec::new(), cfg).is_err());
    }

    #[test]
    fn color_metric_needs_enough_samples() {
        let c = controller();
        let empty = AssessmentData::default();
        assert!(c.fit_color_metric(&empty).is_none());

        // Rich data: 10 objects with varied colors.
        let mut by_alg = BTreeMap::new();
        let reports: Vec<CameraReport> = (0..10)
            .map(|i| CameraReport {
                objects: vec![ObjectMetadata {
                    camera: 0,
                    bbox: BBox::new(0.0, 0.0, 10.0, 20.0),
                    probability: 0.5,
                    color: vec![
                        i as f64 * 0.1,
                        1.0 - i as f64 * 0.05,
                        0.3 + (i % 3) as f64 * 0.2,
                    ],
                }],
            })
            .collect();
        by_alg.insert(AlgorithmId::Hog, reports);
        let data = AssessmentData {
            reports: vec![by_alg],
        };
        let metric = c.fit_color_metric(&data);
        assert!(metric.is_some());
        assert_eq!(metric.unwrap().dim(), 3);
    }

    #[test]
    fn select_validates_record_indices() {
        let c = controller();
        let data = AssessmentData {
            reports: vec![BTreeMap::new()],
        };
        let reid = c.reid_config(None);
        let budgets = vec![EnergyBudget::per_frame(1.0).unwrap()];
        assert!(c.select(&data, &[99], &budgets, &reid, false).is_err());
    }

    /// A controller with real ground calibrations, as `select` needs one
    /// per camera.
    fn calibrated_controller(cameras: usize) -> Controller {
        use eecs_geometry::calibration::landmark_grid;
        use eecs_geometry::camera::Camera;
        use eecs_geometry::point::Point3;
        let lm = landmark_grid(10.0, 5);
        let calibrations = (0..cameras)
            .map(|j| {
                let cam = Camera::new(
                    Point3::new(5.0 + j as f64, -6.0, 2.8),
                    std::f64::consts::FRAC_PI_2,
                    0.35,
                    320.0,
                    360,
                    288,
                );
                GroundCalibration::from_camera(&cam, &lm).unwrap()
            })
            .collect();
        let mut cfg = EecsConfig::default();
        cfg.similarity.beta = 2;
        Controller::new(vec![record(0, 1), record(2, 2)], calibrations, cfg).unwrap()
    }

    #[test]
    fn select_live_excludes_dead_cameras() {
        let c = calibrated_controller(2);
        let report = CameraReport {
            objects: vec![ObjectMetadata {
                camera: 0,
                bbox: BBox::new(0.0, 0.0, 10.0, 20.0),
                probability: 0.9,
                color: vec![0.5; 3],
            }],
        };
        let by_alg: CameraAssessment = [(AlgorithmId::Hog, vec![report])].into();
        let data = AssessmentData {
            reports: vec![by_alg.clone(), by_alg],
        };
        let reid = c.reid_config(None);
        let budgets = vec![EnergyBudget::per_frame(2.0).unwrap(); 2];

        let out = c
            .select_live(&data, &[0, 1], &budgets, &reid, false, &[true, false])
            .unwrap();
        assert!(!out.active.contains(&1), "dead camera 1 selected");

        // An all-dead round is infeasible — the caller must skip selection.
        assert!(matches!(
            c.select_live(&data, &[0, 1], &budgets, &reid, false, &[false, false]),
            Err(EecsError::Infeasible(_))
        ));
        // Mask length is validated.
        assert!(c
            .select_live(&data, &[0, 1], &budgets, &reid, false, &[true])
            .is_err());
    }

    #[test]
    fn assessment_cache_staleness_policy() {
        let mut cache = AssessmentCache::new(2);
        assert!(cache.usable(0, 0, 2).is_none());
        assert!(!cache.heard_in(0, 0));

        let reports: CameraAssessment = [(AlgorithmId::Hog, Vec::new())].into();
        cache.record(0, 3, reports);
        assert!(cache.heard_in(0, 3));
        assert_eq!(cache.age(0, 5), Some(2));
        assert!(cache.usable(0, 5, 2).is_some(), "age 2 ≤ limit 2");
        assert!(cache.usable(0, 6, 2).is_none(), "age 3 > limit 2");
        assert!(cache.usable(1, 3, 2).is_none(), "other camera untouched");

        cache.mark_heard(1, 4);
        assert!(cache.heard_in(1, 4) && !cache.heard_in(1, 5));
        // Out-of-range indices are ignored, not panicking.
        cache.mark_heard(9, 1);
        assert!(cache.usable(9, 1, 2).is_none());
    }
}
