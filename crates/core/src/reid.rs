//! Cross-camera object re-identification (Section IV-C).
//!
//! For each detected area, the bottom-center of its bounding box is
//! projected through the camera's ground-plane homography into world
//! coordinates; detections from different cameras landing within a ground
//! gate are candidate matches, verified by the Mahalanobis distance between
//! their mean-color features. Matched detections are merged into one
//! [`FusedObject`] whose probability combines the per-camera probabilities
//! via Eq. 6.

use crate::accuracy::combined_probability;
use crate::metadata::CameraReport;
use eecs_geometry::calibration::GroundCalibration;
use eecs_geometry::point::Point2;
use eecs_linalg::stats::MahalanobisMetric;

/// A re-identified object: one physical person seen by ≥ 1 camera.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedObject {
    /// Estimated ground position (mean of contributing projections).
    pub ground: Point2,
    /// Cameras that contributed a detection.
    pub cameras: Vec<usize>,
    /// Combined detection probability (Eq. 6).
    pub probability: f64,
}

/// Re-identification parameters.
#[derive(Debug, Clone)]
pub struct ReidConfig {
    /// Maximum ground distance between matched detections (meters).
    pub ground_gate_m: f64,
    /// Maximum Mahalanobis color distance for a match.
    pub color_gate: f64,
    /// The color metric (fit offline on training color features); `None`
    /// disables color verification (the ablation in DESIGN.md §5).
    pub color_metric: Option<MahalanobisMetric>,
}

/// Fuses one frame's reports from multiple cameras into distinct objects.
///
/// Greedy agglomeration: detections are projected to the ground plane and
/// each is merged into the first existing cluster within the ground gate
/// whose color also passes the gate (when a metric is provided and both
/// sides carry color features); otherwise it seeds a new cluster. A cluster
/// accepts at most one detection per camera (one person cannot be two boxes
/// in the same view).
pub fn fuse_reports(
    reports: &[CameraReport],
    calibrations: &[GroundCalibration],
    config: &ReidConfig,
) -> Vec<FusedObject> {
    struct Cluster {
        ground_sum: Point2,
        members: Vec<(usize, f64)>, // (camera, probability)
        colors: Vec<Vec<f64>>,
    }
    let mut clusters: Vec<Cluster> = Vec::new();

    for report in reports {
        for obj in &report.objects {
            let Some(cal) = calibrations.get(obj.camera) else {
                continue;
            };
            let (bx, by) = obj.bbox.bottom_center();
            let Ok(ground) = cal.image_to_ground(&Point2::new(bx, by)) else {
                continue;
            };
            // Find the best existing cluster.
            let mut best: Option<(usize, f64)> = None;
            for (ci, cluster) in clusters.iter().enumerate() {
                if cluster.members.iter().any(|&(cam, _)| cam == obj.camera) {
                    continue;
                }
                let centroid = cluster.ground_sum * (1.0 / cluster.members.len() as f64);
                let dist = centroid.distance(&ground);
                if dist > config.ground_gate_m {
                    continue;
                }
                if let Some(metric) = &config.color_metric {
                    let color_ok = cluster.colors.iter().all(|c| {
                        c.len() == obj.color.len()
                            && metric.dim() == c.len()
                            && metric.distance(c, &obj.color) <= config.color_gate
                    });
                    if !color_ok {
                        continue;
                    }
                }
                if best.map(|(_, d)| dist < d).unwrap_or(true) {
                    best = Some((ci, dist));
                }
            }
            match best {
                Some((ci, _)) => {
                    let c = &mut clusters[ci];
                    c.ground_sum = c.ground_sum + ground;
                    c.members.push((obj.camera, obj.probability));
                    c.colors.push(obj.color.clone());
                }
                None => clusters.push(Cluster {
                    ground_sum: ground,
                    members: vec![(obj.camera, obj.probability)],
                    colors: vec![obj.color.clone()],
                }),
            }
        }
    }

    clusters
        .into_iter()
        .map(|c| {
            let n = c.members.len() as f64;
            let probs: Vec<f64> = c.members.iter().map(|&(_, p)| p).collect();
            let mut cameras: Vec<usize> = c.members.iter().map(|&(cam, _)| cam).collect();
            cameras.sort_unstable();
            FusedObject {
                ground: c.ground_sum * (1.0 / n),
                cameras,
                probability: combined_probability(&probs),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::ObjectMetadata;
    use eecs_detect::detection::BBox;
    use eecs_geometry::calibration::landmark_grid;
    use eecs_geometry::camera::Camera;
    use eecs_geometry::point::Point3;

    fn rig() -> (Vec<Camera>, Vec<GroundCalibration>) {
        let cams = vec![
            Camera::new(
                Point3::new(5.0, -6.0, 2.8),
                std::f64::consts::FRAC_PI_2,
                0.35,
                320.0,
                360,
                288,
            ),
            Camera::new(Point3::new(-6.0, 5.0, 2.8), 0.0, 0.35, 320.0, 360, 288),
        ];
        let lm = landmark_grid(10.0, 5);
        let cals = cams
            .iter()
            .map(|c| GroundCalibration::from_camera(c, &lm).unwrap())
            .collect();
        (cams, cals)
    }

    /// Builds the metadata a camera would report for a person standing at
    /// `ground` with probability `p` and a given color.
    fn report_for(
        cam_idx: usize,
        cam: &Camera,
        ground: Point2,
        p: f64,
        color: Vec<f64>,
    ) -> CameraReport {
        let (x0, y0, x1, y1) = cam.person_bbox(&ground, 1.7, 0.5).expect("person visible");
        CameraReport {
            objects: vec![ObjectMetadata {
                camera: cam_idx,
                bbox: BBox::new(x0, y0, x1, y1),
                probability: p,
                color,
            }],
        }
    }

    fn config(metric: Option<MahalanobisMetric>) -> ReidConfig {
        ReidConfig {
            ground_gate_m: 0.9,
            color_gate: 8.0,
            color_metric: metric,
        }
    }

    #[test]
    fn same_person_two_cameras_fuses_to_one() {
        let (cams, cals) = rig();
        let person = Point2::new(5.0, 5.0);
        let color = vec![0.5; 3];
        let reports = vec![
            report_for(0, &cams[0], person, 0.7, color.clone()),
            report_for(1, &cams[1], person, 0.6, color),
        ];
        let fused = fuse_reports(&reports, &cals, &config(None));
        assert_eq!(fused.len(), 1, "{fused:?}");
        assert_eq!(fused[0].cameras, vec![0, 1]);
        assert!((fused[0].probability - 0.88).abs() < 1e-9);
        assert!(fused[0].ground.distance(&person) < 0.5);
    }

    #[test]
    fn different_people_stay_separate() {
        let (cams, cals) = rig();
        let color = vec![0.5; 3];
        let reports = vec![
            report_for(0, &cams[0], Point2::new(3.0, 5.0), 0.7, color.clone()),
            report_for(1, &cams[1], Point2::new(7.0, 5.0), 0.6, color),
        ];
        let fused = fuse_reports(&reports, &cals, &config(None));
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn color_gate_splits_coincident_mismatches() {
        let (cams, cals) = rig();
        let person = Point2::new(5.0, 5.0);
        let metric = MahalanobisMetric::from_covariance(&eecs_linalg::Mat::identity(3)).unwrap();
        // Identical position but wildly different colors: with the metric
        // they must NOT merge.
        let reports = vec![
            report_for(0, &cams[0], person, 0.7, vec![0.0, 0.0, 0.0]),
            report_for(1, &cams[1], person, 0.6, vec![100.0, 100.0, 100.0]),
        ];
        let with_color = fuse_reports(&reports, &cals, &config(Some(metric)));
        assert_eq!(with_color.len(), 2);
        // Without color verification they merge (the false-match mode the
        // paper's color step exists to prevent).
        let without = fuse_reports(&reports, &cals, &config(None));
        assert_eq!(without.len(), 1);
    }

    #[test]
    fn one_camera_cannot_contribute_twice_to_a_cluster() {
        let (cams, cals) = rig();
        let person = Point2::new(5.0, 5.0);
        let color = vec![0.5; 3];
        let mut report = report_for(0, &cams[0], person, 0.7, color.clone());
        report
            .objects
            .extend(report_for(0, &cams[0], person, 0.6, color).objects);
        let fused = fuse_reports(&[report], &cals, &config(None));
        // Two detections from the same camera at the same spot: 2 clusters.
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn empty_reports_fuse_to_nothing() {
        let (_, cals) = rig();
        assert!(fuse_reports(&[], &cals, &config(None)).is_empty());
        assert!(fuse_reports(&[CameraReport::default()], &cals, &config(None)).is_empty());
    }

    #[test]
    fn probability_uses_eq6_across_three_cameras() {
        let (_, cals) = rig();
        // Synthetic: three cameras, same spot via direct metadata on cam 0's
        // calibration — emulate by giving all three the same bbox in cam 0
        // space but distinct camera ids (allowed: ids index `calibrations`).
        let (cams, _) = rig();
        let person = Point2::new(5.0, 5.0);
        let (x0, y0, x1, y1) = cams[0].person_bbox(&person, 1.7, 0.5).unwrap();
        let mk = |camera: usize, p: f64| ObjectMetadata {
            camera,
            bbox: BBox::new(x0, y0, x1, y1),
            probability: p,
            color: vec![0.5; 3],
        };
        // Cameras 0 and 1 share calibrations[0..2]; reuse cam 0's
        // calibration for a third view by duplicating it.
        let mut cals3 = cals.clone();
        cals3.push(cals[0].clone());
        let report = CameraReport {
            objects: vec![mk(0, 0.5), mk(2, 0.5)],
        };
        let fused = fuse_reports(&[report], &cals3, &config(None));
        assert_eq!(fused.len(), 1);
        assert!((fused[0].probability - 0.75).abs() < 1e-9);
    }
}
