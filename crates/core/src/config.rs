//! EECS configuration.

use crate::profile::DowngradeRule;
use crate::{EecsError, Result};
use eecs_detect::eval::EvalConfig;
use eecs_energy::comm::LinkModel;
use eecs_energy::model::DeviceEnergyModel;
use eecs_manifold::similarity::SimilarityConfig;
use eecs_net::reliable::RetryPolicy;

/// All tunables of the framework, defaulted to the paper's evaluation
/// settings (Section VI-E).
#[derive(Debug, Clone, PartialEq)]
pub struct EecsConfig {
    /// `γ_n`: required fraction of the baseline object count `N*`.
    pub gamma_n: f64,
    /// `γ_p`: required fraction of the baseline mean probability `P*`.
    pub gamma_p: f64,
    /// Accuracy-assessment duration in frames (paper: 100).
    pub assessment_period: usize,
    /// Recalibration interval in frames (paper: 500).
    pub recalibration_interval: usize,
    /// Number of key frames uploaded for video comparison (paper: 100).
    pub key_frames: usize,
    /// Video-similarity settings (`β`, scale).
    pub similarity: SimilarityConfig,
    /// Detection evaluation settings (IoU, visibility floor).
    pub eval: EvalConfig,
    /// Device energy constants.
    pub device: DeviceEnergyModel,
    /// Camera ↔ controller link.
    pub link: LinkModel,
    /// Ground-distance gate for homography re-identification (meters).
    pub reid_ground_gate_m: f64,
    /// Mahalanobis distance gate for the color verification step.
    pub reid_color_gate: f64,
    /// Downgrade policy (Section IV-B.4; `AnyCheaper` is the ablation).
    pub downgrade_rule: DowngradeRule,
    /// Ack/retry policy of the camera ↔ controller transport.
    pub retry: RetryPolicy,
    /// Graceful degradation: how many rounds old a silent camera's cached
    /// assessment data may be and still feed selection. Past this age the
    /// camera is excluded from the round instead.
    pub staleness_limit_rounds: usize,
}

impl Default for EecsConfig {
    fn default() -> Self {
        EecsConfig {
            gamma_n: 0.85,
            gamma_p: 0.8,
            assessment_period: 100,
            recalibration_interval: 500,
            key_frames: 100,
            similarity: SimilarityConfig::default(),
            eval: EvalConfig::default(),
            device: DeviceEnergyModel::default(),
            link: LinkModel::default(),
            reid_ground_gate_m: 0.9,
            reid_color_gate: 8.0,
            downgrade_rule: DowngradeRule::default(),
            retry: RetryPolicy::default(),
            staleness_limit_rounds: 2,
        }
    }
}

impl EecsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::InvalidArgument`] when γ values leave `(0, 1]`,
    /// periods are zero, or the assessment period exceeds the
    /// recalibration interval.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [("gamma_n", self.gamma_n), ("gamma_p", self.gamma_p)] {
            if !(0.0 < v && v <= 1.0) {
                return Err(EecsError::InvalidArgument(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        if self.assessment_period == 0 || self.recalibration_interval == 0 {
            return Err(EecsError::InvalidArgument(
                "assessment and recalibration periods must be positive".into(),
            ));
        }
        if self.assessment_period > self.recalibration_interval {
            return Err(EecsError::InvalidArgument(
                "assessment period cannot exceed the recalibration interval".into(),
            ));
        }
        if self.reid_ground_gate_m <= 0.0 || self.reid_color_gate <= 0.0 {
            return Err(EecsError::InvalidArgument(
                "re-identification gates must be positive".into(),
            ));
        }
        if self.retry.base_backoff_s < 0.0
            || self.retry.backoff_factor < 1.0
            || self.retry.max_backoff_s < self.retry.base_backoff_s
        {
            return Err(EecsError::InvalidArgument(
                "retry backoff must be non-negative, non-shrinking, and capped \
                 at or above its base"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EecsConfig::default();
        assert_eq!(c.gamma_n, 0.85);
        assert_eq!(c.gamma_p, 0.8);
        assert_eq!(c.assessment_period, 100);
        assert_eq!(c.recalibration_interval, 500);
        assert_eq!(c.key_frames, 100);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_gammas() {
        let mut c = EecsConfig::default();
        c.gamma_n = 0.0;
        assert!(c.validate().is_err());
        c.gamma_n = 1.2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_periods() {
        let mut c = EecsConfig::default();
        c.assessment_period = 0;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.assessment_period = 600;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_gates() {
        let mut c = EecsConfig::default();
        c.reid_ground_gate_m = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_retry_policies() {
        let mut c = EecsConfig::default();
        c.retry.backoff_factor = 0.5;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.retry.max_backoff_s = c.retry.base_backoff_s / 2.0;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.retry.base_backoff_s = -1.0;
        assert!(c.validate().is_err());
    }
}
