//! EECS configuration.

use crate::controller::QuarantinePolicy;
use crate::profile::DowngradeRule;
use crate::telemetry::Telemetry;
use crate::{EecsError, Result};
use eecs_detect::eval::EvalConfig;
use eecs_detect::health::HealthPolicy;
use eecs_energy::comm::LinkModel;
use eecs_energy::model::DeviceEnergyModel;
use eecs_manifold::similarity::SimilarityConfig;
use eecs_net::reliable::RetryPolicy;
use std::fmt;

/// A structural problem in a simulation or framework configuration,
/// caught at construction instead of panicking rounds later.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The rig has no cameras at all.
    NoCameras,
    /// More cameras requested than the rig supports.
    TooManyCameras {
        /// Cameras requested.
        requested: usize,
        /// The rig's maximum.
        max: usize,
    },
    /// The frame range `[start, end)` contains no frames, so the run has
    /// zero rounds.
    EmptyFrameRange {
        /// Requested first frame.
        start: usize,
        /// Requested end frame (exclusive).
        end: usize,
    },
    /// The per-frame energy budget is NaN or infinite.
    NonFiniteBudget(f64),
    /// The per-frame energy budget is negative.
    NegativeBudget(f64),
    /// A nested knob (EECS tunables, health or quarantine policy) is out
    /// of its domain.
    BadKnob(String),
    /// `PartitionPolicy::election_timeout_rounds` is zero: an island
    /// would elect an acting controller the instant a probe round is
    /// missed, turning every transient hiccup into a split brain.
    ZeroElectionTimeout,
    /// `PartitionPolicy::max_epoch_skew` is zero: no handover could ever
    /// pass the fencing check, since a legitimate successor is always at
    /// least one epoch ahead of its audience.
    ZeroEpochSkew,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NoCameras => write!(f, "simulation needs at least one camera"),
            ConfigError::TooManyCameras { requested, max } => {
                write!(f, "{requested} cameras requested, the rig has {max}")
            }
            ConfigError::EmptyFrameRange { start, end } => {
                write!(f, "frame range [{start}, {end}) holds no rounds")
            }
            ConfigError::NonFiniteBudget(v) => {
                write!(f, "per-frame budget must be finite, got {v}")
            }
            ConfigError::NegativeBudget(v) => {
                write!(f, "per-frame budget must be non-negative, got {v}")
            }
            ConfigError::BadKnob(msg) => write!(f, "bad configuration knob: {msg}"),
            ConfigError::ZeroElectionTimeout => {
                write!(f, "partition election timeout must be at least 1 round")
            }
            ConfigError::ZeroEpochSkew => {
                write!(f, "partition max epoch skew must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for EecsError {
    fn from(e: ConfigError) -> Self {
        EecsError::InvalidArgument(e.to_string())
    }
}

/// How islands behave when a partition cuts them off from the
/// controller seat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPolicy {
    /// Rounds an island tolerates without hearing any seat before it
    /// elects its own acting controller. Must be positive — a zero
    /// timeout would split the brain on every missed probe.
    pub election_timeout_rounds: usize,
    /// How far ahead of a receiver's fenced epoch an announced epoch may
    /// run and still be accepted. Must be positive; a successor is
    /// always at least one epoch ahead. Announcements beyond the skew
    /// are treated as corrupt and ignored.
    pub max_epoch_skew: u64,
}

impl Default for PartitionPolicy {
    fn default() -> Self {
        PartitionPolicy {
            election_timeout_rounds: 1,
            max_epoch_skew: 8,
        }
    }
}

impl PartitionPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-domain knob as a typed [`ConfigError`].
    pub fn validate(&self) -> std::result::Result<(), ConfigError> {
        if self.election_timeout_rounds == 0 {
            return Err(ConfigError::ZeroElectionTimeout);
        }
        if self.max_epoch_skew == 0 {
            return Err(ConfigError::ZeroEpochSkew);
        }
        Ok(())
    }
}

/// All tunables of the framework, defaulted to the paper's evaluation
/// settings (Section VI-E).
#[derive(Debug, Clone, PartialEq)]
pub struct EecsConfig {
    /// `γ_n`: required fraction of the baseline object count `N*`.
    pub gamma_n: f64,
    /// `γ_p`: required fraction of the baseline mean probability `P*`.
    pub gamma_p: f64,
    /// Accuracy-assessment duration in frames (paper: 100).
    pub assessment_period: usize,
    /// Recalibration interval in frames (paper: 500).
    pub recalibration_interval: usize,
    /// Number of key frames uploaded for video comparison (paper: 100).
    pub key_frames: usize,
    /// Video-similarity settings (`β`, scale).
    pub similarity: SimilarityConfig,
    /// Detection evaluation settings (IoU, visibility floor).
    pub eval: EvalConfig,
    /// Device energy constants.
    pub device: DeviceEnergyModel,
    /// Camera ↔ controller link.
    pub link: LinkModel,
    /// Ground-distance gate for homography re-identification (meters).
    pub reid_ground_gate_m: f64,
    /// Mahalanobis distance gate for the color verification step.
    pub reid_color_gate: f64,
    /// Downgrade policy (Section IV-B.4; `AnyCheaper` is the ablation).
    pub downgrade_rule: DowngradeRule,
    /// Ack/retry policy of the camera ↔ controller transport.
    pub retry: RetryPolicy,
    /// Graceful degradation: how many rounds old a silent camera's cached
    /// assessment data may be and still feed selection. Past this age the
    /// camera is excluded from the round instead.
    pub staleness_limit_rounds: usize,
    /// Detector sanity-check thresholds (NaN scores, count explosions,
    /// score collapse). The lenient defaults never trip on healthy
    /// detectors, so fault-free runs are unaffected.
    pub health: HealthPolicy,
    /// Backoff policy for quarantining (camera, algorithm) pairs whose
    /// detector output failed the health checks.
    pub quarantine: QuarantinePolicy,
    /// Controller-state checkpoint cadence in rounds (used only when a
    /// `ControllerFaultPlan` or `PartitionPlan` is armed): a checkpoint
    /// is taken at the end of every round whose index is a multiple of
    /// this.
    pub checkpoint_every: usize,
    /// Partition tolerance knobs: island election timeout and the epoch
    /// fencing skew bound (used only when a `PartitionPlan` is armed).
    pub partition: PartitionPolicy,
    /// Observability handle every layer of the hot path publishes into
    /// (metrics + trace events). The default [`Telemetry::null`] records
    /// nothing and keeps reports bit-identical to a build without the
    /// telemetry layer; equality compares the sink configuration, not
    /// recorded history.
    pub telemetry: Telemetry,
}

impl Default for EecsConfig {
    fn default() -> Self {
        EecsConfig {
            gamma_n: 0.85,
            gamma_p: 0.8,
            assessment_period: 100,
            recalibration_interval: 500,
            key_frames: 100,
            similarity: SimilarityConfig::default(),
            eval: EvalConfig::default(),
            device: DeviceEnergyModel::default(),
            link: LinkModel::default(),
            reid_ground_gate_m: 0.9,
            reid_color_gate: 8.0,
            downgrade_rule: DowngradeRule::default(),
            retry: RetryPolicy::default(),
            staleness_limit_rounds: 2,
            health: HealthPolicy::default(),
            quarantine: QuarantinePolicy::default(),
            checkpoint_every: 1,
            partition: PartitionPolicy::default(),
            telemetry: Telemetry::null(),
        }
    }
}

impl EecsConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EecsError::InvalidArgument`] when γ values leave `(0, 1]`,
    /// periods are zero, or the assessment period exceeds the
    /// recalibration interval.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [("gamma_n", self.gamma_n), ("gamma_p", self.gamma_p)] {
            if !(0.0 < v && v <= 1.0) {
                return Err(EecsError::InvalidArgument(format!(
                    "{name} must be in (0, 1], got {v}"
                )));
            }
        }
        if self.assessment_period == 0 || self.recalibration_interval == 0 {
            return Err(EecsError::InvalidArgument(
                "assessment and recalibration periods must be positive".into(),
            ));
        }
        if self.assessment_period > self.recalibration_interval {
            return Err(EecsError::InvalidArgument(
                "assessment period cannot exceed the recalibration interval".into(),
            ));
        }
        if self.reid_ground_gate_m <= 0.0 || self.reid_color_gate <= 0.0 {
            return Err(EecsError::InvalidArgument(
                "re-identification gates must be positive".into(),
            ));
        }
        if self.retry.base_backoff_s < 0.0
            || self.retry.backoff_factor < 1.0
            || self.retry.max_backoff_s < self.retry.base_backoff_s
        {
            return Err(EecsError::InvalidArgument(
                "retry backoff must be non-negative, non-shrinking, and capped \
                 at or above its base"
                    .into(),
            ));
        }
        self.health
            .validate()
            .map_err(|m| EecsError::from(ConfigError::BadKnob(m)))?;
        self.quarantine
            .validate()
            .map_err(|m| EecsError::from(ConfigError::BadKnob(m)))?;
        if self.checkpoint_every == 0 {
            return Err(
                ConfigError::BadKnob("checkpoint_every must be at least 1 round".into()).into(),
            );
        }
        self.partition.validate().map_err(EecsError::from)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = EecsConfig::default();
        assert_eq!(c.gamma_n, 0.85);
        assert_eq!(c.gamma_p, 0.8);
        assert_eq!(c.assessment_period, 100);
        assert_eq!(c.recalibration_interval, 500);
        assert_eq!(c.key_frames, 100);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_gammas() {
        let mut c = EecsConfig::default();
        c.gamma_n = 0.0;
        assert!(c.validate().is_err());
        c.gamma_n = 1.2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_periods() {
        let mut c = EecsConfig::default();
        c.assessment_period = 0;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.assessment_period = 600;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_gates() {
        let mut c = EecsConfig::default();
        c.reid_ground_gate_m = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_health_and_checkpoint_knobs() {
        let mut c = EecsConfig::default();
        c.health.max_detections = 0;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.quarantine.base_backoff_rounds = 0;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.checkpoint_every = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_election_timeout() {
        let mut c = EecsConfig::default();
        c.partition.election_timeout_rounds = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("election timeout"), "{err}");
        assert_eq!(
            PartitionPolicy {
                election_timeout_rounds: 0,
                ..PartitionPolicy::default()
            }
            .validate(),
            Err(ConfigError::ZeroElectionTimeout)
        );
    }

    #[test]
    fn validation_rejects_zero_epoch_skew() {
        let mut c = EecsConfig::default();
        c.partition.max_epoch_skew = 0;
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("epoch skew"), "{err}");
        assert_eq!(
            PartitionPolicy {
                max_epoch_skew: 0,
                ..PartitionPolicy::default()
            }
            .validate(),
            Err(ConfigError::ZeroEpochSkew)
        );
    }

    #[test]
    fn config_error_display_and_conversion() {
        let e = ConfigError::EmptyFrameRange { start: 50, end: 50 };
        assert!(e.to_string().contains("[50, 50)"));
        let ee: EecsError = ConfigError::NoCameras.into();
        assert!(matches!(ee, EecsError::InvalidArgument(_)));
        assert!(ConfigError::NonFiniteBudget(f64::NAN)
            .to_string()
            .contains("finite"));
    }

    #[test]
    fn validation_rejects_bad_retry_policies() {
        let mut c = EecsConfig::default();
        c.retry.backoff_factor = 0.5;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.retry.max_backoff_s = c.retry.base_backoff_s / 2.0;
        assert!(c.validate().is_err());
        c = EecsConfig::default();
        c.retry.base_backoff_s = -1.0;
        assert!(c.validate().is_err());
    }
}
