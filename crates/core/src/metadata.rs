//! Detection metadata uploaded by cameras.
//!
//! Section IV-C: "for each detected area, the sensors extract and upload
//! metadata of that area representing a potential object. Specifically,
//! this metadata includes: (i) the location of the area in the image,
//! (ii) color features of the area, and finally (iii) a confidence measure"
//! — 172 bytes per object on the wire (Section V-A).

use eecs_detect::detection::BBox;

/// Metadata of one detected area `R_ij`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMetadata {
    /// Camera index `j` that produced this detection.
    pub camera: usize,
    /// The detected area (bounding box in that camera's image).
    pub bbox: BBox,
    /// Calibrated detection probability `P_ij` (footnote 5 / Eq. 6).
    pub probability: f64,
    /// Mean-color feature of the area (40-d, Section V-A).
    pub color: Vec<f64>,
}

/// Everything one camera uploads for one assessed frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CameraReport {
    /// Detected objects (already thresholded at the camera's `d_t`).
    pub objects: Vec<ObjectMetadata>,
}

impl CameraReport {
    /// Number of reported objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether anything was reported.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Metadata wire bytes for this report (172 per object, per the paper).
    pub fn wire_bytes(&self) -> u64 {
        eecs_energy::comm::metadata_bytes(self.objects.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accounting() {
        let obj = ObjectMetadata {
            camera: 1,
            bbox: BBox::new(0.0, 0.0, 10.0, 30.0),
            probability: 0.8,
            color: vec![0.0; 40],
        };
        let report = CameraReport {
            objects: vec![obj.clone(), obj],
        };
        assert_eq!(report.len(), 2);
        assert!(!report.is_empty());
        assert_eq!(report.wire_bytes(), 344);
    }

    #[test]
    fn empty_report() {
        let r = CameraReport::default();
        assert!(r.is_empty());
        assert_eq!(r.wire_bytes(), 0);
    }
}
