//! Deterministic video feeds.
//!
//! A [`VideoFeed`] is the simulator's equivalent of one pre-recorded video
//! file from the paper's datasets: camera `y` of dataset `x`, addressable by
//! frame index. `(dataset, camera, frame)` uniquely determines the image
//! and its ground truth.

use crate::dataset::DatasetProfile;
use crate::ground_truth::{ground_truth, GtBox};
use crate::render::render_frame;
use crate::rig::camera_rig;
use crate::world::World;
use eecs_geometry::camera::Camera;
use eecs_vision::image::RgbImage;

/// One rendered frame plus its ground truth.
#[derive(Debug, Clone)]
pub struct FrameData {
    /// Frame index within the feed.
    pub frame: usize,
    /// The rendered image.
    pub image: RgbImage,
    /// Ground-truth person boxes for this view.
    pub gt: Vec<GtBox>,
}

/// A video feed: one camera of one dataset.
#[derive(Debug, Clone)]
pub struct VideoFeed {
    profile: DatasetProfile,
    camera: Camera,
    camera_index: usize,
}

impl VideoFeed {
    /// Opens camera `camera_index` (0–3) of the dataset.
    ///
    /// # Panics
    ///
    /// Panics if `camera_index >= 4`.
    pub fn open(profile: DatasetProfile, camera_index: usize) -> VideoFeed {
        let rig = camera_rig(&profile);
        assert!(
            camera_index < rig.len(),
            "camera index {camera_index} out of range"
        );
        VideoFeed {
            camera: rig[camera_index].clone(),
            profile,
            camera_index,
        }
    }

    /// The dataset profile.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// The camera index within the rig.
    pub fn camera_index(&self) -> usize {
        self.camera_index
    }

    /// The camera model.
    pub fn camera(&self) -> &Camera {
        &self.camera
    }

    /// Renders a single frame (replays the world from frame 0; prefer
    /// [`VideoFeed::frames`] for ranges).
    pub fn frame(&self, f: usize) -> FrameData {
        let world = World::at_frame(self.profile.clone(), f);
        FrameData {
            frame: f,
            image: render_frame(&world, &self.camera, self.camera_index),
            gt: ground_truth(&world, &self.camera),
        }
    }

    /// Renders frames `start, start+step, …` below `end` with a single
    /// world replay.
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn frames(&self, start: usize, end: usize, step: usize) -> Vec<FrameData> {
        assert!(step > 0, "step must be positive");
        let mut world = World::at_frame(self.profile.clone(), start);
        let mut out = Vec::new();
        let mut f = start;
        while f < end {
            out.push(FrameData {
                frame: f,
                image: render_frame(&world, &self.camera, self.camera_index),
                gt: ground_truth(&world, &self.camera),
            });
            for _ in 0..step {
                world.step();
            }
            f += step;
        }
        out
    }

    /// The frames of the feed that carry ground truth in `[start, end)` —
    /// the paper evaluates only on annotated frames (every
    /// `gt_interval`-th).
    pub fn annotated_frames(&self, start: usize, end: usize) -> Vec<FrameData> {
        let interval = self.profile.gt_interval;
        let first = start.div_ceil(interval) * interval;
        if first >= end {
            return Vec::new();
        }
        self.frames(first, end, interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetId, DatasetProfile};

    fn mini() -> DatasetProfile {
        DatasetProfile::miniature(DatasetId::Lab)
    }

    #[test]
    fn single_frame_matches_range_frame() {
        let feed = VideoFeed::open(mini(), 0);
        let single = feed.frame(10);
        let ranged = feed.frames(10, 11, 1);
        assert_eq!(ranged.len(), 1);
        assert_eq!(single.image, ranged[0].image);
        assert_eq!(single.gt, ranged[0].gt);
    }

    #[test]
    fn frames_step_correctly() {
        let feed = VideoFeed::open(mini(), 1);
        let fs = feed.frames(0, 20, 5);
        let indices: Vec<usize> = fs.iter().map(|f| f.frame).collect();
        assert_eq!(indices, vec![0, 5, 10, 15]);
    }

    #[test]
    fn annotated_frames_follow_gt_interval() {
        let feed = VideoFeed::open(mini(), 0); // gt_interval = 5 in miniature
        let fs = feed.annotated_frames(3, 21);
        let indices: Vec<usize> = fs.iter().map(|f| f.frame).collect();
        assert_eq!(indices, vec![5, 10, 15, 20]);
    }

    #[test]
    fn annotated_frames_empty_range() {
        let feed = VideoFeed::open(mini(), 0);
        assert!(feed.annotated_frames(6, 7).is_empty());
    }

    #[test]
    fn feed_is_deterministic_across_instances() {
        let a = VideoFeed::open(mini(), 2).frame(7);
        let b = VideoFeed::open(mini(), 2).frame(7);
        assert_eq!(a.image, b.image);
    }

    #[test]
    fn cameras_of_same_world_share_ground_truth_ids() {
        let f0 = VideoFeed::open(mini(), 0).frame(5);
        let f1 = VideoFeed::open(mini(), 1).frame(5);
        // Any shared person must be at the same world position.
        for a in &f0.gt {
            if let Some(b) = f1.gt.iter().find(|g| g.human_id == a.human_id) {
                assert_eq!(a.ground, b.ground);
            }
        }
    }

    #[test]
    #[should_panic(expected = "camera index")]
    fn bad_camera_index_panics() {
        VideoFeed::open(mini(), 4);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_panics() {
        VideoFeed::open(mini(), 0).frames(0, 10, 0);
    }
}
