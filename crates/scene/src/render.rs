//! Frame rasterization.
//!
//! Renders one camera's view of the world: background (indoor walls /
//! outdoor sky), furniture clutter, and depth-sorted human sprites, followed
//! by illumination gain and sensor noise. The goal is not photorealism but
//! the *feature statistics* the detectors key on: vertical body edges,
//! head-shoulder gradients, clothing color bands, and — for dataset #2 —
//! person-sized high-contrast furniture that confuses a cleanly trained HOG
//! template.

use crate::dataset::DatasetProfile;
use crate::world::World;
use eecs_geometry::camera::Camera;
use eecs_geometry::point::Point2;
use eecs_vision::draw;
use eecs_vision::image::RgbImage;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Renders the world as seen by `camera` at the world's current frame.
///
/// Rendering is deterministic: the sensor-noise RNG is seeded from
/// `(profile seed, camera_index, frame)`.
pub fn render_frame(world: &World, camera: &Camera, camera_index: usize) -> RgbImage {
    let profile = world.profile();
    let mut img = RgbImage::new(profile.width, profile.height);
    draw_background(&mut img, profile);
    draw_ground_grid(&mut img, profile, camera);
    draw_landmarks(&mut img, profile, camera);

    // Painter's algorithm over clutter + humans by distance to the camera.
    enum Entity<'a> {
        Human(&'a crate::world::Human),
        Clutter(&'a crate::world::ClutterItem),
    }
    let mut draw_list: Vec<(f64, Entity<'_>)> = Vec::new();
    for h in world.humans() {
        let d = dist_to_camera(camera, &h.position);
        draw_list.push((d, Entity::Human(h)));
    }
    for c in world.clutter() {
        let d = dist_to_camera(camera, &c.position);
        draw_list.push((d, Entity::Clutter(c)));
    }
    // Farthest first.
    draw_list.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    for (_, e) in draw_list {
        match e {
            Entity::Clutter(c) => {
                if let Ok((x0, y0, x1, y1)) = camera.person_bbox(&c.position, c.height, c.width) {
                    draw_clutter(&mut img, x0, y0, x1, y1, c.colors);
                }
            }
            Entity::Human(h) => {
                if let Ok((x0, y0, x1, y1)) = camera.person_bbox(&h.position, h.height, h.width) {
                    draw::draw_human(&mut img, x0, y0, x1, y1, h.clothing, h.skin);
                }
            }
        }
    }

    img.scale_brightness(profile.brightness);
    apply_color_cast(&mut img, profile, camera_index);
    let mut rng = noise_rng(profile, camera_index, world.frame());
    draw::add_noise(&mut img, profile.noise, &mut rng);
    img
}

/// Per-camera white-balance/exposure cast: each physical camera has its own
/// sensor response (the testbed's phones certainly did), which is one of
/// the cues that lets the video-comparison stage tell *views* apart
/// (Table V). Deterministic per `(dataset, camera)`.
fn apply_color_cast(img: &mut RgbImage, profile: &DatasetProfile, camera_index: usize) {
    let mut state = profile
        .seed
        .wrapping_mul(0xD6E8_FEB8_6659_FD93)
        .wrapping_add(camera_index as u64 + 1);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) >> 11) as f32 / (1u64 << 53) as f32
    };
    let gains = [
        0.88 + 0.24 * next(),
        0.88 + 0.24 * next(),
        0.88 + 0.24 * next(),
    ];
    for (ch, gain) in [&mut img.r, &mut img.g, &mut img.b].into_iter().zip(gains) {
        for p in ch.as_mut_slice() {
            *p = (*p * gain).clamp(0.0, 1.0);
        }
    }
}

/// Deterministic per-frame noise RNG.
fn noise_rng(profile: &DatasetProfile, camera_index: usize, frame: usize) -> StdRng {
    StdRng::seed_from_u64(
        profile
            .seed
            .wrapping_mul(1_000_003)
            .wrapping_add(camera_index as u64 * 97)
            .wrapping_add(frame as u64),
    )
}

fn dist_to_camera(camera: &Camera, ground: &Point2) -> f64 {
    ((camera.position.x - ground.x).powi(2) + (camera.position.y - ground.y).powi(2)).sqrt()
}

/// Static world-anchored landmarks (wall posters / planters): wide colored
/// billboards around the arena perimeter. They are what makes the *views*
/// of one dataset distinguishable from each other — exactly the role the
/// real rooms' furniture and wall structure played for the paper's video
/// comparison (Table V): the same landmark projects to different image
/// regions in different cameras, and different datasets have different
/// landmark sets.
///
/// Landmarks are deliberately wide (aspect ≫ person) so they do not read
/// as pedestrians to the detectors, and they are drawn beneath all dynamic
/// entities.
fn draw_landmarks(img: &mut RgbImage, profile: &DatasetProfile, camera: &Camera) {
    let c = profile.arena / 2.0;
    let r = profile.arena * 0.62;
    let mut state = profile.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    for k in 0..6 {
        let angle = k as f64 / 6.0 * std::f64::consts::TAU + next() * 0.6;
        let pos = Point2::new(c + r * angle.cos(), c + r * angle.sin());
        let color = [
            (0.25 + 0.7 * next()) as f32,
            (0.25 + 0.7 * next()) as f32,
            (0.25 + 0.7 * next()) as f32,
        ];
        let height = 1.0 + next() * 0.8;
        let width = 2.0 + next() * 1.2;
        if let Ok((x0, y0, x1, y1)) = camera.person_bbox(&pos, height, width) {
            draw::fill_rect(img, x0 as i64, y0 as i64, x1 as i64, y1 as i64, color);
            // A horizontal divider for texture.
            let mid = ((y0 + y1) / 2.0) as i64;
            draw::fill_rect(
                img,
                x0 as i64,
                mid,
                x1 as i64,
                mid + 1,
                [color[0] * 0.4, color[1] * 0.4, color[2] * 0.4],
            );
        }
    }
}

fn draw_background(img: &mut RgbImage, profile: &DatasetProfile) {
    if profile.indoor {
        // Wall fading into a darker floor.
        draw::vertical_gradient(img, [0.72, 0.70, 0.66], [0.38, 0.36, 0.34]);
    } else {
        // Sky over a warm terrace floor.
        let h = img.height();
        draw::vertical_gradient(img, [0.65, 0.78, 0.92], [0.60, 0.74, 0.88]);
        let horizon = (h as f64 * 0.35) as i64;
        draw::fill_rect(
            img,
            0,
            horizon,
            img.width() as i64,
            h as i64,
            [0.62, 0.58, 0.52],
        );
    }
}

/// Terrace tile seams, anchored in *world* coordinates so each camera sees
/// them at its own angle (a fixed image-space texture would make all views
/// statistically identical, which no real terrace is).
fn draw_ground_grid(img: &mut RgbImage, profile: &DatasetProfile, camera: &Camera) {
    if profile.indoor {
        return;
    }
    let seam = [0.56f32, 0.52, 0.47];
    let arena = profile.arena;
    let mut line = |a: Point2, b: Point2| {
        let steps = 160;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let p = Point2::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
            if let Ok(px) = camera.project(&eecs_geometry::point::Point3::on_ground(p.x, p.y)) {
                if camera.contains(&px) {
                    draw::fill_rect(
                        img,
                        px.x as i64,
                        px.y as i64,
                        px.x as i64 + 2,
                        px.y as i64 + 1,
                        seam,
                    );
                }
            }
        }
    };
    let mut k = 0.0;
    while k <= arena {
        line(Point2::new(k, 0.0), Point2::new(k, arena));
        line(Point2::new(0.0, k), Point2::new(arena, k));
        k += 2.0;
    }
}

/// Furniture uses the shared sprite so detector training can synthesize
/// identical clutter negatives.
fn draw_clutter(
    img: &mut RgbImage,
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    colors: ([f32; 3], [f32; 3]),
) {
    draw::draw_furniture(img, x0, y0, x1, y1, colors);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetId, DatasetProfile};
    use crate::rig::camera_rig;

    fn mini_world(id: DatasetId) -> (World, Vec<Camera>) {
        let p = DatasetProfile::miniature(id);
        let rig = camera_rig(&p);
        (World::new(p), rig)
    }

    #[test]
    fn frame_has_profile_dimensions() {
        let (w, rig) = mini_world(DatasetId::Lab);
        let img = render_frame(&w, &rig[0], 0);
        assert_eq!(img.width(), 180);
        assert_eq!(img.height(), 144);
    }

    #[test]
    fn rendering_is_deterministic() {
        let (w, rig) = mini_world(DatasetId::Lab);
        let a = render_frame(&w, &rig[1], 1);
        let b = render_frame(&w, &rig[1], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_cameras_see_different_images() {
        let (w, rig) = mini_world(DatasetId::Lab);
        let a = render_frame(&w, &rig[0], 0);
        let b = render_frame(&w, &rig[2], 2);
        assert_ne!(a, b);
    }

    #[test]
    fn frames_change_over_time() {
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let w0 = World::at_frame(p.clone(), 0);
        let w50 = World::at_frame(p, 50);
        let a = render_frame(&w0, &rig[0], 0);
        let b = render_frame(&w50, &rig[0], 0);
        assert_ne!(a, b);
    }

    #[test]
    fn humans_are_visible() {
        // A rendered frame should differ substantially from an empty render
        // of the same background.
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let world = World::new(p.clone());
        let mut empty_profile = p.clone();
        empty_profile.num_people = 0;
        let empty_world = World::new(empty_profile);
        let with = render_frame(&world, &rig[0], 0);
        let without = render_frame(&empty_world, &rig[0], 0);
        let mut differing = 0usize;
        for y in 0..with.height() {
            for x in 0..with.width() {
                let a = with.get(x, y);
                let b = without.get(x, y);
                if (a[0] - b[0]).abs() + (a[1] - b[1]).abs() + (a[2] - b[2]).abs() > 0.15 {
                    differing += 1;
                }
            }
        }
        assert!(differing > 100, "humans changed only {differing} pixels");
    }

    #[test]
    fn chap_renders_clutter() {
        let p = DatasetProfile::miniature(DatasetId::Chap);
        let rig = camera_rig(&p);
        let world = World::new(p.clone());
        let mut no_clutter = p.clone();
        no_clutter.clutter_items = 0;
        no_clutter.num_people = 0;
        let mut no_people = p;
        no_people.num_people = 0;
        let with_clutter = render_frame(&World::new(no_people), &rig[0], 0);
        let bare = render_frame(&World::new(no_clutter), &rig[0], 0);
        assert_ne!(with_clutter, bare, "clutter not rendered");
        let _ = world;
    }

    #[test]
    fn color_cast_differs_across_cameras() {
        // Same world, two cameras: the per-camera sensor cast must make the
        // *global color statistics* differ even where scene content is
        // similar (this is a Table-V discrimination cue).
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let mut empty = p.clone();
        empty.num_people = 0;
        empty.noise = 0.0;
        let world = World::new(empty);
        let a = render_frame(&world, &rig[0], 0);
        let b = render_frame(&world, &rig[1], 1);
        let mean =
            |img: &RgbImage, ch: fn(&RgbImage) -> &eecs_vision::image::GrayImage| ch(img).mean();
        let dr = (mean(&a, |i| &i.r) - mean(&b, |i| &i.r)).abs();
        let dg = (mean(&a, |i| &i.g) - mean(&b, |i| &i.g)).abs();
        let db = (mean(&a, |i| &i.b) - mean(&b, |i| &i.b)).abs();
        assert!(dr + dg + db > 0.01, "casts too similar: {dr} {dg} {db}");
    }

    #[test]
    fn landmarks_are_static_over_time() {
        // Landmarks must not move between frames (they anchor the view
        // identity); check a pixel region far from any person.
        let mut p = DatasetProfile::miniature(DatasetId::Lab);
        p.num_people = 0;
        p.noise = 0.0;
        let rig = camera_rig(&p);
        let w0 = World::at_frame(p.clone(), 0);
        let w9 = World::at_frame(p, 9);
        let a = render_frame(&w0, &rig[0], 0);
        let b = render_frame(&w9, &rig[0], 0);
        assert_eq!(a, b, "static scene changed between frames");
    }

    #[test]
    fn terrace_grid_is_view_dependent() {
        let p = DatasetProfile::miniature(DatasetId::Terrace);
        let mut empty = p.clone();
        empty.num_people = 0;
        empty.noise = 0.0;
        let rig = camera_rig(&empty);
        let world = World::new(empty);
        let a = render_frame(&world, &rig[0], 0);
        let b = render_frame(&world, &rig[2], 2);
        // The projected world grid must differ pixel-wise between opposite
        // cameras (an image-space texture would be identical).
        assert_ne!(a, b);
    }

    #[test]
    fn outdoor_has_sky_indoor_does_not() {
        let (lw, lrig) = mini_world(DatasetId::Lab);
        let (tw, trig) = mini_world(DatasetId::Terrace);
        let lab = render_frame(&lw, &lrig[0], 0);
        let ter = render_frame(&tw, &trig[0], 0);
        // Terrace top rows are blue-ish (b > r); lab walls are not.
        let l = lab.get(90, 2);
        let t = ter.get(90, 2);
        assert!(t[2] > t[0], "terrace sky should be blue: {t:?}");
        assert!(l[0] >= l[2], "lab wall should be neutral/warm: {l:?}");
    }
}
