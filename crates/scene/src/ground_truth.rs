//! Exact ground truth.
//!
//! The real datasets annotate 3-D person positions every `gt_interval`
//! frames and provide ground-plane homographies to map them into each view
//! (Section VI of the paper). The simulator knows the truth exactly: this
//! module produces per-camera bounding boxes, visibility (occlusion)
//! fractions, and the underlying ground positions.

use crate::world::World;
use eecs_geometry::camera::Camera;
use eecs_geometry::point::Point2;

/// A ground-truth annotation for one person in one camera view.
#[derive(Debug, Clone, PartialEq)]
pub struct GtBox {
    /// Stable person id (consistent across cameras — the re-identification
    /// oracle used for scoring).
    pub human_id: usize,
    /// Left edge in pixels (clipped to the image).
    pub x0: f64,
    /// Top edge in pixels.
    pub y0: f64,
    /// Right edge in pixels.
    pub x1: f64,
    /// Bottom edge in pixels.
    pub y1: f64,
    /// Fraction of the box NOT covered by nearer people/furniture, in
    /// `[0, 1]`.
    pub visibility: f64,
    /// True ground position in world meters.
    pub ground: Point2,
}

impl GtBox {
    /// Box width in pixels.
    pub fn width(&self) -> f64 {
        (self.x1 - self.x0).max(0.0)
    }

    /// Box height in pixels.
    pub fn height(&self) -> f64 {
        (self.y1 - self.y0).max(0.0)
    }

    /// Box area in pixels².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Bottom-center point — the paper projects this through the ground
    /// homography for re-identification.
    pub fn bottom_center(&self) -> Point2 {
        Point2::new((self.x0 + self.x1) / 2.0, self.y1)
    }
}

/// Computes the ground truth for `camera` at the world's current frame.
///
/// People whose projected box misses the image entirely, or whose visible
/// on-screen area is negligible, are omitted (they are not "in the scene"
/// for this view). Occlusion is estimated from bounding-box overlap with
/// strictly nearer entities.
pub fn ground_truth(world: &World, camera: &Camera) -> Vec<GtBox> {
    let w = camera.width as f64;
    let h = camera.height as f64;

    // Collect raw (unclipped) boxes of everything that occludes.
    struct Raw {
        dist: f64,
        bbox: (f64, f64, f64, f64),
    }
    let mut occluders: Vec<Raw> = Vec::new();
    for hum in world.humans() {
        if let Ok(b) = camera.person_bbox(&hum.position, hum.height, hum.width) {
            occluders.push(Raw {
                dist: cam_dist(camera, &hum.position),
                bbox: b,
            });
        }
    }
    for cl in world.clutter() {
        if let Ok(b) = camera.person_bbox(&cl.position, cl.height, cl.width) {
            occluders.push(Raw {
                dist: cam_dist(camera, &cl.position),
                bbox: b,
            });
        }
    }

    let mut out = Vec::new();
    for hum in world.humans() {
        let Ok((bx0, by0, bx1, by1)) = camera.person_bbox(&hum.position, hum.height, hum.width)
        else {
            continue;
        };
        // Clip to the image.
        let x0 = bx0.max(0.0);
        let y0 = by0.max(0.0);
        let x1 = bx1.min(w);
        let y1 = by1.min(h);
        if x1 - x0 < 2.0 || y1 - y0 < 4.0 {
            continue; // essentially off screen
        }
        let my_dist = cam_dist(camera, &hum.position);
        let my_area = (bx1 - bx0) * (by1 - by0);
        // Occlusion: union of overlaps approximated by capped sum.
        let mut covered = 0.0;
        for occ in &occluders {
            if occ.dist >= my_dist - 1e-9 {
                continue; // not strictly nearer (includes self)
            }
            covered += overlap_area((bx0, by0, bx1, by1), occ.bbox);
        }
        let visibility = (1.0 - covered / my_area).clamp(0.0, 1.0);
        // Off-screen part also reduces effective visibility.
        let on_screen = ((x1 - x0) * (y1 - y0)) / my_area;
        out.push(GtBox {
            human_id: hum.id,
            x0,
            y0,
            x1,
            y1,
            visibility: visibility * on_screen.clamp(0.0, 1.0),
            ground: hum.position,
        });
    }
    out
}

fn cam_dist(camera: &Camera, ground: &Point2) -> f64 {
    ((camera.position.x - ground.x).powi(2) + (camera.position.y - ground.y).powi(2)).sqrt()
}

fn overlap_area(a: (f64, f64, f64, f64), b: (f64, f64, f64, f64)) -> f64 {
    let ix = (a.2.min(b.2) - a.0.max(b.0)).max(0.0);
    let iy = (a.3.min(b.3) - a.1.max(b.1)).max(0.0);
    ix * iy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetId, DatasetProfile};
    use crate::rig::camera_rig;

    #[test]
    fn gt_is_nonempty_and_in_bounds() {
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let world = World::new(p.clone());
        let gt = ground_truth(&world, &rig[0]);
        assert!(!gt.is_empty(), "camera 0 should see someone");
        for g in &gt {
            assert!(g.x0 >= 0.0 && g.y0 >= 0.0);
            assert!(g.x1 <= p.width as f64 && g.y1 <= p.height as f64);
            assert!(g.x1 > g.x0 && g.y1 > g.y0);
            assert!((0.0..=1.0).contains(&g.visibility));
        }
    }

    #[test]
    fn ids_unique_within_view() {
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let gt = ground_truth(&World::new(p), &rig[1]);
        let mut ids: Vec<usize> = gt.iter().map(|g| g.human_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), gt.len());
    }

    #[test]
    fn same_person_shares_ground_position_across_cameras() {
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let world = World::new(p);
        let gt0 = ground_truth(&world, &rig[0]);
        let gt1 = ground_truth(&world, &rig[1]);
        for a in &gt0 {
            if let Some(b) = gt1.iter().find(|g| g.human_id == a.human_id) {
                assert_eq!(a.ground, b.ground);
            }
        }
    }

    #[test]
    fn bottom_center_is_inside_box() {
        let p = DatasetProfile::miniature(DatasetId::Terrace);
        let rig = camera_rig(&p);
        let gt = ground_truth(&World::new(p), &rig[0]);
        for g in &gt {
            let bc = g.bottom_center();
            assert!(bc.x >= g.x0 && bc.x <= g.x1);
            assert_eq!(bc.y, g.y1);
        }
    }

    #[test]
    fn occlusion_reduces_visibility() {
        // Two people on the same ray from camera 0: the farther one is
        // occluded. Construct the scenario by scanning frames for any
        // overlap in camera 0.
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let mut world = World::new(p);
        let mut found_occlusion = false;
        for _ in 0..300 {
            world.step();
            let gt = ground_truth(&world, &rig[0]);
            if gt.iter().any(|g| g.visibility < 0.8) {
                found_occlusion = true;
                break;
            }
        }
        assert!(
            found_occlusion,
            "300 frames with 6 people and no occlusion is implausible"
        );
    }

    #[test]
    fn gt_boxes_grow_when_closer() {
        let p = DatasetProfile::miniature(DatasetId::Lab);
        let rig = camera_rig(&p);
        let world = World::new(p);
        let gt = ground_truth(&world, &rig[0]);
        // Heights should correlate inversely with distance to the camera.
        let mut pairs: Vec<(f64, f64)> = gt
            .iter()
            .map(|g| (cam_dist(&rig[0], &g.ground), g.height()))
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        if pairs.len() >= 2 {
            assert!(
                pairs.first().unwrap().1 >= pairs.last().unwrap().1 * 0.8,
                "nearest person unexpectedly small: {pairs:?}"
            );
        }
    }
}
