//! The simulated world: people walking in a bounded arena.
//!
//! Movement follows the random-waypoint model: each person walks toward a
//! uniformly chosen target at their individual speed and picks a new target
//! on arrival. Furniture clutter (dataset #2) occupies fixed world-space
//! boxes.

use crate::dataset::DatasetProfile;
use eecs_geometry::point::Point2;

/// A tiny clonable deterministic PRNG (SplitMix64) for world evolution.
///
/// `rand::rngs::StdRng` is not `Clone`, and cloning a [`World`] (to fork a
/// simulation at a frame) is part of this crate's contract, so the world
/// carries its own generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldRng(u64);

impl WorldRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> WorldRng {
        WorldRng(seed)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.range_f64(lo as f64, hi as f64) as f32
    }
}

/// A walking person.
#[derive(Debug, Clone, PartialEq)]
pub struct Human {
    /// Stable identifier within the dataset.
    pub id: usize,
    /// Current ground position (meters).
    pub position: Point2,
    /// Current waypoint target.
    pub target: Point2,
    /// Walking speed in meters per frame (~1.2 m/s at 25 fps).
    pub speed: f64,
    /// Body height in meters.
    pub height: f64,
    /// Body width in meters.
    pub width: f64,
    /// Clothing color (RGB in `[0,1]`), stable per person — the signal the
    /// re-identification stage keys on.
    pub clothing: [f32; 3],
    /// Skin tone (RGB).
    pub skin: [f32; 3],
}

/// A fixed furniture item: a world-space box on the ground.
#[derive(Debug, Clone, PartialEq)]
pub struct ClutterItem {
    /// Ground position of the box center (meters).
    pub position: Point2,
    /// Box height in meters (person-like, which is what fools HOG).
    pub height: f64,
    /// Box width in meters.
    pub width: f64,
    /// Two stripe colors.
    pub colors: ([f32; 3], [f32; 3]),
}

/// The world state at some frame.
#[derive(Debug, Clone)]
pub struct World {
    profile: DatasetProfile,
    humans: Vec<Human>,
    clutter: Vec<ClutterItem>,
    rng: WorldRng,
    frame: usize,
}

impl World {
    /// Creates the world at frame 0 for a dataset profile.
    pub fn new(profile: DatasetProfile) -> World {
        let mut rng = WorldRng::new(profile.seed);
        let arena = profile.arena;
        let humans = (0..profile.num_people)
            .map(|id| {
                let position = random_point(&mut rng, arena);
                let target = random_point(&mut rng, arena);
                Human {
                    id,
                    position,
                    target,
                    speed: rng.range_f64(0.035, 0.060), // 0.9–1.5 m/s at 25 fps
                    height: rng.range_f64(1.55, 1.90),
                    width: rng.range_f64(0.42, 0.55),
                    clothing: [
                        rng.range_f32(0.1, 1.0),
                        rng.range_f32(0.1, 1.0),
                        rng.range_f32(0.1, 1.0),
                    ],
                    skin: [
                        rng.range_f32(0.55, 0.95),
                        rng.range_f32(0.45, 0.75),
                        rng.range_f32(0.35, 0.60),
                    ],
                }
            })
            .collect();
        let clutter = (0..profile.clutter_items)
            .map(|_| ClutterItem {
                position: random_point(&mut rng, arena),
                height: rng.range_f64(1.2, 1.8),
                width: rng.range_f64(0.5, 0.9),
                colors: (
                    [
                        rng.range_f32(0.3, 0.9),
                        rng.range_f32(0.2, 0.6),
                        rng.range_f32(0.1, 0.4),
                    ],
                    [
                        rng.range_f32(0.05, 0.3),
                        rng.range_f32(0.05, 0.3),
                        rng.range_f32(0.05, 0.3),
                    ],
                ),
            })
            .collect();
        World {
            profile,
            humans,
            clutter,
            rng,
            frame: 0,
        }
    }

    /// Creates the world and advances it to `frame`.
    pub fn at_frame(profile: DatasetProfile, frame: usize) -> World {
        let mut w = World::new(profile);
        for _ in 0..frame {
            w.step();
        }
        w
    }

    /// Advances the simulation by one frame.
    pub fn step(&mut self) {
        self.frame += 1;
        let arena = self.profile.arena;
        for h in &mut self.humans {
            let to_target = h.target - h.position;
            let dist = to_target.norm();
            if dist < h.speed {
                h.position = h.target;
                h.target = random_point(&mut self.rng, arena);
            } else {
                h.position = h.position + to_target * (h.speed / dist);
            }
        }
    }

    /// Current frame index.
    pub fn frame(&self) -> usize {
        self.frame
    }

    /// The dataset profile driving this world.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// The people in the world.
    pub fn humans(&self) -> &[Human] {
        &self.humans
    }

    /// The furniture clutter.
    pub fn clutter(&self) -> &[ClutterItem] {
        &self.clutter
    }
}

fn random_point(rng: &mut WorldRng, arena: f64) -> Point2 {
    // Keep a margin so sprites are not degenerate at the very border.
    let m = 0.5;
    Point2::new(rng.range_f64(m, arena - m), rng.range_f64(m, arena - m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetId, DatasetProfile};

    #[test]
    fn world_has_profile_population() {
        let w = World::new(DatasetProfile::lab());
        assert_eq!(w.humans().len(), 6);
        assert!(w.clutter().is_empty());
        let c = World::new(DatasetProfile::chap());
        assert_eq!(c.clutter().len(), 7);
    }

    #[test]
    fn people_stay_in_arena() {
        let mut w = World::new(DatasetProfile::miniature(DatasetId::Terrace));
        let arena = w.profile().arena;
        for _ in 0..500 {
            w.step();
            for h in w.humans() {
                assert!(h.position.x >= 0.0 && h.position.x <= arena);
                assert!(h.position.y >= 0.0 && h.position.y <= arena);
            }
        }
    }

    #[test]
    fn people_actually_move() {
        let mut w = World::new(DatasetProfile::lab());
        let before: Vec<Point2> = w.humans().iter().map(|h| h.position).collect();
        for _ in 0..50 {
            w.step();
        }
        let moved = w
            .humans()
            .iter()
            .zip(&before)
            .filter(|(h, b)| h.position.distance(b) > 0.5)
            .count();
        assert!(moved >= 4, "only {moved} of 6 moved");
    }

    #[test]
    fn deterministic_replay() {
        let a = World::at_frame(DatasetProfile::lab(), 123);
        let b = World::at_frame(DatasetProfile::lab(), 123);
        for (ha, hb) in a.humans().iter().zip(b.humans()) {
            assert_eq!(ha.position, hb.position);
        }
    }

    #[test]
    fn different_datasets_have_different_people() {
        let lab = World::new(DatasetProfile::lab());
        let terrace = World::new(DatasetProfile::terrace());
        assert_ne!(lab.humans()[0].clothing, terrace.humans()[0].clothing);
    }

    #[test]
    fn clothing_is_stable_over_time() {
        let w0 = World::at_frame(DatasetProfile::chap(), 0);
        let w9 = World::at_frame(DatasetProfile::chap(), 9);
        for (a, b) in w0.humans().iter().zip(w9.humans()) {
            assert_eq!(a.clothing, b.clothing);
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn frame_counter_advances() {
        let mut w = World::new(DatasetProfile::lab());
        assert_eq!(w.frame(), 0);
        w.step();
        w.step();
        assert_eq!(w.frame(), 2);
    }
}
