//! Synthetic multi-camera world simulator.
//!
//! The paper evaluates on three public multi-camera datasets (EPFL "lab",
//! Graz "chap", EPFL "terrace" — Section VI), each with four overlapping
//! views, ~3000 frames, and ground-truth 3-D positions plus ground-plane
//! homographies. Those videos are not redistributable and the testbed
//! hardware is gone, so this crate generates an equivalent world:
//!
//! * [`dataset`] — per-dataset profiles matching the paper's resolutions,
//!   person counts, clutter and ground-truth cadence,
//! * [`world`] — people walking by a random-waypoint model in a bounded
//!   arena,
//! * [`rig`] — four overlapping cameras around the arena,
//! * [`render`] — rasterizes each camera's view (backgrounds, furniture
//!   clutter, depth-sorted human sprites, illumination, sensor noise),
//! * [`ground_truth`] — exact per-frame bounding boxes with occlusion
//!   fractions, plus the 3-D positions the real datasets annotate,
//! * [`sequence`] — deterministic video feeds: `(dataset, camera, frame)`
//!   uniquely determines the image, mirroring the pre-recorded videos
//!   loaded onto the paper's phones,
//! * [`sensor_fault`] — seeded per-camera sensor degradation (noise,
//!   blur, occlusion, exposure drift, stuck rows, frame drops) applied on
//!   top of the rendered frames; `SensorFaultPlan::ideal()` is a no-op.
//!
//! Determinism matters: EECS compares *video items* across cameras and
//! time, so frame `f` of camera `c` must be reproducible. All randomness is
//! seeded per dataset.

pub mod dataset;
pub mod ground_truth;
pub mod render;
pub mod rig;
pub mod sensor_fault;
pub mod sequence;
pub mod world;

pub use dataset::{DatasetId, DatasetProfile};
pub use ground_truth::GtBox;
pub use rig::FleetView;
pub use sensor_fault::{FrameImpairment, SensorFaultPlan, SensorImpairments};
pub use sequence::{FrameData, VideoFeed};
pub use world::World;

#[cfg(test)]
mod tests {
    #[test]
    fn module_reexports_compile() {
        // Presence test: the public surface referenced by downstream crates.
        let _ = crate::DatasetId::Lab;
    }
}
