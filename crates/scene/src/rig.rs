//! The four-camera rig.
//!
//! Each dataset in the paper was captured by four overlapping cameras. We
//! place the cameras at the arena's four sides, raised and pitched down so
//! their views overlap over most of the walkable area — the overlap is what
//! gives EECS its camera-diversity savings.

use crate::dataset::DatasetProfile;
use eecs_geometry::calibration::{landmark_grid, GroundCalibration};
use eecs_geometry::camera::Camera;
use eecs_geometry::point::Point3;

/// Number of cameras per dataset, as in the paper.
pub const CAMERAS_PER_DATASET: usize = 4;

/// Builds the four-camera rig for a dataset profile.
///
/// Cameras sit just outside the four sides of the arena at ~2.5–3 m height,
/// looking at the arena center.
pub fn camera_rig(profile: &DatasetProfile) -> Vec<Camera> {
    let a = profile.arena;
    let c = a / 2.0;
    let d = a * 0.75; // distance of each camera from the arena center
                      // Positions on the four sides (south, west, north, east).
    let spots = [
        (c, c - d, 2.8),
        (c - d, c, 2.6),
        (c, c + d, 3.0),
        (c + d, c, 2.7),
    ];
    spots
        .iter()
        .enumerate()
        .map(|(i, &(x, y, z))| {
            let yaw = (c - y).atan2(c - x);
            // Pitch chosen so the arena center is near the image center.
            let ground_dist = ((c - x).powi(2) + (c - y).powi(2)).sqrt();
            let pitch = (z / ground_dist).atan() * 0.9;
            // Focal length scales with resolution so the same field of view
            // covers the arena at 360×288 and 1024×768.
            let focal = profile.width as f64 * 0.9;
            let _ = i;
            Camera::new(
                Point3::new(x, y, z),
                yaw,
                pitch,
                focal,
                profile.width,
                profile.height,
            )
        })
        .collect()
}

/// Builds the per-camera ground calibrations (the "provided homographies" of
/// the real datasets), from a landmark grid over the arena.
///
/// # Panics
///
/// Panics if calibration fails, which would mean a camera cannot see the
/// arena — a rig construction bug, not a runtime condition.
pub fn rig_calibrations(profile: &DatasetProfile, cameras: &[Camera]) -> Vec<GroundCalibration> {
    let landmarks = landmark_grid(profile.arena, 5);
    cameras
        .iter()
        .map(|cam| {
            GroundCalibration::from_camera(cam, &landmarks)
                .expect("rig camera cannot be calibrated against the arena")
        })
        .collect()
}

/// Which of a rig's camera views are currently spawned.
///
/// The rig's geometry is fixed at construction — churn never moves a
/// camera — but an elastic fleet spawns and despawns *views*: a departed
/// camera keeps its slot (and its calibration) so a later rejoin
/// restores the exact same viewpoint, while despawned views simply
/// render nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetView {
    spawned: Vec<bool>,
}

impl FleetView {
    /// A view set for `count` cameras, all spawned.
    pub fn new(count: usize) -> FleetView {
        FleetView {
            spawned: vec![true; count],
        }
    }

    /// Spawns camera `j`'s view (idempotent; out-of-range is a no-op).
    pub fn spawn(&mut self, j: usize) {
        if let Some(s) = self.spawned.get_mut(j) {
            *s = true;
        }
    }

    /// Despawns camera `j`'s view (idempotent; out-of-range is a no-op).
    pub fn despawn(&mut self, j: usize) {
        if let Some(s) = self.spawned.get_mut(j) {
            *s = false;
        }
    }

    /// Whether camera `j`'s view is currently spawned.
    pub fn is_active(&self, j: usize) -> bool {
        self.spawned.get(j).copied().unwrap_or(false)
    }

    /// Number of spawned views.
    pub fn active_count(&self) -> usize {
        self.spawned.iter().filter(|&&s| s).count()
    }

    /// Indices of the spawned views, ascending.
    pub fn active(&self) -> Vec<usize> {
        (0..self.spawned.len())
            .filter(|&j| self.spawned[j])
            .collect()
    }

    /// Total slots, spawned or not.
    pub fn len(&self) -> usize {
        self.spawned.len()
    }

    /// Whether the rig has no camera slots at all.
    pub fn is_empty(&self) -> bool {
        self.spawned.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetId, DatasetProfile};
    use eecs_geometry::point::Point2;

    #[test]
    fn rig_has_four_cameras() {
        let rig = camera_rig(&DatasetProfile::lab());
        assert_eq!(rig.len(), CAMERAS_PER_DATASET);
    }

    #[test]
    fn all_cameras_see_arena_center() {
        for id in DatasetId::ALL {
            let p = DatasetProfile::for_id(id);
            let rig = camera_rig(&p);
            let center = Point3::on_ground(p.arena / 2.0, p.arena / 2.0);
            for (i, cam) in rig.iter().enumerate() {
                let px = cam.project(&center).expect("center behind camera");
                assert!(
                    cam.contains(&px),
                    "camera {i} of {id} misses center: {px:?}"
                );
            }
        }
    }

    #[test]
    fn views_overlap_substantially() {
        // Most arena points should be visible to at least 3 cameras.
        let p = DatasetProfile::lab();
        let rig = camera_rig(&p);
        let mut well_covered = 0;
        let mut total = 0;
        for i in 1..9 {
            for j in 1..9 {
                let g = Point3::on_ground(p.arena * i as f64 / 9.0, p.arena * j as f64 / 9.0);
                let seen = rig
                    .iter()
                    .filter(|cam| cam.project(&g).map(|px| cam.contains(&px)).unwrap_or(false))
                    .count();
                total += 1;
                if seen >= 3 {
                    well_covered += 1;
                }
            }
        }
        assert!(
            well_covered * 10 >= total * 7,
            "only {well_covered}/{total} points covered by >= 3 cameras"
        );
    }

    #[test]
    fn calibrations_roundtrip() {
        let p = DatasetProfile::lab();
        let rig = camera_rig(&p);
        let cals = rig_calibrations(&p, &rig);
        assert_eq!(cals.len(), 4);
        let g = Point2::new(p.arena / 2.0, p.arena / 2.0);
        for cal in &cals {
            let px = cal.ground_to_image(&g).unwrap();
            let back = cal.image_to_ground(&px).unwrap();
            assert!(back.distance(&g) < 1e-5);
        }
    }

    #[test]
    fn fleet_view_spawns_and_despawns_slots() {
        let mut view = FleetView::new(3);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.active_count(), 3, "everyone starts spawned");
        assert_eq!(view.active(), vec![0, 1, 2]);

        view.despawn(1);
        assert!(!view.is_active(1) && view.is_active(0));
        assert_eq!(view.active(), vec![0, 2]);
        view.despawn(1);
        assert_eq!(view.active_count(), 2, "despawn is idempotent");

        view.spawn(1);
        assert!(view.is_active(1));
        assert_eq!(view.active(), vec![0, 1, 2], "rejoin restores the slot");

        // Out-of-range indices are no-ops, never panics.
        view.spawn(9);
        view.despawn(9);
        assert!(!view.is_active(9));
        assert_eq!(view.len(), 3);
    }

    #[test]
    fn cameras_have_distinct_viewpoints() {
        let rig = camera_rig(&DatasetProfile::lab());
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(rig[i].position.distance(&rig[j].position) > 1.0);
            }
        }
    }
}
