//! Deterministic sensor-level fault injection for rendered frames.
//!
//! A [`SensorFaultPlan`] mirrors the design of `eecs_net::FaultPlan`, one
//! layer down the stack: instead of perturbing packets on the wire it
//! perturbs the *pixels a camera captures* before any detector sees them.
//! Every probabilistic decision is a pure function of
//! `(seed, camera, frame, event tag)` via the same SplitMix64-style
//! finalizer, so a corrupted video stream replays byte-for-byte — no
//! global RNG, no wall-clock dependence.
//!
//! Fault taxonomy (per camera, per frame):
//!
//! * **Gaussian-ish noise** — extra zero-mean sensor noise on top of the
//!   renderer's baseline, modelling a failing ADC or high ISO at night.
//! * **Motion blur** — horizontal box blur, modelling a shaking mount.
//! * **Exposure drift / low-light shift** — a multiplicative brightness
//!   gain drawn around 1.0 (biased low when `low_light_bias` is set),
//!   modelling auto-exposure hunting or dusk.
//! * **Stuck rows** — a band of rows latched to black, modelling a dead
//!   sensor region; position is deterministic per frame.
//! * **Frame drop** — the capture fails outright; the runtime is told via
//!   [`FrameImpairment::dropped`] so it can skip detection entirely.
//! * **Lens occlusion** — scheduled (not stochastic) windows in which an
//!   opaque blob covers a fraction of the view, modelling dirt or a
//!   misplaced thumb; occlusions persist over a frame interval, unlike
//!   the per-frame faults above.
//!
//! With [`SensorFaultPlan::ideal`] the plan is disabled and `corrupt`
//! never touches a pixel, preserving the repo's bit-identical replay
//! discipline for fault-free runs.

use eecs_vision::draw;
use eecs_vision::image::RgbImage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Event-tag for the extra-noise trigger roll.
const TAG_NOISE: u64 = 1;
/// Event-tag for the motion-blur trigger roll.
const TAG_BLUR: u64 = 2;
/// Event-tag for the exposure trigger roll.
const TAG_EXPOSURE: u64 = 3;
/// Event-tag for the exposure magnitude roll.
const TAG_EXPOSURE_GAIN: u64 = 4;
/// Event-tag for the stuck-rows trigger roll.
const TAG_STUCK: u64 = 5;
/// Event-tag for the stuck-rows position roll.
const TAG_STUCK_POS: u64 = 6;
/// Event-tag for the frame-drop roll.
const TAG_DROP: u64 = 7;
/// Event-tag seeding the noise RNG stream.
const TAG_NOISE_STREAM: u64 = 8;

/// Stochastic impairment parameters of one camera's sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorImpairments {
    /// Amplitude of the extra zero-mean noise when it fires (`0` = off).
    pub noise_amp: f32,
    /// Probability in `[0, 1)` that a frame receives the extra noise.
    pub noise_prob: f64,
    /// Horizontal box-blur radius in pixels when blur fires (`0` = off).
    pub blur_radius: usize,
    /// Probability in `[0, 1)` that a frame is motion-blurred.
    pub blur_prob: f64,
    /// Maximum relative exposure drift: the gain is drawn from
    /// `[1 - drift, 1 + drift]` (or `[1 - drift, 1]` under
    /// `low_light_bias`).
    pub exposure_drift: f32,
    /// Probability in `[0, 1)` that a frame's exposure drifts.
    pub exposure_prob: f64,
    /// When set, exposure drift only darkens (dusk / low light).
    pub low_light_bias: bool,
    /// Number of consecutive dead rows when the stuck-row fault fires
    /// (`0` = off).
    pub stuck_rows: usize,
    /// Probability in `[0, 1)` that a frame shows the stuck-row band.
    pub stuck_prob: f64,
    /// Probability in `[0, 1)` that the capture fails and the frame is
    /// dropped before any processing.
    pub drop_prob: f64,
}

impl SensorImpairments {
    /// A perfectly healthy sensor: no impairment ever fires.
    pub fn ideal() -> SensorImpairments {
        SensorImpairments {
            noise_amp: 0.0,
            noise_prob: 0.0,
            blur_radius: 0,
            blur_prob: 0.0,
            exposure_drift: 0.0,
            exposure_prob: 0.0,
            low_light_bias: false,
            stuck_rows: 0,
            stuck_prob: 0.0,
            drop_prob: 0.0,
        }
    }

    /// A moderately failing sensor exercising every stochastic fault —
    /// the preset used by the chaos tests and the smoke matrix.
    pub fn harsh() -> SensorImpairments {
        SensorImpairments {
            noise_amp: 0.25,
            noise_prob: 0.4,
            blur_radius: 3,
            blur_prob: 0.3,
            exposure_drift: 0.5,
            exposure_prob: 0.3,
            low_light_bias: true,
            stuck_rows: 10,
            stuck_prob: 0.2,
            drop_prob: 0.15,
        }
    }

    /// Whether this sensor behaves perfectly.
    pub fn is_ideal(&self) -> bool {
        *self == SensorImpairments::ideal()
    }

    fn check(&self) {
        for (name, p) in [
            ("noise_prob", self.noise_prob),
            ("blur_prob", self.blur_prob),
            ("exposure_prob", self.exposure_prob),
            ("stuck_prob", self.stuck_prob),
            ("drop_prob", self.drop_prob),
        ] {
            assert!(
                (0.0..1.0).contains(&p),
                "sensor fault probability `{name}` must be in [0, 1), got {p}"
            );
        }
        assert!(
            self.exposure_drift >= 0.0 && self.exposure_drift < 1.0,
            "exposure_drift must be in [0, 1), got {}",
            self.exposure_drift
        );
        assert!(
            self.noise_amp >= 0.0,
            "noise_amp must be non-negative, got {}",
            self.noise_amp
        );
    }
}

impl Default for SensorImpairments {
    fn default() -> Self {
        SensorImpairments::ideal()
    }
}

/// A half-open window of *frame numbers*, `[start, end)`, during which a
/// scheduled occlusion persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameWindow {
    /// First frame inside the window.
    pub start: usize,
    /// First frame past the window.
    pub end: usize,
}

impl FrameWindow {
    /// The window `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end` (empty windows are configuration bugs).
    pub fn new(start: usize, end: usize) -> FrameWindow {
        assert!(start < end, "empty sensor fault window [{start}, {end})");
        FrameWindow { start, end }
    }

    /// Whether `frame` falls inside the window.
    pub fn contains(&self, frame: usize) -> bool {
        (self.start..self.end).contains(&frame)
    }
}

/// What [`SensorFaultPlan::corrupt`] did to one frame — the camera-side
/// degraded-frame signal the runtime forwards to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameImpairment {
    /// The capture failed entirely; the frame carries no usable pixels
    /// and detection must be skipped.
    pub dropped: bool,
    /// Extra sensor noise was applied.
    pub noisy: bool,
    /// The frame was motion-blurred.
    pub blurred: bool,
    /// Exposure drifted (gain ≠ 1 applied).
    pub exposure_shifted: bool,
    /// A stuck-row band was burned into the frame.
    pub stuck_rows: bool,
    /// A scheduled lens occlusion covered part of the view.
    pub occluded: bool,
}

impl FrameImpairment {
    /// An untouched frame.
    pub fn clean() -> FrameImpairment {
        FrameImpairment::default()
    }

    /// Whether no fault of any kind was applied.
    pub fn is_clean(&self) -> bool {
        *self == FrameImpairment::clean()
    }

    /// Whether the frame is degraded but still usable (not dropped).
    pub fn degraded(&self) -> bool {
        !self.is_clean() && !self.dropped
    }
}

/// A seeded, deterministic schedule of sensor faults, mirroring
/// `eecs_net::FaultPlan` one layer down the stack.
///
/// ```
/// use eecs_scene::sensor_fault::{SensorFaultPlan, SensorImpairments};
///
/// let plan = SensorFaultPlan::seeded(42)
///     .with_default_impairments(SensorImpairments::harsh())
///     .with_occlusion(1, 40, 80, 0.4); // camera 1: 40% occluded, frames 40..80
/// assert!(plan.enabled());
/// assert!(!SensorFaultPlan::ideal().enabled());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorFaultPlan {
    seed: u64,
    default_impairments: SensorImpairments,
    per_camera: BTreeMap<usize, SensorImpairments>,
    /// `(camera, window, occluded fraction of the frame area)`.
    occlusions: Vec<(usize, FrameWindow, f64)>,
}

impl SensorFaultPlan {
    /// A plan with no sensor faults at all: `corrupt` never touches a
    /// pixel, so every report stays bit-identical to a fault-free run.
    pub fn ideal() -> SensorFaultPlan {
        SensorFaultPlan::seeded(0)
    }

    /// An empty plan carrying the RNG `seed`; add faults with the
    /// `with_*` builders.
    pub fn seeded(seed: u64) -> SensorFaultPlan {
        SensorFaultPlan {
            seed,
            default_impairments: SensorImpairments::ideal(),
            per_camera: BTreeMap::new(),
            occlusions: Vec::new(),
        }
    }

    /// The seed every roll is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the impairments used by cameras without a per-camera entry.
    ///
    /// # Panics
    ///
    /// Panics when a probability is outside `[0, 1)`.
    pub fn with_default_impairments(mut self, imp: SensorImpairments) -> SensorFaultPlan {
        imp.check();
        self.default_impairments = imp;
        self
    }

    /// Overrides the impairments of `camera`'s sensor.
    ///
    /// # Panics
    ///
    /// Panics when a probability is outside `[0, 1)`.
    pub fn with_camera_impairments(
        mut self,
        camera: usize,
        imp: SensorImpairments,
    ) -> SensorFaultPlan {
        imp.check();
        self.per_camera.insert(camera, imp);
        self
    }

    /// Schedules a partial lens occlusion on `camera` over frames
    /// `[start, end)`, covering `fraction` of the frame area with an
    /// opaque dark blob anchored in a deterministic corner.
    ///
    /// # Panics
    ///
    /// Panics when `start >= end` or `fraction` is outside `(0, 1]`.
    pub fn with_occlusion(
        mut self,
        camera: usize,
        start: usize,
        end: usize,
        fraction: f64,
    ) -> SensorFaultPlan {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "occlusion fraction must be in (0, 1], got {fraction}"
        );
        self.occlusions
            .push((camera, FrameWindow::new(start, end), fraction));
        self
    }

    /// The impairments governing `camera`'s sensor.
    pub fn impairments(&self, camera: usize) -> SensorImpairments {
        self.per_camera
            .get(&camera)
            .copied()
            .unwrap_or(self.default_impairments)
    }

    /// Whether the plan injects any fault at all. An ideal plan lets the
    /// runtime skip the corruption pass entirely.
    pub fn enabled(&self) -> bool {
        !self.default_impairments.is_ideal()
            || self.per_camera.values().any(|i| !i.is_ideal())
            || !self.occlusions.is_empty()
    }

    /// Applies every scheduled and rolled fault for `(camera, frame)` to
    /// `img` in place, returning what was done. Pure in
    /// `(plan, camera, frame)`: the same inputs always corrupt the same
    /// pixels the same way.
    pub fn corrupt(&self, camera: usize, frame: usize, img: &mut RgbImage) -> FrameImpairment {
        let mut status = FrameImpairment::clean();
        if !self.enabled() {
            return status;
        }
        let imp = self.impairments(camera);

        // A dropped frame carries no pixels worth corrupting further: the
        // sensor never delivered it. Blank it so any accidental use is
        // glaringly visible.
        if imp.drop_prob > 0.0 && self.unit_roll(camera, frame, TAG_DROP) < imp.drop_prob {
            blank(img);
            status.dropped = true;
            return status;
        }

        if imp.exposure_prob > 0.0
            && self.unit_roll(camera, frame, TAG_EXPOSURE) < imp.exposure_prob
        {
            let u = self.unit_roll(camera, frame, TAG_EXPOSURE_GAIN) as f32;
            let gain = if imp.low_light_bias {
                1.0 - imp.exposure_drift * u
            } else {
                1.0 + imp.exposure_drift * (2.0 * u - 1.0)
            };
            img.scale_brightness(gain);
            status.exposure_shifted = true;
        }

        if imp.blur_radius > 0 && self.unit_roll(camera, frame, TAG_BLUR) < imp.blur_prob {
            horizontal_blur(img, imp.blur_radius);
            status.blurred = true;
        }

        if imp.noise_amp > 0.0 && self.unit_roll(camera, frame, TAG_NOISE) < imp.noise_prob {
            let mut rng = StdRng::seed_from_u64(self.mix(camera, frame, TAG_NOISE_STREAM));
            draw::add_noise(img, imp.noise_amp, &mut rng);
            status.noisy = true;
        }

        if imp.stuck_rows > 0 && self.unit_roll(camera, frame, TAG_STUCK) < imp.stuck_prob {
            let h = img.height();
            let band = imp.stuck_rows.min(h);
            let span = h.saturating_sub(band).max(1);
            let y0 = (self.unit_roll(camera, frame, TAG_STUCK_POS) * span as f64) as usize;
            draw::fill_rect(
                img,
                0,
                y0 as i64,
                img.width() as i64,
                (y0 + band) as i64,
                [0.0, 0.0, 0.0],
            );
            status.stuck_rows = true;
        }

        for (cam, window, fraction) in &self.occlusions {
            if *cam == camera && window.contains(frame) {
                occlude(img, camera, *fraction);
                status.occluded = true;
            }
        }

        status
    }

    /// Deterministic uniform draw in `[0, 1)` for the event `tag` of
    /// `(camera, frame)` — the pixel-level sibling of
    /// `FaultPlan::unit_roll`.
    fn unit_roll(&self, camera: usize, frame: usize, tag: u64) -> f64 {
        let z = self.mix(camera, frame, tag);
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// SplitMix64-style finalizer over the mixed inputs.
    fn mix(&self, camera: usize, frame: usize, tag: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((camera as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((frame as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(tag.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z
    }
}

impl Default for SensorFaultPlan {
    fn default() -> Self {
        SensorFaultPlan::ideal()
    }
}

/// Blanks the frame to black — a dropped capture.
fn blank(img: &mut RgbImage) {
    for chan in [&mut img.r, &mut img.g, &mut img.b] {
        for v in chan.as_mut_slice() {
            *v = 0.0;
        }
    }
}

/// Horizontal box blur of the given radius, applied per channel. A sliding
/// window keeps it O(pixels) regardless of radius.
fn horizontal_blur(img: &mut RgbImage, radius: usize) {
    let (w, h) = (img.width(), img.height());
    if w == 0 || radius == 0 {
        return;
    }
    let mut row = vec![0.0f32; w];
    for chan in [&mut img.r, &mut img.g, &mut img.b] {
        for y in 0..h {
            let data = chan.as_mut_slice();
            let base = y * w;
            row.copy_from_slice(&data[base..base + w]);
            let mut sum: f32 = row[..(radius + 1).min(w)].iter().sum();
            let mut count = (radius + 1).min(w);
            for x in 0..w {
                data[base + x] = sum / count as f32;
                // Slide: admit x + radius + 1, evict x - radius.
                if x + radius + 1 < w {
                    sum += row[x + radius + 1];
                    count += 1;
                }
                if x >= radius {
                    sum -= row[x - radius];
                    count -= 1;
                }
            }
        }
    }
}

/// Covers `fraction` of the frame area with a near-black blob anchored in
/// a camera-dependent corner (dirt settles in different places on
/// different lenses).
fn occlude(img: &mut RgbImage, camera: usize, fraction: f64) {
    let (w, h) = (img.width() as f64, img.height() as f64);
    // A corner rectangle with the frame's aspect ratio and the requested
    // area: side scale = sqrt(fraction).
    let s = fraction.sqrt();
    let ow = (w * s).ceil() as i64;
    let oh = (h * s).ceil() as i64;
    let (x0, y0, x1, y1) = match camera % 4 {
        0 => (0, 0, ow, oh),
        1 => (w as i64 - ow, 0, w as i64, oh),
        2 => (0, h as i64 - oh, ow, h as i64),
        _ => (w as i64 - ow, h as i64 - oh, w as i64, h as i64),
    };
    draw::fill_rect(img, x0, y0, x1, y1, [0.03, 0.03, 0.03]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> RgbImage {
        let mut img = RgbImage::filled(32, 24, [0.5, 0.4, 0.3]);
        // Structure, so blur visibly changes pixels.
        draw::fill_rect(&mut img, 8, 4, 16, 20, [0.9, 0.9, 0.9]);
        img
    }

    fn pixels(img: &RgbImage) -> Vec<u32> {
        [&img.r, &img.g, &img.b]
            .into_iter()
            .flat_map(|c| c.as_slice().iter().map(|v| v.to_bits()))
            .collect()
    }

    #[test]
    fn ideal_plan_never_touches_a_pixel() {
        let plan = SensorFaultPlan::ideal();
        assert!(!plan.enabled());
        let mut img = test_image();
        let before = pixels(&img);
        let status = plan.corrupt(0, 77, &mut img);
        assert!(status.is_clean());
        assert_eq!(before, pixels(&img), "ideal corruption is the identity");
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let plan = SensorFaultPlan::seeded(9)
            .with_default_impairments(SensorImpairments::harsh())
            .with_occlusion(0, 0, 1000, 0.3);
        for frame in [0, 13, 999] {
            let mut a = test_image();
            let mut b = test_image();
            let sa = plan.corrupt(0, frame, &mut a);
            let sb = plan.corrupt(0, frame, &mut b);
            assert_eq!(sa, sb);
            assert_eq!(pixels(&a), pixels(&b), "frame {frame} must replay");
        }
    }

    #[test]
    fn different_cameras_and_frames_corrupt_differently() {
        let plan = SensorFaultPlan::seeded(5).with_default_impairments(SensorImpairments::harsh());
        // Over many frames, at least one (camera, frame) pair diverges
        // from another — the faults are not globally synchronized.
        let mut distinct = false;
        for frame in 0..20 {
            let mut a = test_image();
            let mut b = test_image();
            plan.corrupt(0, frame, &mut a);
            plan.corrupt(1, frame, &mut b);
            if pixels(&a) != pixels(&b) {
                distinct = true;
                break;
            }
        }
        assert!(distinct, "per-camera streams must decorrelate");
    }

    #[test]
    fn dropped_frames_are_blanked_and_flagged() {
        let imp = SensorImpairments {
            drop_prob: 0.999,
            ..SensorImpairments::ideal()
        };
        let plan = SensorFaultPlan::seeded(3).with_default_impairments(imp);
        let mut img = test_image();
        let status = plan.corrupt(2, 4, &mut img);
        assert!(status.dropped);
        assert!(!status.degraded(), "dropped trumps degraded");
        assert!(pixels(&img).iter().all(|&bits| bits == 0.0f32.to_bits()));
    }

    #[test]
    fn occlusion_windows_are_half_open_and_darken_a_corner() {
        let plan = SensorFaultPlan::seeded(1).with_occlusion(1, 10, 20, 0.25);
        let mut img = test_image();
        assert!(plan.corrupt(1, 9, &mut img).is_clean());
        assert!(plan.corrupt(1, 20, &mut img).is_clean());
        assert!(plan.corrupt(0, 15, &mut img).is_clean(), "per-camera");
        let status = plan.corrupt(1, 10, &mut img);
        assert!(status.occluded && status.degraded());
        // Camera 1 anchors top-right.
        assert_eq!(img.get(31, 0), [0.03, 0.03, 0.03]);
        assert_ne!(img.get(0, 23), [0.03, 0.03, 0.03]);
    }

    #[test]
    fn blur_preserves_flat_regions_and_smooths_edges() {
        let mut img = test_image();
        let edge_before = img.get(7, 10);
        horizontal_blur(&mut img, 2);
        // Interior of the flat background stays flat.
        assert_eq!(img.get(2, 2), [0.5, 0.4, 0.3]);
        // The box edge got pulled toward the bright rectangle.
        assert!(img.get(7, 10)[0] > edge_before[0]);
    }

    #[test]
    #[should_panic(expected = "sensor fault probability")]
    fn certain_drop_rejected() {
        SensorFaultPlan::seeded(0).with_default_impairments(SensorImpairments {
            drop_prob: 1.0,
            ..SensorImpairments::ideal()
        });
    }

    #[test]
    #[should_panic(expected = "occlusion fraction")]
    fn zero_occlusion_rejected() {
        SensorFaultPlan::seeded(0).with_occlusion(0, 0, 10, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sensor fault window")]
    fn empty_window_rejected() {
        FrameWindow::new(4, 4);
    }
}
